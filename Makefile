# Developer entry points.  `make check` is the gate every change must pass:
# the tier-1 test suite plus a <30 s perf smoke that (a) compares the default
# bitset relation backend against the reference pairs backend on a small
# workload and (b) fails if the bitset delay median regresses beyond 2x the
# committed benchmarks/results/BENCH_delay_constant.json trajectory.

PYTHON ?= python
PYPATH := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

# When pytest-timeout is installed (CI always installs it), cap every test:
# a protocol wait that ignores its deadline must fail loudly, not hang the
# run.  Without the plugin, tests/conftest.py still enforces the explicit
# @pytest.mark.timeout markers via SIGALRM.
PYTEST_TIMEOUT_FLAGS := $(shell $(PYTHON) -c "import pytest_timeout" 2>/dev/null && echo "--timeout=300 --timeout-method=thread")

.PHONY: check test test-engine-strict lint net-smoke bench-smoke bench

test:
	$(PYPATH) $(PYTHON) -m pytest -x -q $(PYTEST_TIMEOUT_FLAGS)

# The engine test module runs a second time with DeprecationWarning promoted
# to an error: new code cannot silently call the deprecated shims
# (TreeEnumerator / WordEnumerator / DocumentStore).
test-engine-strict:
	$(PYPATH) $(PYTHON) -m pytest tests/test_engine.py -q -W error::DeprecationWarning $(PYTEST_TIMEOUT_FLAGS)

# Lint (requires ruff; CI installs it — locally skipped when absent, but a
# real ruff failure propagates).
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Boot a real EngineServer on a loopback port, drive it with RemoteEngine
# over TCP, and assert byte-identical answers against an in-process oracle.
net-smoke:
	$(PYPATH) $(PYTHON) examples/network_serving_demo.py

bench-smoke:
	$(PYPATH) $(PYTHON) benchmarks/run_all.py --quick --compare --smoke-out benchmarks/results/smoke

# Full benchmark harness: rewrites benchmarks/results/BENCH_*.json so the
# committed trajectories can be compared across PRs.
bench:
	$(PYPATH) $(PYTHON) benchmarks/run_all.py

check: test test-engine-strict net-smoke bench-smoke
	@echo "check OK: tier-1 tests + strict engine tests + net smoke + perf smoke passed"
