# Developer entry points.  `make check` is the gate every change must pass:
# the tier-1 test suite plus a <30 s perf smoke that (a) compares the default
# bitset relation backend against the reference pairs backend on a small
# workload and (b) fails if the bitset delay median regresses beyond 2x the
# committed benchmarks/results/BENCH_delay_constant.json trajectory.

PYTHON ?= python
PYPATH := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: check test bench-smoke bench

test:
	$(PYPATH) $(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYPATH) $(PYTHON) benchmarks/run_all.py --quick --compare --smoke-out benchmarks/results/smoke

# Full benchmark harness: rewrites benchmarks/results/BENCH_*.json so the
# committed trajectories can be compared across PRs.
bench:
	$(PYPATH) $(PYTHON) benchmarks/run_all.py

check: test bench-smoke
	@echo "check OK: tier-1 tests + perf smoke passed"
