"""Tests for :mod:`repro.serving` — catalog persistence, stores, cursors.

The acceptance-critical properties pinned here:

* a compiled query persisted by :class:`QueryCatalog` loads **in a fresh
  process** (a spawned subprocess) and enumerates byte-identical answers to
  an in-process compile;
* answers from a freshly loaded compiled query equal a from-scratch compile
  on **all three relation backends** (differential);
* cursor semantics: pagination is duplicate-free across pages, a cursor
  **resumes** after edits whose trunk is disjoint from the cursor's, and an
  edit hitting the cursor's trunk **deterministically** invalidates it with
  a precise report.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.automata.queries import select_descendant_pairs, select_labeled
from repro.automata.serialize import query_digest
from repro.core.enumerator import TreeRuntime, WordRuntime, _COMPILED_QUERIES
from repro.errors import CatalogError, CursorInvalidatedError, ServingError
from repro.engine.local import LocalStore
from repro.serving import DocumentStore, QueryCatalog
from repro.serving.codec import compiled_query_from_json
from repro.spanners.compile import regex_to_wva
from repro.trees.edits import Relabel
from repro.trees.generators import tree_of_shape
from repro.trees.unranked import UnrankedTree

LABELS = ("a", "b", "c", "d")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")


def canonical_answers(assignments):
    """Canonical JSON text of an answer set (for byte-level comparisons)."""
    rows = sorted(sorted([str(var), node] for var, node in a) for a in assignments)
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))


def fresh_compile_answers(tree, query):
    """Answers from a from-scratch compile (bypassing every cache)."""
    _COMPILED_QUERIES.clear()
    plain = query.__class__(
        query.states, query.variables, query.initial, query.delta, query.final
    )
    return canonical_answers(TreeRuntime(tree, plain).assignments())


# =========================================================================== catalog
class TestQueryCatalog:
    def test_save_load_roundtrip_equal_answers(self, tmp_path):
        query = select_descendant_pairs(LABELS)
        tree = tree_of_shape("random", 160, LABELS, 11)
        catalog = QueryCatalog(str(tmp_path))
        # warm the plan cache with one document build, then persist
        warm = TreeRuntime(tree, query)
        expected = canonical_answers(warm.assignments())
        catalog.save(query, automaton=warm.binary_automaton)
        assert query in catalog
        assert catalog.digests() == [catalog.digest_of(query)]

        loaded = catalog.load(catalog.digest_of(query), use_cache=False)
        assert loaded.from_disk
        assert loaded.plans_installed > 0
        assert loaded.load_seconds is not None
        # build a fresh enumeration structure against the *loaded* automaton only
        from repro.forest_algebra.maintenance import MaintainedTerm
        from repro.incremental.maintainer import IncrementalCircuitMaintainer

        term = MaintainedTerm(tree)
        maintainer = IncrementalCircuitMaintainer(term, loaded.automaton)
        got = canonical_answers(maintainer.enumerator().assignments())
        assert got == expected

    def test_digest_is_content_based_and_stable(self):
        q1 = select_labeled("a", LABELS)
        q2 = select_labeled("a", LABELS)  # equal content, distinct object
        q3 = select_labeled("b", LABELS)
        assert query_digest(q1) == query_digest(q2)
        assert query_digest(q1) != query_digest(q3)

    def test_digest_mismatch_raises(self, tmp_path):
        query = select_labeled("a", LABELS)
        catalog = QueryCatalog(str(tmp_path))
        catalog.save(query)
        digest = catalog.digest_of(query)
        text = open(catalog.path_of(digest), encoding="utf8").read()
        with pytest.raises(CatalogError, match="digest mismatch"):
            compiled_query_from_json(text, expected_digest="0" * 64)

    def test_missing_and_corrupt_entries(self, tmp_path):
        catalog = QueryCatalog(str(tmp_path))
        with pytest.raises(CatalogError, match="no compiled query"):
            catalog.load("f" * 64)
        with pytest.raises(CatalogError, match="corrupt"):
            compiled_query_from_json("{not json")

    def test_get_compiles_without_persisting(self, tmp_path):
        query = select_labeled("a", LABELS)
        catalog = QueryCatalog(str(tmp_path))
        entry = catalog.get(query)
        assert not entry.from_disk
        assert query not in catalog  # get() never writes implicitly

    def test_leftover_tmp_files_are_not_entries(self, tmp_path):
        catalog = QueryCatalog(str(tmp_path))
        catalog.save(select_labeled("a", LABELS))
        # simulate a crash between mkstemp and os.replace
        with open(os.path.join(catalog.root, ".tmp-dead.json"), "w") as handle:
            handle.write("{half written")
        assert len(catalog) == 1
        for digest in catalog.digests():
            catalog.load(digest)  # every listed digest is loadable

    @pytest.mark.parametrize("backend", ["pairs", "matrix", "bitset"])
    def test_loaded_query_differential_across_backends(self, tmp_path, backend):
        """Loaded compiled query == from-scratch compile, on every backend."""
        query = select_descendant_pairs(LABELS)
        tree = tree_of_shape("random", 120, LABELS, 23)
        expected = fresh_compile_answers(tree, query)

        catalog = QueryCatalog(str(tmp_path))
        catalog.save(query)
        loaded = catalog.load(catalog.digest_of(query), use_cache=False)
        fresh_query = select_descendant_pairs(LABELS)
        loaded.attach(fresh_query)
        enumerator = TreeRuntime(tree, fresh_query, relation_backend=backend)
        assert enumerator.binary_automaton is loaded.automaton  # no recompile
        assert canonical_answers(enumerator.assignments()) == expected

    def test_fresh_process_loads_and_matches_byte_identically(self, tmp_path):
        """The acceptance test: persist, reload in a subprocess, compare bytes."""
        query = select_descendant_pairs(LABELS)
        tree = tree_of_shape("random", 140, LABELS, 5)
        warm = TreeRuntime(tree, query)
        expected = canonical_answers(warm.assignments())

        catalog = QueryCatalog(str(tmp_path))
        catalog.save(query, automaton=warm.binary_automaton)
        digest = catalog.digest_of(query)

        child_source = """
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.serving import QueryCatalog
from repro.forest_algebra.maintenance import MaintainedTerm
from repro.incremental.maintainer import IncrementalCircuitMaintainer
from repro.trees.generators import tree_of_shape

catalog = QueryCatalog(sys.argv[2])
loaded = catalog.load(sys.argv[3])
# the same deterministic document the parent enumerated (same ids)
tree = tree_of_shape("random", 140, ("a", "b", "c", "d"), 5)
start = time.perf_counter()
maintainer = IncrementalCircuitMaintainer(MaintainedTerm(tree), loaded.automaton)
build_seconds = time.perf_counter() - start
rows = sorted(
    sorted([str(var), node] for var, node in a)
    for a in maintainer.enumerator().assignments()
)
print(json.dumps({
    "answers": json.dumps(rows, sort_keys=True, separators=(",", ":")),
    "load_seconds": loaded.load_seconds,
    "plans_installed": loaded.plans_installed,
}))
"""
        result = subprocess.run(
            [sys.executable, "-c", child_source, SRC_DIR, str(tmp_path), digest],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        payload = json.loads(result.stdout)
        # Byte-identical answers in a process that never ran the compiler.
        assert payload["answers"] == expected
        assert payload["plans_installed"] > 0
        assert payload["load_seconds"] is not None and payload["load_seconds"] > 0


# =========================================================================== store
class TestLocalStore:
    def test_documents_share_one_compiled_automaton(self, tmp_path):
        catalog = QueryCatalog(str(tmp_path))
        query = select_labeled("a", LABELS)
        catalog.save(query)
        store = LocalStore(catalog=catalog)
        docs = [
            store.add_tree(tree_of_shape("random", 80, LABELS, seed), query)
            for seed in range(4)
        ]
        automata = {id(d.enumerator.binary_automaton) for d in docs}
        assert len(automata) == 1
        assert store.stats()["compiled_queries"] == 1

    def test_batched_edits_one_epoch_step(self):
        store = LocalStore()
        query = select_labeled("a", LABELS)
        doc = store.add_tree(tree_of_shape("random", 60, LABELS, 1), query)
        nodes = [n for n in doc.enumerator.tree.nodes() if not n.is_root()][:3]
        report = doc.apply_edits([Relabel(n.node_id, "a") for n in nodes])
        assert doc.epoch == 1
        assert report.epoch == 1
        assert len(report.stats) == 3
        assert report.boxes_rebuilt == report.trunk_total() > 0
        # count reflects the batch
        assert doc.count() == sum(
            1 for n in doc.enumerator.tree.nodes() if n.label == "a"
        )

    def test_word_documents_and_edits(self):
        store = LocalStore()
        alphabet = ("a", "b", "c")
        wva = regex_to_wva(".*x{b}.*", alphabet)
        doc = store.add_word(list("abacaba"), wva)
        assert doc.count() == 2  # two b positions
        positions = doc.enumerator.position_ids()
        report = doc.apply_edits([("replace", positions[1], "c")])
        assert report.epoch == 1
        assert doc.count() == 1
        reference = WordRuntime(doc.enumerator.word(), regex_to_wva(".*x{b}.*", alphabet))
        assert sorted(map(sorted, doc.answers())) == sorted(
            map(sorted, reference.assignments())
        )
        with pytest.raises(ServingError, match="unknown word edit"):
            doc.apply_edits([("frobnicate", 0)])

    def test_unknown_document_and_duplicate_ids(self):
        store = LocalStore()
        query = select_labeled("a", LABELS)
        with pytest.raises(ServingError, match="no document"):
            store.document("nope")
        store.add_tree(tree_of_shape("random", 30, LABELS, 1), query, doc_id="x")
        with pytest.raises(ServingError, match="already in use"):
            store.add_tree(tree_of_shape("random", 30, LABELS, 2), query, doc_id="x")

    def test_backend_typo_fails_fast(self):
        with pytest.raises(ValueError, match="did you mean 'bitset'"):
            LocalStore(relation_backend="bitsets")

    def test_failed_batch_still_invalidates_cursors(self):
        """An exception mid-batch must not leave cursors serving stale pages:
        the edits already applied rebuilt real trunks, so the epoch advances
        and overlapping cursors are invalidated before the error propagates."""
        store = LocalStore()
        query = select_labeled("a", LABELS)
        doc = store.add_tree(tree_of_shape("random", 60, LABELS, 4), query)
        cursor = doc.open_cursor(page_size=2)  # unfetched: depends on the root box
        # a genuinely answer-changing edit (a fingerprint-equal rebuild would
        # let the cursor resume)
        leaf = next(n for n in doc.enumerator.tree.leaves() if n.label != "a")
        with pytest.raises(ServingError, match="EditOperation"):
            doc.apply_edits([Relabel(leaf.node_id, "a"), "bogus"])
        assert doc.epoch == 1  # the applied prefix advanced the epoch
        with pytest.raises(CursorInvalidatedError):
            cursor.fetch()
        # a batch that fails before any edit applied leaves the epoch alone
        with pytest.raises(ServingError):
            doc.apply_edits(["bogus"])
        assert doc.epoch == 1

    def test_remove_closes_every_cursor(self):
        store = LocalStore()
        query = select_labeled("a", LABELS)
        doc = store.add_tree(tree_of_shape("random", 60, LABELS, 4), query)
        cursors = [doc.open_cursor(page_size=3) for _ in range(3)]
        store.remove(doc.doc_id)
        assert all(c.status == "closed" for c in cursors)
        with pytest.raises(ServingError, match="closed"):
            cursors[1].fetch()

    def test_dead_cursors_are_pruned_from_the_document(self):
        store = LocalStore()
        query = select_labeled("a", LABELS)
        doc = store.add_tree(tree_of_shape("random", 60, LABELS, 4), query)
        for _ in range(5):
            doc.open_cursor(page_size=1000).fetch_all()  # exhausts immediately
        closed = doc.open_cursor(page_size=3)
        closed.close()
        live = doc.open_cursor(page_size=3)
        assert doc._cursors == [live]  # exhausted/closed cursors were pruned
        leaf = next(n for n in doc.enumerator.tree.leaves() if n.label != "a")
        doc.apply_edits([Relabel(leaf.node_id, "a")])  # answer-changing: invalidates `live`
        assert doc._cursors == []
        stats = store.stats()
        assert stats["cursors_opened_total"] == 7
        assert stats["cursors_invalidated"] == 1
        assert stats["cursors_open"] == 0


# =========================================================================== cursors
def _tree_with_isolated_answers():
    """A document whose 'a'-answers all live in one region of the tree."""
    nested = (
        "r",
        [
            ("c", [("a", ["a", "a"]), ("a", ["a", "a", "a"]), ("a", ["a"])]),
            ("d", [("b", ["b", "b"]), ("b", ["b", "b"]), ("b", ["b"]), "b"]),
        ],
    )
    return UnrankedTree.from_nested(nested)


class TestCursors:
    def setup_method(self):
        self.store = LocalStore()
        self.query = select_labeled("a", ("r", "c", "d") + LABELS[:2])

    def test_pages_are_duplicate_free_and_complete(self):
        doc = self.store.add_tree(tree_of_shape("random", 150, LABELS, 9),
                                  select_labeled("a", LABELS))
        expected = sorted(map(sorted, doc.answers()))
        cursor = doc.open_cursor(page_size=4)
        pages = []
        seen_offsets = []
        while True:
            page = cursor.fetch()
            seen_offsets.append(page.offset)
            pages.append(page.answers)
            if page.exhausted:
                break
        flat = [a for page in pages for a in page]
        assert len(flat) == len(set(flat))  # duplicate-free across pages
        assert sorted(map(sorted, flat)) == expected  # complete
        assert all(len(p) <= 4 for p in pages)
        assert seen_offsets == sorted(seen_offsets)
        assert cursor.status == "exhausted"

    def test_cursor_resumes_after_unrelated_edit(self):
        doc = self.store.add_tree(_tree_with_isolated_answers(), self.query)
        full = sorted(map(sorted, doc.answers()))
        cursor = doc.open_cursor(page_size=3)
        first = cursor.fetch()
        assert len(first.answers) == 3

        # pick a node whose (relabel) trunk is provably disjoint from the
        # cursor's — the b-region carries no answers, so one must exist
        target = None
        for node in doc.enumerator.tree.nodes():
            if node.is_root() or node.label != "b":
                continue
            if not self.store.would_invalidate(doc.doc_id, cursor, node.node_id):
                target = node
                break
        assert target is not None, "no unrelated edit target found"

        report = doc.apply_edits([Relabel(target.node_id, "b")])
        assert report.cursors_resumed == 1
        assert report.cursors_invalidated == 0
        assert cursor.is_active()

        rest = cursor.fetch_all()
        combined = list(first.answers) + rest
        assert len(combined) == len(set(combined))  # still duplicate-free
        assert sorted(map(sorted, combined)) == full  # the full base-epoch stream

    def test_fresh_cursor_is_invalidated_by_answer_changing_edit(self):
        """Before its first fetch a cursor depends on every slot of the root
        box; an edit that changes the answer set changes a root slot's
        fingerprint — a deterministic invalidation scenario."""
        doc = self.store.add_tree(_tree_with_isolated_answers(), self.query)
        cursor = doc.open_cursor(page_size=5)
        leaf = next(n for n in doc.enumerator.tree.leaves() if n.label == "b")
        report = doc.apply_edits([Relabel(leaf.node_id, "a")])  # adds an answer
        assert report.cursors_invalidated == 1
        with pytest.raises(CursorInvalidatedError) as excinfo:
            cursor.fetch()
        inv = excinfo.value.report
        assert inv.base_epoch == 0
        assert inv.invalidated_epoch == 1
        assert inv.answers_delivered == 0
        assert inv.boxes_hit >= 1
        assert "relabel" in inv.edit
        # the report names the overlapping region: document span + slots
        assert inv.regions
        label, lo, hi, slots = inv.regions[0]
        assert isinstance(label, str) and slots
        assert lo is not None and hi is not None
        assert str(lo) in inv.describe() and "slot" in inv.describe()
        assert cursor.status == "invalidated"
        # the error is re-raised on every subsequent fetch
        with pytest.raises(CursorInvalidatedError):
            cursor.fetch()

    def test_noop_relabel_lets_cursor_resume(self):
        """A relabel to the same label rebuilds the whole trunk, but every
        rebuilt box is slot-for-slot fingerprint-equal to the one it
        replaced, so the fine-grained test sees no changed region: the
        cursor rebinds onto the rebuilt boxes and resumes byte-identically.
        (The coarse whole-box test used to invalidate here.)"""
        doc = self.store.add_tree(_tree_with_isolated_answers(), self.query)
        full = sorted(map(sorted, doc.answers()))
        cursor = doc.open_cursor(page_size=3)
        first = cursor.fetch()
        leaf = next(iter(doc.enumerator.tree.leaves()))
        report = doc.apply_edits([Relabel(leaf.node_id, leaf.label)])
        assert report.boxes_rebuilt > 0  # the trunk really was rebuilt
        assert report.cursors_resumed == 1
        assert report.cursors_invalidated == 0
        assert cursor.is_active()
        combined = list(first.answers) + cursor.fetch_all()
        assert len(combined) == len(set(combined))
        assert sorted(map(sorted, combined)) == full

    def test_label_equivalent_relabel_lets_cursor_resume(self):
        """Relabelling b→d (both unselected) changes content hashes all the
        way up the trunk, yet the automaton treats the labels identically,
        so every rebuilt box has the same build plan — equal slot
        fingerprints — and the cursor survives on the per-slot comparison
        alone, not the content-hash fast path."""
        doc = self.store.add_tree(_tree_with_isolated_answers(), self.query)
        full = sorted(map(sorted, doc.answers()))
        cursor = doc.open_cursor(page_size=3)
        first = cursor.fetch()
        leaf = next(n for n in doc.enumerator.tree.leaves() if n.label == "b")
        report = doc.apply_edits([Relabel(leaf.node_id, "d")])
        assert report.cursors_resumed == 1
        assert report.cursors_invalidated == 0
        combined = list(first.answers) + cursor.fetch_all()
        assert sorted(map(sorted, combined)) == full

    def test_edit_hitting_trunk_invalidates_deterministically(self):
        doc = self.store.add_tree(_tree_with_isolated_answers(), self.query)
        cursor = doc.open_cursor(page_size=2)
        cursor.fetch()
        # an answer-carrying leaf the cursor's remaining region still covers:
        # removing its answer must invalidate
        target = None
        for node in doc.enumerator.tree.nodes():
            if node.is_root() or node.label != "a" or not node.is_leaf():
                continue
            if self.store.would_invalidate(doc.doc_id, cursor, node.node_id):
                target = node
                break
        assert target is not None, "no trunk-hitting edit target found"
        report = doc.apply_edits([Relabel(target.node_id, "b")])
        assert report.cursors_invalidated == 1
        with pytest.raises(CursorInvalidatedError):
            cursor.fetch()

    def test_empty_answer_and_closed_cursor(self):
        # boolean-style query: TOP at the root yields the empty assignment
        from repro.automata.queries import boolean_contains_label

        doc = self.store.add_tree(
            tree_of_shape("random", 40, LABELS, 2), boolean_contains_label("a", LABELS)
        )
        cursor = doc.open_cursor(page_size=10)
        everything = cursor.fetch_all()
        assert frozenset() in everything or everything  # empty answer delivered if present
        cursor.close()
        with pytest.raises(ServingError, match="closed"):
            cursor.fetch()

    def test_cursor_on_word_document(self):
        wva = regex_to_wva(".*x{a}.*", ("a", "b"))
        doc = self.store.add_word(list("ababa"), wva)
        expected = sorted(map(sorted, doc.answers()))
        cursor = doc.open_cursor(page_size=2)
        got = cursor.fetch_all()
        assert sorted(map(sorted, got)) == expected
        assert len(got) == len(set(got))


# =========================================================================== shims
class TestDeprecatedStoreShim:
    def test_document_store_shim_is_deprecated(self):
        """The one sanctioned use of the legacy store name: it must warn and
        behave exactly like LocalStore."""
        with pytest.deprecated_call():
            store = DocumentStore()
        assert isinstance(store, LocalStore)
        doc = store.add_tree(
            tree_of_shape("random", 30, LABELS, 1), select_labeled("a", LABELS)
        )
        assert doc.count() == sum(
            1 for n in doc.enumerator.tree.nodes() if n.label == "a"
        )
