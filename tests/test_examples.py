"""Smoke test: every script in ``examples/`` must run to completion.

The examples are the de-facto user documentation; running each one in a
subprocess (with ``src`` on the import path, exactly as the README instructs)
keeps them from silently rotting when the library's public API moves.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLE_SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_directory_is_populated():
    assert EXAMPLE_SCRIPTS, "examples/ contains no scripts — did the directory move?"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_cleanly(script):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"examples/{script} exited with {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
