"""The unified `repro.engine` API: differential, sharding, catalog, errors.

This module is additionally run with ``-W error::DeprecationWarning`` by
``make check``, so nothing inside the engine may touch a deprecated shim —
every intentional use of a legacy entry point below is wrapped in
``pytest.warns(DeprecationWarning)``.

What is pinned here:

* **Differential equivalence** — for each relation backend, `Engine`
  answers are byte-identical to the legacy ``TreeEnumerator`` /
  ``WordEnumerator`` / ``Spanner`` paths, on the initial document and after
  every edit (tree, word and regex-spanner workloads through the same
  ``Query`` / ``Document`` / ``ResultPage`` types).
* **Sharded equivalence** — ``Engine(workers=N)`` serves byte-identical
  answers, epochs, pages and cursor invalidations to a single-process
  engine and to the legacy ``DocumentStore``, under interleaved edits and
  cursor paging; workers share one catalog directory and *load* (never
  recompile) the parent's persisted compiled query.
* **Catalog manifest** — version + per-digest metadata, ``gc(keep=...)``,
  and the precise :class:`CatalogVersionError` on incompatible versions.
* **Exception hierarchy** — every public exception derives from
  :class:`ReproError` and is importable from top-level :mod:`repro`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import tempfile

import pytest

import repro
from repro import (
    BackendError,
    CatalogError,
    CatalogVersionError,
    CursorInvalidatedError,
    Engine,
    EngineError,
    InvalidEditError,
    ReproError,
    ServingError,
    ShardDiedError,
    ShardProtocolError,
    ShardTimeoutError,
    StaleIteratorError,
)
from repro.automata.queries import select_descendant_pairs, select_labeled
from repro.engine import Document, Query, QueryCatalog, ResultPage
from repro.spanners.compile import regex_to_wva
from repro.trees.edits import Delete, Insert, Relabel
from repro.trees.generators import random_tree, tree_of_shape
from repro.trees.unranked import UnrankedTree

LABELS = ("a", "b", "c", "d")
BACKENDS = ("pairs", "matrix", "bitset")


def canonical(assignments):
    """Canonical JSON text of an answer set (byte-level comparison)."""
    rows = sorted(sorted([str(var), pos] for var, pos in a) for a in assignments)
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))


def tree_query():
    return select_labeled("a", LABELS)


def word_query():
    return regex_to_wva(".*x{aa}.*", ["a", "b"])


# ======================================================================= API
class TestEngineApi:
    def test_one_import_covers_all_three_workloads(self, tmp_path):
        """from repro import Engine: tree, word and spanner through one API."""
        with Engine(catalog=tmp_path / "catalog") as engine:
            tree_doc = engine.add_tree(random_tree(40, LABELS, 3), tree_query())
            word_doc = engine.add_word("abaab", word_query())
            span_doc = engine.add_word(list("aabba"), "x{a+}b.*", alphabet="ab")
            for doc in (tree_doc, word_doc, span_doc):
                assert isinstance(doc, Document)
                assert isinstance(doc.query, Query)
                # compile → persist: every query went through the catalog
                assert doc.query.digest in engine.catalog
                page = doc.page(page_size=3)
                assert isinstance(page, ResultPage)
                answers = doc.answers()
                assert list(page.answers) == answers[: len(page.answers)]
            assert tree_doc.query.kind == "tree"
            assert word_doc.query.kind == "word"
            assert span_doc.query.kind == "word"
            assert span_doc.query.pattern == "x{a+}b.*"
            spans = span_doc.query.spans(span_doc.answers()[0])
            assert spans == {"x": (0, 2)}

    def test_compile_is_content_keyed_and_idempotent(self):
        with Engine() as engine:
            q1 = engine.compile(tree_query())
            q2 = engine.compile(tree_query())
            assert q1 is q2  # equal content → one handle
            assert engine.compile(q1) is q1

    def test_kind_mismatch_and_bad_sources(self):
        with Engine() as engine:
            with pytest.raises(EngineError, match="word query"):
                engine.add_tree(random_tree(10, LABELS, 0), word_query())
            with pytest.raises(EngineError, match="alphabet"):
                engine.compile("x{a+}")
            with pytest.raises(EngineError, match="cannot compile"):
                engine.compile(12345)

    def test_document_lifecycle_and_errors(self):
        engine = Engine()
        doc = engine.add_word("abab", word_query(), doc_id="w1")
        assert "w1" in engine and len(engine) == 1
        assert engine.document("w1") is doc
        with pytest.raises(ServingError):
            engine.add_word("bb", word_query(), doc_id="w1")
        with pytest.raises(ServingError):
            engine.document("nope")
        doc.remove()
        assert len(engine) == 0
        engine.close()
        with pytest.raises(EngineError, match="closed"):
            engine.add_word("ab", word_query())
        engine.close()  # idempotent

    def test_stream_is_invalidated_by_edits(self):
        with Engine() as engine:
            doc = engine.add_tree(random_tree(60, LABELS, 5), tree_query())
            stream = doc.stream()
            next(stream)
            leaf = next(n for n in doc.runtime.tree.nodes() if n.is_leaf())
            doc.apply_edits([Relabel(leaf.node_id, "b")])
            with pytest.raises(StaleIteratorError):
                list(stream)

    def test_backend_typo_fails_fast_as_backend_error(self):
        with pytest.raises(BackendError, match="did you mean"):
            Engine(backend="bitsets")
        # BackendError is also the historical ValueError
        with pytest.raises(ValueError):
            Engine(backend="bitsets")


# ============================================================== differential
class TestDifferentialVsLegacy:
    """Engine answers byte-identical to the legacy paths, per backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tree_workload_matches_tree_enumerator(self, backend):
        tree = tree_of_shape("random", 80, LABELS, 11)
        query = select_descendant_pairs(LABELS)
        with pytest.warns(DeprecationWarning):
            legacy = repro.TreeEnumerator(tree, query, relation_backend=backend)
        with Engine(backend=backend) as engine:
            doc = engine.add_tree(tree, query)
            assert canonical(doc.stream()) == canonical(legacy.assignments())
            leaf = next(n for n in legacy.tree.nodes() if n.is_leaf())
            edits = [
                Relabel(leaf.node_id, "b"),
                Insert(legacy.tree.root.node_id, "a"),
                Delete(leaf.node_id),
            ]
            for edit in edits:
                legacy.apply(edit)
                doc.apply_edits([edit])
                assert canonical(doc.stream()) == canonical(legacy.assignments())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_word_workload_matches_word_enumerator(self, backend):
        word = list("abaabbaab")
        query = word_query()
        with pytest.warns(DeprecationWarning):
            legacy = repro.WordEnumerator(word, query, relation_backend=backend)
        with Engine(backend=backend) as engine:
            doc = engine.add_word(word, query)
            assert canonical(doc.stream()) == canonical(legacy.assignments())
            positions = legacy.position_ids()
            legacy.replace(positions[1], "a")
            doc.apply_edits([("replace", positions[1], "a")])
            assert canonical(doc.stream()) == canonical(legacy.assignments())
            legacy.insert_after(positions[0], "a")
            doc.apply_edits([("insert_after", positions[0], "a")])
            assert canonical(doc.stream()) == canonical(legacy.assignments())
            legacy.delete(positions[2])
            doc.apply_edits([("delete", positions[2])])
            assert canonical(doc.stream()) == canonical(legacy.assignments())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spanner_workload_matches_spanner_path(self, backend):
        from repro.spanners import Spanner

        pattern = ".* k{[ab]+} = v{[ab]+} .*"
        alphabet = ("a", "b", "=", ";", " ")
        document = list("ab=ba;a=b ab = ba ")
        spanner = Spanner(pattern, alphabet)
        with pytest.warns(DeprecationWarning):
            legacy = spanner.enumerator(document, relation_backend=backend)
        with Engine(backend=backend) as engine:
            doc = engine.add_word(document, pattern, alphabet=alphabet)
            assert canonical(doc.stream()) == canonical(legacy.assignments())
            # the Spanner object itself also compiles to the same query
            assert engine.compile(spanner).digest == doc.query.digest

    def test_page_cursor_is_bound_to_its_document(self):
        with Engine() as engine:
            doc_a = engine.add_tree(random_tree(30, LABELS, 1), tree_query())
            doc_b = engine.add_tree(random_tree(30, LABELS, 2), tree_query())
            page_a = doc_a.page(page_size=2)
            doc_b.page(page_size=2)  # doc_b's cursor 0 exists too
            with pytest.raises(EngineError, match="belongs to document"):
                doc_b.page(cursor=page_a)

    def test_failed_construction_cleans_owned_catalog_dir(self):
        import glob

        before = set(glob.glob(os.path.join(tempfile.gettempdir(), "repro-engine-catalog-*")))
        with pytest.raises(ValueError):
            Engine(workers=1, start_method="not-a-start-method")
        after = set(glob.glob(os.path.join(tempfile.gettempdir(), "repro-engine-catalog-*")))
        assert after == before  # the mkdtemp'd shared dir was removed

    def test_pagination_equals_full_enumeration(self):
        with Engine() as engine:
            doc = engine.add_tree(tree_of_shape("random", 120, LABELS, 7), tree_query())
            expected = doc.answers()
            paged = [a for page in doc.pages(page_size=7) for a in page]
            assert paged == expected  # same order, duplicate-free, complete
            offsets = [p.offset for p in doc.pages(page_size=7)]
            assert offsets == sorted(offsets)


# ================================================================== sharding
def _run_traffic(engine_like, docs, edits_by_doc):
    """One deterministic interleaved edit/page schedule; returns a transcript."""
    transcript = []
    pages = {doc.doc_id: doc.page(page_size=3) for doc in docs}
    for round_index in range(4):
        for doc in docs:
            edits = edits_by_doc[doc.doc_id]
            if round_index < len(edits):
                report = doc.apply_edits([edits[round_index]])
                transcript.append(("epoch", doc.doc_id, report.epoch))
            page = pages[doc.doc_id]
            try:
                # an exhausted stream releases its cursor id: reopen
                page = doc.page(page_size=3) if page.exhausted else doc.page(cursor=page)
                transcript.append(
                    ("page", doc.doc_id, canonical(page.answers), page.offset, page.exhausted)
                )
            except CursorInvalidatedError as exc:
                transcript.append(("invalidated", doc.doc_id, exc.report.answers_delivered))
                page = doc.page(page_size=3)
                transcript.append(
                    ("page", doc.doc_id, canonical(page.answers), page.offset, page.exhausted)
                )
            pages[doc.doc_id] = page
    for doc in docs:
        transcript.append(("final", doc.doc_id, canonical(doc.stream()), doc.epoch))
    return transcript


class _LegacyStoreAdapter:
    """Drive a legacy DocumentStore document through the Document interface."""

    class _Doc:
        def __init__(self, served):
            self._served = served
            self.doc_id = served.doc_id
            self._cursors = {}

        @property
        def epoch(self):
            return self._served.epoch

        def page(self, cursor=None, page_size=3):
            if cursor is None:
                opened = self._served.open_cursor(page_size=page_size)
                page = opened.fetch()
            else:
                opened = self._cursors[cursor.cursor_id]
                page = opened.fetch()
            result = ResultPage(
                answers=tuple(page.answers),
                offset=page.offset,
                exhausted=page.exhausted,
                cursor_id=opened.cursor_id,
                document_id=self.doc_id,
                epoch=self._served.epoch,
            )
            self._cursors[opened.cursor_id] = opened
            return result

        def apply_edits(self, edits):
            return self._served.apply_edits(edits)

        def stream(self):
            return self._served.answers()


def _interleaved_workload(trees):
    edits_by_doc = {}
    for index, tree in enumerate(trees):
        leaves = [n.node_id for n in tree.nodes() if n.is_leaf()]
        edits_by_doc[index] = [
            Relabel(leaves[0], "b"),
            Insert(tree.root.node_id, "a"),
            Relabel(leaves[1], "a"),
            Delete(leaves[2]),
        ]
    return edits_by_doc


class TestSharding:
    def test_sharded_equals_single_process_and_legacy_store(self, tmp_path):
        """The acceptance gate: interleaved edits + cursor pages, byte-equal."""
        trees = [random_tree(60, LABELS, seed) for seed in range(4)]
        query = tree_query()
        edits = _interleaved_workload(trees)

        with Engine(catalog=tmp_path / "cat", workers=2) as sharded:
            docs = [sharded.add_tree(t, query, doc_id=i) for i, t in enumerate(trees)]
            sharded_transcript = _run_traffic(sharded, docs, edits)
        with Engine(catalog=tmp_path / "cat2") as single:
            docs = [single.add_tree(t, query, doc_id=i) for i, t in enumerate(trees)]
            single_transcript = _run_traffic(single, docs, edits)
        with pytest.warns(DeprecationWarning):
            store = repro.DocumentStore()
        legacy_docs = [
            _LegacyStoreAdapter._Doc(store.add_tree(t, query, doc_id=i))
            for i, t in enumerate(trees)
        ]
        legacy_transcript = _run_traffic(store, legacy_docs, edits)

        assert sharded_transcript == single_transcript == legacy_transcript

    def test_workers_share_one_catalog_and_do_not_recompile(self, tmp_path):
        catalog_dir = tmp_path / "shared"
        query = select_descendant_pairs(LABELS)
        with Engine(catalog=catalog_dir, workers=2) as engine:
            compiled = engine.compile(query)
            # the parent persisted the compiled query before any worker use
            catalog = QueryCatalog(os.fspath(catalog_dir))
            assert compiled.digest in catalog
            docs = [
                engine.add_tree(random_tree(30, LABELS, seed), query) for seed in range(3)
            ]
            expected = [canonical(doc.stream()) for doc in docs]
        # a fresh single-process engine over the same catalog directory loads
        # the persisted entry and serves byte-identical answers
        with Engine(catalog=catalog_dir) as fresh:
            docs = [
                fresh.add_tree(random_tree(30, LABELS, seed), query) for seed in range(3)
            ]
            assert [canonical(doc.stream()) for doc in docs] == expected

    def test_sharded_word_documents_and_temporary_catalog(self):
        with Engine(workers=2) as engine:
            owned = engine.catalog.root
            assert os.path.isdir(owned)  # auto-created shared directory
            docs = [
                engine.add_word("abaab", word_query()),
                engine.add_word("aabb", word_query()),
                engine.add_word(list("aaa"), "x{a+}", alphabet="ab"),
            ]
            with Engine() as single:
                singles = [
                    single.add_word("abaab", word_query()),
                    single.add_word("aabb", word_query()),
                    single.add_word(list("aaa"), "x{a+}", alphabet="ab"),
                ]
                for sharded_doc, local_doc in zip(docs, singles):
                    assert canonical(sharded_doc.stream()) == canonical(local_doc.stream())
            report = docs[0].apply_edits([("replace", 1, "a")])
            assert report.epoch == 1 and docs[0].epoch == 1
            stats = engine.stats()
            assert stats["workers"] == 2
            assert stats["documents"] == 3
            assert len(stats["per_shard"]) == 2
        assert not os.path.exists(owned)  # owned temp catalog removed on close

    def test_sharded_error_propagation(self):
        tree = random_tree(20, LABELS, 2)
        root_id = tree.root.node_id
        with Engine(workers=1) as engine:
            doc = engine.add_tree(tree, tree_query())
            with pytest.raises(ServingError, match="EditOperation"):
                doc.apply_edits([("replace", 0, "a")])
            with pytest.raises(InvalidEditError):
                # deleting an internal node is invalid; the worker's exception
                # travels back and is re-raised with its original type
                doc.apply_edits([Delete(root_id)])
            with pytest.raises(EngineError, match="worker"):
                doc.runtime  # noqa: B018 — property access raises in sharded mode

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_start_methods(self, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {start_method} unavailable on {sys.platform}")
        with Engine(workers=1, start_method=start_method) as engine:
            doc = engine.add_word("abaa", word_query())
            single_answers = canonical(doc.stream())
        with Engine() as local:
            assert canonical(local.add_word("abaa", word_query()).stream()) == single_answers


# ================================================== pipelined shard protocol
class TestPipelinedIngest:
    """`add_documents`: one batch per shard, all batches in flight at once."""

    def test_batch_matches_sequential_adds_and_order(self, tmp_path):
        trees = [random_tree(40, LABELS, seed) for seed in range(5)]
        query = tree_query()
        with Engine(catalog=tmp_path / "a", workers=2) as engine:
            docs = engine.add_documents(trees, query, doc_ids=[10, 11, 12, 13, 14])
            assert [doc.doc_id for doc in docs] == [10, 11, 12, 13, 14]
            batched = [canonical(doc.stream()) for doc in docs]
            assert all(doc.epoch == 0 for doc in docs)
        with Engine(catalog=tmp_path / "b", workers=2) as engine:
            docs = [engine.add_tree(tree, query) for tree in trees]
            assert batched == [canonical(doc.stream()) for doc in docs]
        with Engine() as engine:
            docs = engine.add_documents(trees, query)  # LocalStore facade
            assert batched == [canonical(doc.stream()) for doc in docs]

    def test_mixed_kinds_and_per_item_queries(self):
        with Engine(workers=2) as engine:
            docs = engine.add_documents(
                [random_tree(20, LABELS, 1), "abaab", list("aabb")],
                queries=[tree_query(), word_query(), word_query()],
            )
            assert [doc.kind for doc in docs] == ["tree", "word", "word"]
            with Engine() as single:
                singles = single.add_documents(
                    [random_tree(20, LABELS, 1), "abaab", list("aabb")],
                    queries=[tree_query(), word_query(), word_query()],
                )
                for sharded_doc, local_doc in zip(docs, singles):
                    assert canonical(sharded_doc.stream()) == canonical(local_doc.stream())

    def test_duplicate_ids_fail_fast_before_any_work(self):
        trees = [random_tree(20, LABELS, seed) for seed in range(3)]
        with Engine(workers=1) as engine:
            engine.add_tree(trees[0], tree_query(), doc_id="taken")
            with pytest.raises(ServingError, match="already in use"):
                engine.add_documents(trees, tree_query(), doc_ids=["x", "taken", "y"])
            # parent-side validation rejects the batch before shipping it
            assert engine.doc_ids() == ["taken"]

    def test_worker_side_item_failure_keeps_earlier_documents(self):
        """A failure only the worker can see: the batch reply names it,
        earlier items stay registered, the original type is re-raised."""
        trees = [random_tree(20, LABELS, seed) for seed in range(3)]
        with Engine(workers=1) as engine:
            compiled = engine.compile(tree_query())
            # plant a document in the worker the parent does not know about
            engine._pool.request(
                0,
                "add_batch",
                [("ghost", "tree", trees[0], compiled.source, compiled.digest)],
            )
            with pytest.raises(ServingError, match="already in use"):
                engine.add_documents(trees, compiled, doc_ids=["x", "ghost", "y"])
            # the item before the collision was added and is usable
            assert "x" in engine
            assert canonical(engine.document("x").stream())
            assert "y" not in engine and "ghost" not in engine

    def test_bad_arguments(self):
        with Engine() as engine:
            with pytest.raises(EngineError, match="needs a query"):
                engine.add_documents(["ab"])
            with pytest.raises(EngineError, match="differ in length"):
                engine.add_documents(["ab"], word_query(), doc_ids=[1, 2])
            with pytest.raises(EngineError, match="differ in length"):
                engine.add_documents(["ab"], queries=[word_query(), word_query()])

    def test_local_store_batch_facade(self):
        """LocalStore.add_documents: the same batch entry point a worker has."""
        from repro.engine.local import LocalStore

        store = LocalStore()
        docs = store.add_documents(
            [random_tree(20, LABELS, 1), "abaab"],
            queries=[tree_query(), word_query()],
            doc_ids=["t", "w"],
        )
        assert [doc.doc_id for doc in docs] == ["t", "w"]
        assert [doc.kind for doc in docs] == ["tree", "word"]
        with pytest.raises(ServingError, match="needs a query"):
            store.add_documents(["ab"])
        with pytest.raises(ServingError, match="differ in length"):
            store.add_documents(["ab"], word_query(), doc_ids=[1, 2])

    def test_remove_invalidates_live_streams_in_both_modes(self):
        tree = random_tree(80, LABELS, 3)
        for workers in (0, 1):
            with Engine(workers=workers) as engine:
                doc = engine.add_tree(tree, tree_query())
                stream = doc.stream()
                next(stream)
                doc.remove()
                with pytest.raises(StaleIteratorError):
                    list(stream)

    def test_remove_invalidates_unadvanced_streams_too(self):
        """The base epoch/version is captured at stream *creation*: a stream
        never advanced before the removal must not serve the dropped
        document's answers — identically in both modes."""
        tree = random_tree(80, LABELS, 3)
        for workers in (0, 1):
            with Engine(workers=workers) as engine:
                doc = engine.add_tree(tree, tree_query())
                stream = doc.stream()  # created, never advanced
                doc.remove()
                with pytest.raises(StaleIteratorError):
                    next(stream)


class TestStreamingProtocol:
    """Sharded stream(): worker-pushed chunks under credit, not page loops."""

    def test_large_stream_fewer_round_trips_than_chunks(self):
        tree = random_tree(300, LABELS, 3)
        query = select_descendant_pairs(LABELS)
        with Engine(workers=1) as engine:
            doc = engine.add_tree(tree, query)
            answers = list(doc.stream())
            stats = engine.stats()
        streaming = stats["streaming"]
        assert len(answers) > 4 * streaming["chunk_size"]  # a genuinely big set
        assert streaming["chunks"] >= 5
        # the acceptance gate: pushed chunks beat one round trip per page
        assert streaming["round_trips"] < streaming["chunks"]
        with Engine() as single:
            assert canonical(answers) == canonical(single.add_tree(tree, query).stream())

    def test_stream_stale_after_any_edit_matches_local_semantics(self):
        tree = random_tree(120, LABELS, 4)
        leaf = next(n for n in tree.nodes() if n.is_leaf())
        for workers in (0, 1):
            with Engine(workers=workers) as engine:
                doc = engine.add_tree(tree, tree_query())
                stream = doc.stream()
                first = next(stream)
                doc.apply_edits([Relabel(leaf.node_id, "b")])
                with pytest.raises(StaleIteratorError):
                    list(stream)
                # a fresh stream serves the updated document
                fresh = list(doc.stream())
                assert first is not None and fresh is not None

    def test_concurrent_streams_demultiplex_by_request_id(self):
        """Chunks of two streams on one shard interleave; answers must not mix."""
        trees = [random_tree(200, LABELS, seed) for seed in (7, 8)]
        query = select_descendant_pairs(LABELS)
        with Engine() as single:
            expected = [canonical(single.add_tree(t, query).stream()) for t in trees]
        with Engine(workers=1) as engine:  # both documents on the same shard
            doc_a, doc_b = engine.add_documents(trees, query)
            stream_a = doc_a.stream()
            stream_b = doc_b.stream()
            first_a = next(stream_a)  # opens A, worker pushes A-chunks
            # B opened second, read first: its chunks arrive behind A's
            collected_b = list(stream_b)
            collected_a = [first_a, *stream_a]
            assert canonical(collected_a) == expected[0]
            assert canonical(collected_b) == expected[1]

    def test_out_of_order_reply_collection(self):
        with Engine(workers=2) as engine:
            docs = engine.add_documents(
                [random_tree(30, LABELS, seed) for seed in range(4)], tree_query()
            )
            pool = engine._pool
            # same shard: two requests in flight, collected in reverse order
            shard = engine._shard_of[docs[0].doc_id]
            doc_on_shard = [d.doc_id for d in docs if engine._shard_of[d.doc_id] == shard]
            first = pool.submit(shard, "epoch", doc_on_shard[0])
            second = pool.submit(shard, "stats")
            stats_payload = pool.collect(shard, second)  # buffers the epoch reply
            assert stats_payload["documents"] == len(doc_on_shard)
            assert pool.collect(shard, first) == 0
            # across shards: submit everywhere, collect in reverse shard order
            ids = [pool.submit(s, "stats") for s in range(len(pool))]
            payloads = [pool.collect(s, rid) for s, rid in reversed(list(enumerate(ids)))]
            assert sum(p["documents"] for p in payloads) == len(docs)


class TestProtocolFaults:
    """Worker death: precise errors, no hangs, surviving shards stay usable."""

    @staticmethod
    def _kill_worker(engine, shard):
        process = engine._pool._shards[shard].process
        process.kill()
        process.join(timeout=5.0)

    def test_kill_mid_stream_raises_precise_error_no_hang(self):
        tree = random_tree(400, LABELS, 5)
        query = select_descendant_pairs(LABELS)
        with Engine(workers=1) as engine:
            doc = engine.add_tree(tree, query)
            stream = doc.stream()
            next(stream)
            self._kill_worker(engine, 0)
            with pytest.raises(ShardDiedError, match="shard worker 0"):
                list(stream)  # buffered chunks may drain; then the death error
            with pytest.raises(ShardDiedError, match="dead"):
                doc.count()  # the dead shard stays precisely unusable

    def test_kill_mid_batch_add_names_document_ids(self):
        trees = [random_tree(25, LABELS, seed) for seed in range(4)]
        with Engine(workers=2) as engine:
            engine.add_tree(random_tree(10, LABELS, 0), tree_query())  # warm shard 0
            self._kill_worker(engine, 1)
            with pytest.raises(ShardDiedError, match=r"document ids") as excinfo:
                engine.add_documents(trees, tree_query(), doc_ids=["a", "b", "c", "d"])
            # round-robin placement after the warm-up add: the dead shard 1
            # held exactly the documents 'a' and 'c'
            assert "'a'" in str(excinfo.value) and "'c'" in str(excinfo.value)
            # the other half of the batch landed on the living shard
            assert "b" in engine and "d" in engine

    def test_pool_survives_one_dead_worker(self):
        alive_tree = random_tree(30, LABELS, 1)
        with Engine(workers=2) as engine:
            alive = engine.add_tree(alive_tree, tree_query())  # shard 0
            victim = engine.add_tree(random_tree(30, LABELS, 2), tree_query())  # shard 1
            before = canonical(alive.stream())
            self._kill_worker(engine, 1)
            with pytest.raises(ShardDiedError):
                victim.count()
            # the surviving shard still serves, edits and pages
            assert canonical(alive.stream()) == before
            leaf = next(n.node_id for n in alive_tree.nodes() if n.is_leaf())
            assert alive.apply_edits([Relabel(leaf, "b")]).epoch == 1
            page = alive.page(page_size=5)
            assert len(page.answers) <= 5
            # new documents route around the dead shard
            rerouted = engine.add_documents(
                [random_tree(15, LABELS, seed) for seed in range(3)], tree_query()
            )
            assert [engine._shard_of[d.doc_id] for d in rerouted] == [0, 0, 0]
            stats = engine.stats()
            assert stats["per_shard"][1] is None  # dead shard: numbers gone
            assert stats["shards"][1]["alive"] is False
            # no phantom in-flight work left behind by the dead shard
            assert stats["shards"][1]["inflight_requests"] == 0
            assert stats["queue_depth"] == 0

    def test_failed_edit_batch_resyncs_epoch_mirror(self):
        tree = tree_of_shape("random", 60, LABELS, 9)
        with Engine(workers=1) as engine:
            doc = engine.add_tree(tree, tree_query())
            leaf = next(n for n in tree.nodes() if n.is_leaf())
            root_id = tree.root.node_id
            stream = doc.stream()
            next(stream)
            with pytest.raises(InvalidEditError):
                # first edit applies, second is invalid: a *partial* batch —
                # the epoch still advances inside the worker
                doc.apply_edits([Relabel(leaf.node_id, "b"), Delete(root_id)])
            assert doc.epoch == 1  # mirror resynced from the worker
            with pytest.raises(StaleIteratorError):
                list(stream)  # the partial batch made the stream stale


def _isolated_answers_tree():
    """A document whose 'a'-answers all live in one region (the c-subtree)."""
    nested = (
        "r",
        [
            ("c", [("a", ["a", "a"]), ("a", ["a", "a", "a"]), ("a", ["a"])]),
            ("d", [("b", ["b", "b"]), ("b", ["b", "b"]), ("b", ["b"]), "b"]),
        ],
    )
    return UnrankedTree.from_nested(nested)


ISOLATED_LABELS = ("r", "c", "d", "a", "b")


class TestResumeRateCounter:
    """`cursors_resumed_across_edit_batches`: the measured cursor resume rate."""

    @staticmethod
    def _probe_targets(tree, query):
        """Find, in a scratch local store, (resume_target, invalidate_target):
        a b-node whose relabel trunk is provably disjoint from a freshly
        fetched page-3 cursor, and an a-leaf (relabelling it away removes an
        answer the cursor still has to read, so the changed slots overlap
        its remaining-read masks)."""
        from repro.engine.local import LocalStore

        store = LocalStore()
        doc = store.add_tree(tree.copy(), query)
        cursor = doc.open_cursor(page_size=3)
        cursor.fetch()
        resume_target = next(
            node.node_id
            for node in doc.enumerator.tree.nodes()
            if not node.is_root()
            and node.label == "b"
            and not store.would_invalidate(doc.doc_id, cursor, node.node_id)
        )
        invalidate_target = next(
            node.node_id
            for node in doc.enumerator.tree.nodes()
            if node.label == "a" and node.is_leaf()
        )
        return resume_target, invalidate_target

    def _orchestrate(self, engine):
        """One resume + one invalidation, deterministically; returns reports."""
        tree = _isolated_answers_tree()
        query = select_labeled("a", ISOLATED_LABELS)
        resume_target, invalidate_target = self._probe_targets(tree, query)
        doc = engine.add_tree(tree, query)
        page = doc.page(page_size=3)
        resumed = invalidated = 0
        report = doc.apply_edits([Relabel(resume_target, "b")])
        resumed += report.cursors_resumed
        invalidated += report.cursors_invalidated
        page = doc.page(cursor=page)  # the resumed cursor keeps paging
        report = doc.apply_edits([Relabel(invalidate_target, "b")])  # removes an answer
        resumed += report.cursors_resumed
        invalidated += report.cursors_invalidated
        with pytest.raises(CursorInvalidatedError):
            doc.page(cursor=page)
        return resumed, invalidated

    def test_counter_matches_orchestrated_reports_local(self):
        with Engine() as engine:
            resumed, invalidated = self._orchestrate(engine)
            stats = engine.stats()
        assert (resumed, invalidated) == (1, 1)  # the scenario exercises both
        assert stats["cursors_resumed_across_edit_batches"] == resumed
        assert stats["cursors_invalidated"] == invalidated

    def test_counter_merges_across_shards(self):
        with Engine(workers=2) as engine:
            totals = [self._orchestrate(engine) for _ in range(2)]  # one per shard
            stats = engine.stats()
        assert totals == [(1, 1), (1, 1)]
        assert stats["cursors_resumed_across_edit_batches"] == 2
        assert stats["cursors_invalidated"] == 2

    @pytest.mark.timeout(60)
    def test_counter_survives_failover_replica_rebuild(self):
        """Replication regression: a replica rebuilt after a crash restarts
        its store-level counters at zero, and every batch is applied on R
        replicas at once.  The engine's totals must be the *logical* counts —
        monotonic across failover, not doubled by replication (the old
        shard-summed merge got both wrong)."""
        with Engine(workers=3, replicas=2) as engine:
            docs = [
                engine.add_tree(random_tree(20, LABELS, seed), tree_query(), doc_id=seed)
                for seed in range(3)
            ]
            assert self._orchestrate(engine) == (1, 1)
            assert engine.stats()["cursors_resumed_across_edit_batches"] == 1
            TestProtocolFaults._kill_worker(engine, 0)
            for doc in docs:
                doc.count()  # observe the death, wherever it landed
            engine.await_repairs()  # rebuilds lost replicas with zeroed stores
            assert self._orchestrate(engine) == (1, 1)
            stats = engine.stats()
        assert stats["cursors_resumed_across_edit_batches"] == 2
        assert stats["cursors_invalidated"] == 2

    @pytest.mark.timeout(120)
    def test_failover_with_open_cursors_matches_clean_run(self):
        """Kill a replica of the cursor's document between edit batches, with
        the cursor open: the surviving replica keeps serving byte-identical
        pages, the rebuilt replica rejoins, and the engine-level
        resume/invalidate counters end up exactly where a clean (kill-free)
        run ends up — the fine-grained delta reports must not confuse the
        replicated counter merge or the failover page path."""

        def run(kill: bool):
            transcript = []
            with Engine(workers=3, replicas=2) as engine:
                pads = [
                    engine.add_tree(
                        random_tree(16, LABELS, seed), tree_query(), doc_id=f"pad{seed}"
                    )
                    for seed in range(3)
                ]
                tree = _isolated_answers_tree()
                query = select_labeled("a", ISOLATED_LABELS)
                resume_target, invalidate_target = self._probe_targets(tree, query)
                doc = engine.add_tree(tree, query, doc_id="main")
                page = doc.page(page_size=2)
                transcript.append(sorted(map(sorted, page.answers)))
                report = doc.apply_edits([Relabel(resume_target, "b")])
                transcript.append((report.cursors_resumed, report.cursors_invalidated))
                if kill:
                    victim = min(engine._replicas_of["main"])
                    TestProtocolFaults._kill_worker(engine, victim)
                    for d in pads + [doc]:
                        d.count()  # observe the death, wherever it landed
                    engine.await_repairs()
                page = doc.page(cursor=page)  # the open cursor keeps paging
                transcript.append(sorted(map(sorted, page.answers)))
                report = doc.apply_edits([Relabel(invalidate_target, "b")])
                transcript.append((report.cursors_resumed, report.cursors_invalidated))
                with pytest.raises(CursorInvalidatedError):
                    doc.page(cursor=page)
                stats = engine.stats()
                transcript.append(
                    (
                        stats["cursors_resumed_across_edit_batches"],
                        stats["cursors_invalidated"],
                    )
                )
            return transcript

        assert run(kill=True) == run(kill=False)


# ======================================================= replication/failover
class TestReplication:
    """``Engine(workers=N, replicas=R)``: placement, mirroring, validation."""

    def test_replication_parameter_validation(self):
        with pytest.raises(EngineError, match="replication"):
            Engine(replicas=2)  # replication needs a sharded engine
        with pytest.raises(EngineError, match="replicas"):
            Engine(workers=2, replicas=3)  # more copies than workers
        with pytest.raises(EngineError, match="replicas"):
            Engine(workers=2, replicas=0)

    def test_every_document_lands_on_r_distinct_shards(self):
        with Engine(workers=3, replicas=2) as engine:
            docs = engine.add_documents(
                [random_tree(15, LABELS, seed) for seed in range(5)], tree_query()
            )
            for doc in docs:
                replicas = engine._replicas_of[doc.doc_id]
                assert len(replicas) == 2
                assert len(set(replicas)) == 2
            stats = engine.stats()
            assert stats["replicas"] == 2
            assert stats["documents"] == 5  # logical documents, not copies
            replica_rows = [row["replica_of"] for row in stats["shards"]]
            assert sum(len(row) for row in replica_rows) == 10  # 5 docs x 2

    def test_replicated_traffic_matches_single_process(self, tmp_path):
        """The replicated fleet's transcript is byte-identical to one process."""
        trees = [tree_of_shape("random", 60, LABELS, seed) for seed in range(3)]
        query = select_descendant_pairs(LABELS)
        edits = {}
        for doc_index, tree in enumerate(trees):
            leaves = [n.node_id for n in tree.nodes() if n.is_leaf()]
            edits[doc_index] = [
                Relabel(leaves[0], "b"),
                Insert(tree.root.node_id, "c"),
                Relabel(leaves[1], "a"),
                Delete(leaves[2]),
            ]
        with Engine(catalog=tmp_path / "cat", workers=3, replicas=2) as replicated:
            docs = [replicated.add_tree(t, query, doc_id=i) for i, t in enumerate(trees)]
            replicated_transcript = _run_traffic(replicated, docs, edits)
        with Engine(catalog=tmp_path / "cat2") as single:
            docs = [single.add_tree(t, query, doc_id=i) for i, t in enumerate(trees)]
            single_transcript = _run_traffic(single, docs, edits)
        assert replicated_transcript == single_transcript


class TestFailover:
    """Kill any single worker mid-workload: zero documents, zero answers lost."""

    @pytest.mark.timeout(60)
    def test_single_kill_loses_nothing(self):
        trees = [tree_of_shape("random", 50, LABELS, seed) for seed in range(4)]
        with Engine(workers=3, replicas=2) as engine:
            docs = [engine.add_tree(t, tree_query(), doc_id=i) for i, t in enumerate(trees)]
            baseline = {d.doc_id: canonical(d.stream()) for d in docs}
            pages = {d.doc_id: d.page(page_size=2) for d in docs}
            TestProtocolFaults._kill_worker(engine, 0)
            # every read, page continuation and edit keeps working
            for doc in docs:
                follow_up = doc.page(cursor=pages[doc.doc_id])
                both = list(pages[doc.doc_id].answers) + list(follow_up.answers)
                assert both == list(doc.page(page_size=4).answers)
            assert {d.doc_id: canonical(d.stream()) for d in docs} == baseline
            for doc in docs:
                leaf = next(n.node_id for n in trees[doc.doc_id].nodes() if n.is_leaf())
                assert doc.apply_edits([Relabel(leaf, doc.doc_id % 2 and "a" or "b")]).epoch == 1
            # background repair brings every document back to 2 replicas
            engine.await_repairs()
            for doc in docs:
                assert len(engine._replicas_of[doc.doc_id]) == 2
            stats = engine.stats()
            assert stats["deaths_total"] == 1
            assert stats["failovers_total"] >= 1
            assert stats["migrations_total"] >= 1
            assert stats["repairs_pending"] == 0
            assert stats["shards"][0]["generation"] == 1  # respawned worker
            # the rebuilt replica serves identical bytes: kill the *other*
            # original copy, forcing reads onto the restored one
            post_edit = {d.doc_id: canonical(d.stream()) for d in docs}
            TestProtocolFaults._kill_worker(engine, 1)
            assert {d.doc_id: canonical(d.stream()) for d in docs} == post_edit
            engine.await_repairs()
            for doc in docs:
                assert len(engine._replicas_of[doc.doc_id]) == 2

    @pytest.mark.timeout(60)
    def test_crash_mid_batch_with_replicas_keeps_every_document(self):
        """A worker crashing before its ingest reply loses no documents: each
        one also landed on its other replica (and is re-replicated after)."""
        trees = [random_tree(20, LABELS, seed) for seed in range(6)]
        with Engine(workers=3, replicas=2, fault_plan="1:add_batch:0:crash") as engine:
            docs = engine.add_documents(trees, tree_query())  # shard 1 dies mid-batch
            assert len(docs) == 6
            for doc in docs:
                assert doc.count() >= 0  # every document is reachable
            engine.await_repairs()
            for doc in docs:
                assert len(engine._replicas_of[doc.doc_id]) == 2
            assert engine.stats()["deaths_total"] == 1

    @pytest.mark.timeout(60)
    def test_stream_fails_over_mid_flight_without_loss(self):
        """A replica dying mid-stream is invisible: the stream reopens on a
        survivor and replays past the answers already yielded.  The answer
        set deliberately exceeds the push-stream credit window (4 x 256), so
        the kill lands while chunks are still owed."""
        tree = tree_of_shape("random", 100, LABELS, 7)
        query = select_descendant_pairs(LABELS)
        with Engine(workers=2, replicas=2) as engine:
            doc = engine.add_tree(tree, query)
            expected = canonical(doc.stream())
            assert doc.count() > 4 * 256  # must outrun the buffered window
            stream = doc.stream()
            first = [next(stream) for _ in range(3)]
            victim = engine._pick_read_replica(doc.doc_id)
            TestProtocolFaults._kill_worker(engine, victim)
            collected = canonical(first + list(stream))
            assert collected == expected
            assert engine.failovers_total >= 1

    def test_orchestrated_replicated_stats(self):
        """The failover counters, end to end, in one deterministic scenario."""
        with Engine(workers=3, replicas=2, deadline=5.0) as engine:
            docs = [
                engine.add_tree(random_tree(20, LABELS, seed), tree_query(), doc_id=seed)
                for seed in range(3)
            ]
            stats = engine.stats()
            assert stats["deaths_total"] == 0
            assert stats["timeouts_total"] == 0
            assert stats["failovers_total"] == 0
            assert stats["migrations_total"] == 0
            assert stats["repairs_pending"] == 0
            assert all(row["generation"] == 0 for row in stats["shards"])
            victim_docs = [
                d.doc_id for d in docs if 0 in engine._replicas_of[d.doc_id]
            ]
            TestProtocolFaults._kill_worker(engine, 0)
            for doc in docs:
                doc.count()  # reads fail over; the death is observed here
            engine.await_repairs()
            stats = engine.stats()
            assert stats["deaths_total"] == 1
            assert stats["timeouts_total"] == 0
            assert stats["failovers_total"] >= 1
            # exactly the dead shard's documents were re-migrated
            assert stats["migrations_total"] == len(victim_docs)
            assert stats["repairs_pending"] == 0
            assert [row["generation"] for row in stats["shards"]] == [1, 0, 0]
            # replica_of names every document twice across the fleet
            placed = sorted(
                doc_id for row in stats["shards"] for doc_id in row["replica_of"]
            )
            assert placed == sorted(list(range(3)) * 2)

    @pytest.mark.timeout(60)
    def test_placement_counters_stay_balanced_through_churn(self):
        """``_placed`` (the per-shard placement load steering `_pick_shards`)
        must mirror the live replica map after any mix of adds, removes and
        failovers, and never go negative — every replica-release path routes
        through one helper."""

        def check(engine):
            live = {}
            for shards in engine._replicas_of.values():
                for shard in shards:
                    live[shard] = live.get(shard, 0) + 1
            assert all(count >= 0 for count in engine._placed.values())
            assert {s: c for s, c in engine._placed.items() if c} == live

        with Engine(workers=3, replicas=2) as engine:
            docs = [
                engine.add_tree(random_tree(20, LABELS, seed), tree_query(), doc_id=seed)
                for seed in range(5)
            ]
            check(engine)
            engine.remove(docs[0].doc_id)
            check(engine)
            TestProtocolFaults._kill_worker(engine, 1)
            for doc in docs[1:]:
                doc.count()  # observe the death
            engine.await_repairs()
            check(engine)
            engine.remove(docs[1].doc_id)
            engine.add_documents([random_tree(15, LABELS, 9)], tree_query())
            check(engine)


class TestDeadlines:
    """No protocol wait may outlive its deadline; hung workers are failed over."""

    @pytest.mark.timeout(30)
    def test_hung_worker_mid_request_raises_timeout(self):
        with Engine(workers=1, deadline=0.5, fault_plan="0:count:0:hang") as engine:
            doc = engine.add_tree(random_tree(20, LABELS, 3), tree_query())
            with pytest.raises(ShardTimeoutError, match="count") as excinfo:
                doc.count()
            assert excinfo.value.shard == 0
            assert excinfo.value.deadline == 0.5
            assert excinfo.value.elapsed >= 0.4
            stats = engine.stats()
            assert stats["timeouts_total"] == 1
            assert stats["deaths_total"] == 1  # a timeout *is* a death
            assert stats["shards"][0]["alive"] is False

    @pytest.mark.timeout(30)
    def test_hung_worker_mid_stream_raises_timeout(self):
        # the document needs > STREAM_PAGE_SIZE answers so the stream spans
        # several chunks; the worker hangs pushing the second one
        tree = tree_of_shape("random", 100, LABELS, 7)
        with Engine(
            workers=1, deadline=0.5, fault_plan="0:stream_chunk:1:hang"
        ) as engine:
            doc = engine.add_tree(tree, select_descendant_pairs(LABELS))
            stream = doc.stream()
            with pytest.raises(ShardTimeoutError):
                list(stream)
            assert engine.stats()["timeouts_total"] == 1

    @pytest.mark.timeout(30)
    def test_hung_worker_fails_over_under_replication(self):
        """With replicas, a hang is just a slow crash: reads keep answering."""
        with Engine(
            workers=3, replicas=2, deadline=0.5, fault_plan="*:count:0:hang"
        ) as engine:
            doc = engine.add_tree(random_tree(20, LABELS, 3), tree_query())
            answers = list(doc.stream())
            assert doc.count() == len(answers)  # first count hangs, fails over
            stats = engine.stats()
            assert stats["timeouts_total"] >= 1
            assert stats["failovers_total"] >= 1
            engine.await_repairs()
            assert len(engine._replicas_of[doc.doc_id]) == 2


class TestFaultInjection:
    """The fault plan itself, and the parent's protocol hardening."""

    def test_garbage_reply_is_rejected_with_precise_error(self):
        with Engine(workers=1, fault_plan="0:count:0:garbage") as engine:
            doc = engine.add_tree(random_tree(20, LABELS, 3), tree_query())
            with pytest.raises(ShardProtocolError, match="shard worker 0") as excinfo:
                doc.count()
            message = str(excinfo.value)
            assert "garbage" in message  # names the malformed message shape
            assert "request_id, status" in message  # and the expected shape
            # the lying worker is dead, not trusted further
            with pytest.raises(ShardDiedError):
                doc.count()

    def test_garbage_reply_is_a_death_for_failover_purposes(self):
        with Engine(workers=2, replicas=2, fault_plan="0:count:0:garbage") as engine:
            doc = engine.add_tree(random_tree(20, LABELS, 3), tree_query())
            answers = list(doc.stream())
            assert doc.count() == len(answers)  # ShardProtocolError -> failover
            engine.await_repairs()
            assert canonical(doc.stream()) == canonical(answers)

    def test_crash_before_edit_reply_keeps_replicas_consistent(self):
        """The worst crash window: the edit may or may not have landed on the
        crashed replica.  Survivors agree, and the rebuilt replica replays
        the full edit log, so the fleet converges either way."""
        tree = tree_of_shape("random", 60, LABELS, 9)
        leaf = next(n.node_id for n in tree.nodes() if n.is_leaf())
        with Engine(workers=2, replicas=2, fault_plan="1:edits:0:crash") as engine:
            doc = engine.add_tree(tree, tree_query())
            report = doc.apply_edits([Relabel(leaf, "b")])
            assert report.epoch == 1
            after_edit = canonical(doc.stream())
            engine.await_repairs()
            assert len(engine._replicas_of[doc.doc_id]) == 2
            # force reads onto the rebuilt replica: kill the survivor
            survivor = next(
                s for s in engine._replicas_of[doc.doc_id]
                if engine._pool.generation(s) == 0
            )
            TestProtocolFaults._kill_worker(engine, survivor)
            assert canonical(doc.stream()) == after_edit
            assert doc.apply_edits([Relabel(leaf, "a")]).epoch == 2

    def test_fault_spec_parsing(self):
        from repro.engine.faults import FaultRule, parse_fault_spec

        plan = parse_fault_spec("1:edits:0:crash; *:page:2:hang; 0:add_batch:*:slow:0.05")
        assert [r.action for r in plan.rules] == ["crash", "hang", "slow"]
        assert plan.rules[1].shard is None and plan.rules[1].nth == 2
        assert plan.rules[2].nth is None and plan.rules[2].param == 0.05
        with pytest.raises(EngineError, match="fault clause"):
            parse_fault_spec("1:edits:crash")
        with pytest.raises(EngineError, match="action"):
            parse_fault_spec("1:edits:0:explode")
        # one-shot rules disarm; wildcard-nth rules keep firing
        rule = FaultRule(None, "page", 1, "crash")
        assert [rule.matches(0, "page") for _ in range(3)] == [False, True, False]
        always = FaultRule(None, "page", None, "slow", 0.0)
        assert [always.matches(0, "page") for _ in range(3)] == [True, True, True]

    def test_malformed_fault_specs_name_the_offending_clause(self):
        """Every parse error carries the exact clause that failed — vital
        when ``REPRO_FAULTS`` holds a long multi-clause plan."""
        from repro.engine.faults import parse_fault_spec

        # unknown action: the clause and the valid action list are both named
        with pytest.raises(
            EngineError,
            match=r"bad fault clause '1:edits:0:explode'.*unknown fault action 'explode'",
        ) as excinfo:
            parse_fault_spec("0:count:0:garbage; 1:edits:0:explode")
        assert "crash, hang, slow, garbage" in str(excinfo.value)
        # non-integer nth / shard
        with pytest.raises(EngineError, match=r"bad fault clause '\*:page:two:hang'"):
            parse_fault_spec("*:page:two:hang")
        with pytest.raises(EngineError, match=r"bad fault clause 'one:page:0:hang'"):
            parse_fault_spec("one:page:0:hang")
        # malformed float param
        with pytest.raises(
            EngineError, match=r"bad fault clause '0:add_batch:\*:slow:fast'"
        ):
            parse_fault_spec("0:add_batch:*:slow:fast")
        # wrong field counts name the clause and the expected shape
        for bad in ("1:edits:crash", "1:edits:0:crash:1.0:extra"):
            with pytest.raises(
                EngineError,
                match=rf"bad fault clause '{bad}': expected shard:op:nth:action",
            ):
                parse_fault_spec(bad)

    def test_fault_plan_from_environment(self, monkeypatch):
        from repro.engine.faults import FAULTS_ENV_VAR

        monkeypatch.setenv(FAULTS_ENV_VAR, "0:count:0:garbage")
        with Engine(workers=1) as engine:
            doc = engine.add_tree(random_tree(15, LABELS, 2), tree_query())
            with pytest.raises(ShardProtocolError):
                doc.count()

    def test_deferred_stream_closes_cleared_on_shard_death(self):
        """Regression: deferred stream closes queued for a worker that dies
        before flushing them must be dropped with the death — a leak here
        poisoned the respawned worker's stream bookkeeping."""
        # > 4 x 256 answers: the stream is still owed chunks when abandoned,
        # so the close is genuinely deferred
        tree = tree_of_shape("random", 100, LABELS, 7)
        with Engine(workers=1) as engine:
            doc = engine.add_tree(tree, select_descendant_pairs(LABELS))
            stream = doc.stream()
            next(stream)
            stream.close()  # abandoning mid-stream defers the close message
            state = engine._pool._shards[0]
            assert state.deferred_closes  # the close is parked, not yet sent
            TestProtocolFaults._kill_worker(engine, 0)
            with pytest.raises(ShardDiedError):
                doc.count()  # the send observes the death
            assert state.deferred_closes == []  # nothing leaked past the death


# ============================================================ catalog gc race
class TestCatalogGcRace:
    def test_truncated_entry_raises_catalog_error_not_json_crash(self, tmp_path):
        catalog = QueryCatalog(os.fspath(tmp_path))
        query = tree_query()
        catalog.save(query)
        digest = catalog.digest_of(query)
        with open(catalog.path_of(digest), "w", encoding="utf8") as handle:
            handle.write('{"format": 1, "kind": "tre')  # a torn write
        fresh = QueryCatalog(os.fspath(tmp_path))
        with pytest.raises(CatalogError, match="corrupt"):
            fresh.load(digest)
        with pytest.raises(CatalogError, match="corrupt"):
            fresh.get(query)  # corrupt entries never silently recompile

    def test_entry_collected_by_concurrent_gc_compiles_instead(self, tmp_path):
        catalog = QueryCatalog(os.fspath(tmp_path))
        query = tree_query()
        catalog.save(query)
        digest = catalog.digest_of(query)
        fresh = QueryCatalog(os.fspath(tmp_path))
        os.unlink(fresh.path_of(digest))  # another process gc'd it just now
        entry = fresh.get(query)  # no exists-probe race left: compiles
        assert entry.kind == "tree"
        with pytest.raises(CatalogError, match="concurrent gc"):
            QueryCatalog(os.fspath(tmp_path)).load(digest)

    def test_gc_on_pre_manifest_catalog(self, tmp_path):
        catalog = QueryCatalog(os.fspath(tmp_path))
        keep_query = tree_query()
        drop_query = select_descendant_pairs(LABELS)
        catalog.save(keep_query)
        catalog.save(drop_query)
        os.unlink(catalog.manifest_path)  # a PR-3-era catalog
        reopened = QueryCatalog(os.fspath(tmp_path))
        removed = reopened.gc(keep=[keep_query])
        assert removed == [reopened.digest_of(drop_query)]
        assert reopened.load(reopened.digest_of(keep_query), use_cache=False).kind == "tree"

    def test_worker_survives_parent_gc_of_standing_query(self, tmp_path):
        query = select_descendant_pairs(LABELS)
        tree = random_tree(40, LABELS, 6)
        with Engine(catalog=tmp_path / "cat", workers=1) as engine:
            compiled = engine.compile(query)
            engine.catalog.gc(keep=[])  # parent collects the digest ...
            doc = engine.add_tree(tree, compiled)  # ... while the worker needs it
            sharded = canonical(doc.stream())
        with Engine() as single:
            assert sharded == canonical(single.add_tree(tree, query).stream())


# =================================================================== catalog
class TestCatalogManifestAndGc:
    def test_manifest_records_version_and_per_digest_metadata(self, tmp_path):
        catalog = QueryCatalog(os.fspath(tmp_path))
        query = tree_query()
        catalog.save(query)
        manifest = catalog.read_manifest()
        assert manifest["library_version"] == repro.__version__
        meta = catalog.entry_meta(query)
        assert meta["kind"] == "tree"
        assert meta["automaton_states"] > 0 and meta["file_bytes"] > 0
        # the manifest is not an entry
        assert catalog.digests() == [catalog.digest_of(query)]

    def test_gc_deletes_unreferenced_digests(self, tmp_path):
        catalog = QueryCatalog(os.fspath(tmp_path))
        keep_query = tree_query()
        drop_query = select_descendant_pairs(LABELS)
        catalog.save(keep_query)
        catalog.save(drop_query)
        removed = catalog.gc(keep=[keep_query])
        assert removed == [catalog.digest_of(drop_query)]
        assert catalog.digests() == [catalog.digest_of(keep_query)]
        assert catalog.entry_meta(drop_query) is None
        # gc accepts digests too, and is idempotent
        assert catalog.gc(keep=[catalog.digest_of(keep_query)]) == []
        # the surviving entry still loads
        assert catalog.load(catalog.digest_of(keep_query), use_cache=False).kind == "tree"

    def test_incompatible_manifest_raises_catalog_version_error(self, tmp_path):
        catalog = QueryCatalog(os.fspath(tmp_path))
        catalog.save(tree_query())
        manifest_path = catalog.manifest_path
        with open(manifest_path, encoding="utf8") as handle:
            manifest = json.load(handle)
        manifest["library_version"] = "99.0.0"
        with open(manifest_path, "w", encoding="utf8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CatalogVersionError, match="99.0.0"):
            QueryCatalog(os.fspath(tmp_path))
        manifest["library_version"] = repro.__version__
        manifest["manifest_format"] = 999
        with open(manifest_path, "w", encoding="utf8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CatalogVersionError, match="format"):
            QueryCatalog(os.fspath(tmp_path))

    def test_pre_manifest_catalog_stays_readable(self, tmp_path):
        catalog = QueryCatalog(os.fspath(tmp_path))
        query = tree_query()
        catalog.save(query)
        os.unlink(catalog.manifest_path)  # simulate a PR-3-era catalog
        reopened = QueryCatalog(os.fspath(tmp_path))
        assert reopened.read_manifest() is None
        assert reopened.load(reopened.digest_of(query), use_cache=False).kind == "tree"


# ==================================================================== errors
class TestUnifiedErrors:
    EXPORTED = [
        "ReproError",
        "BackendError",
        "CatalogError",
        "CatalogVersionError",
        "CircuitStructureError",
        "CursorInvalidatedError",
        "EngineError",
        "InvalidAutomatonError",
        "InvalidEditError",
        "InvalidTreeError",
        "RegexSyntaxError",
        "ServingError",
        "StaleIteratorError",
        "UnsupportedUpdateError",
    ]

    def test_every_public_exception_derives_from_repro_error(self):
        for name in self.EXPORTED:
            exc_type = getattr(repro, name)
            assert issubclass(exc_type, ReproError), name

    def test_refinements(self):
        assert issubclass(BackendError, ValueError)
        assert issubclass(CatalogVersionError, repro.CatalogError)
        assert issubclass(CursorInvalidatedError, StaleIteratorError)
        assert issubclass(ServingError, EngineError)

    def test_one_handler_catches_the_pipeline(self):
        with Engine() as engine:
            with pytest.raises(ReproError):
                engine.compile("x{a+}")  # missing alphabet → EngineError
            with pytest.raises(ReproError):
                engine.document("missing")  # ServingError
        with pytest.raises(ReproError):
            Engine(backend="nope")  # BackendError


# =============================================================== deprecation
class TestDeprecatedShims:
    def test_legacy_entry_points_warn_and_point_at_the_engine(self):
        tree = random_tree(15, LABELS, 1)
        with pytest.warns(DeprecationWarning, match="Engine"):
            repro.TreeEnumerator(tree, tree_query())
        with pytest.warns(DeprecationWarning, match="Engine"):
            repro.WordEnumerator(["a", "b"], word_query())
        with pytest.warns(DeprecationWarning, match="Engine"):
            repro.DocumentStore()

    def test_shims_are_the_same_machinery(self):
        from repro.core.enumerator import TreeRuntime, WordRuntime
        from repro.engine.local import LocalStore

        assert issubclass(repro.TreeEnumerator, TreeRuntime)
        assert issubclass(repro.WordEnumerator, WordRuntime)
        assert issubclass(repro.DocumentStore, LocalStore)
