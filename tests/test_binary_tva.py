"""Tests for binary TVAs: runs, acceptance, state classification and
homogenization (Section 2, Lemma 2.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import (
    ALL_BINARY_TVAS,
    boolean_has_a_leaf,
    nondet_witness,
    random_binary_tva,
    random_binary_tree,
    select_a_leaf,
    select_pair_ab,
    subset_of_a_leaves,
)
from repro.automata.binary_tva import BinaryTVA
from repro.automata.brute_force import (
    binary_satisfying_assignments,
    binary_satisfying_assignments_by_valuations,
)
from repro.automata.homogenize import homogenize
from repro.errors import InvalidAutomatonError
from repro.trees.binary import BinaryTree


class TestBinaryTVABasics:
    def test_size_and_labels(self):
        automaton = select_a_leaf()
        assert automaton.size() == 2 + len(automaton.initial) + len(automaton.delta)
        assert automaton.labels() == {"a", "b", "c"}

    def test_validation_unknown_state(self):
        with pytest.raises(InvalidAutomatonError):
            BinaryTVA(["q"], [], [("a", frozenset(), "missing")], [], [])

    def test_validation_unknown_variable(self):
        with pytest.raises(InvalidAutomatonError):
            BinaryTVA(["q"], [], [("a", frozenset({"x"}), "q")], [], [])

    def test_validation_bad_final(self):
        with pytest.raises(InvalidAutomatonError):
            BinaryTVA(["q"], [], [], [], ["other"])

    def test_validation_empty_states(self):
        with pytest.raises(InvalidAutomatonError):
            BinaryTVA([], [], [], [], [])

    def test_accepts_simple(self):
        automaton = select_a_leaf()
        tree = BinaryTree.from_nested(("c", "a", "b"))
        a_leaf = [l for l in tree.leaves() if l.label == "a"][0]
        b_leaf = [l for l in tree.leaves() if l.label == "b"][0]
        assert automaton.accepts(tree, {a_leaf.node_id: {"x"}})
        assert not automaton.accepts(tree, {b_leaf.node_id: {"x"}})
        assert not automaton.accepts(tree, {})

    def test_boolean_query(self):
        automaton = boolean_has_a_leaf()
        with_a = BinaryTree.from_nested(("c", "a", "b"))
        without_a = BinaryTree.from_nested(("c", "b", "b"))
        assert automaton.accepts(with_a, {})
        assert not automaton.accepts(without_a, {})

    def test_check_run(self):
        automaton = select_a_leaf()
        tree = BinaryTree.from_nested(("c", "a", "b"))
        a_leaf = [l for l in tree.leaves() if l.label == "a"][0]
        b_leaf = [l for l in tree.leaves() if l.label == "b"][0]
        run = {tree.root.node_id: "q1", a_leaf.node_id: "q1", b_leaf.node_id: "q0"}
        assert automaton.check_run(tree, {a_leaf.node_id: {"x"}}, run)
        bad_run = dict(run)
        bad_run[tree.root.node_id] = "q0"
        assert not automaton.check_run(tree, {a_leaf.node_id: {"x"}}, bad_run)
        assert not automaton.check_run(tree, {a_leaf.node_id: {"x"}}, {})

    def test_relabel_states_preserves_semantics(self):
        automaton = select_a_leaf()
        renamed = automaton.relabel_states({"q0": 0, "q1": 1})
        tree = random_binary_tree(5, 4)
        assert binary_satisfying_assignments(automaton, tree) == binary_satisfying_assignments(
            renamed, tree
        )

    def test_with_final(self):
        automaton = select_a_leaf().with_final(["q0"])
        tree = BinaryTree.from_nested(("c", "a", "b"))
        assert automaton.accepts(tree, {})


class TestStateClassification:
    def test_select_a_leaf_classes(self):
        automaton = select_a_leaf()
        assert automaton.zero_states == {"q0"}
        assert automaton.one_states == {"q1"}
        assert automaton.is_homogenized()

    def test_pair_automaton_classes(self):
        automaton = select_pair_ab()
        assert "q00" in automaton.zero_states
        assert {"q10", "q01", "q11"} <= automaton.one_states
        assert automaton.is_homogenized()

    def test_non_homogenized_automaton_detected(self):
        # One state that can be reached both with and without annotations.
        automaton = BinaryTVA(
            ["q"],
            ["x"],
            [("a", frozenset(), "q"), ("a", frozenset({"x"}), "q")],
            [("a", "q", "q", "q")],
            ["q"],
        )
        assert not automaton.is_homogenized()
        assert automaton.zero_states == {"q"}
        assert automaton.one_states == {"q"}

    def test_trim_removes_unreachable(self):
        automaton = BinaryTVA(
            ["q", "dead"],
            [],
            [("a", frozenset(), "q")],
            [("a", "q", "q", "q")],
            ["q"],
        )
        trimmed = automaton.trim()
        assert trimmed.states == {"q"}
        assert trimmed.is_trimmed()


class TestHomogenize:
    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    def test_homogenize_is_homogenized(self, factory):
        homogenized = homogenize(factory())
        assert homogenized.is_homogenized()

    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_homogenize_preserves_assignments(self, factory, seed):
        automaton = factory()
        homogenized = homogenize(automaton)
        tree = random_binary_tree(seed, 6)
        assert binary_satisfying_assignments(automaton, tree) == binary_satisfying_assignments(
            homogenized, tree
        )

    def test_homogenize_idempotent_on_homogenized(self):
        automaton = select_a_leaf()
        assert homogenize(automaton) is automaton

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=4),
    )
    def test_homogenize_preserves_assignments_random(self, automaton_seed, tree_seed, n_states):
        automaton = random_binary_tva(automaton_seed, n_states=n_states)
        homogenized = homogenize(automaton)
        assert homogenized.is_homogenized()
        tree = random_binary_tree(tree_seed, 4)
        assert binary_satisfying_assignments(automaton, tree) == binary_satisfying_assignments(
            homogenized, tree
        )


class TestBruteForceOraclesAgree:
    """The two oracles must agree; this validates the DP oracle used everywhere."""

    @pytest.mark.parametrize("factory", [select_a_leaf, nondet_witness, subset_of_a_leaves])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_oracles_agree_on_small_trees(self, factory, seed):
        automaton = factory()
        tree = random_binary_tree(seed, 2)
        assert binary_satisfying_assignments(automaton, tree) == (
            binary_satisfying_assignments_by_valuations(automaton, tree)
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000), st.integers(min_value=0, max_value=1_000))
    def test_oracles_agree_random(self, automaton_seed, tree_seed):
        automaton = random_binary_tva(automaton_seed, n_states=2, variables=("x",))
        tree = random_binary_tree(tree_seed, 2)
        assert binary_satisfying_assignments(automaton, tree) == (
            binary_satisfying_assignments_by_valuations(automaton, tree)
        )
