"""Tests for the tree data structures: unranked trees, binary trees, edits,
generators and serialization."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidEditError, InvalidTreeError
from repro.trees.binary import BinaryTree
from repro.trees.edits import Delete, Insert, InsertRight, Relabel, random_edit_sequence
from repro.trees.generators import (
    ALL_SHAPES,
    caterpillar_tree,
    comb_tree,
    full_binary_unranked_tree,
    path_tree,
    random_binary_tree,
    random_tree,
    random_word_tree,
    star_tree,
    tree_of_shape,
    xml_like_document,
)
from repro.trees.serialization import (
    from_dict,
    from_sexpr,
    from_xml,
    to_dict,
    to_sexpr,
    to_xml,
)
from repro.trees.unranked import UnrankedTree


# --------------------------------------------------------------------------- unranked trees
class TestUnrankedTree:
    def test_single_node(self):
        tree = UnrankedTree("a")
        assert tree.size() == 1
        assert tree.root.is_leaf()
        assert tree.root.is_root()
        assert tree.height() == 0

    def test_from_nested_roundtrip(self):
        nested = ("a", ["b", ("c", ["d", "e"]), "f"])
        tree = UnrankedTree.from_nested(nested)
        assert tree.size() == 6
        assert tree.to_nested() == nested
        tree.validate()

    def test_node_lookup_and_contains(self):
        tree = UnrankedTree.from_nested(("a", ["b", "c"]))
        for node in tree.nodes():
            assert tree.node(node.node_id) is node
            assert node.node_id in tree
        assert 999 not in tree
        with pytest.raises(InvalidTreeError):
            tree.node(999)

    def test_document_order(self):
        tree = UnrankedTree.from_nested(("a", [("b", ["c", "d"]), "e"]))
        labels = [n.label for n in tree.nodes()]
        assert labels == ["a", "b", "c", "d", "e"]

    def test_insert_first_child(self):
        tree = UnrankedTree("root")
        first = tree.insert_first_child(tree.root.node_id, "x")
        second = tree.insert_first_child(tree.root.node_id, "y")
        assert [c.label for c in tree.root.children] == ["y", "x"]
        assert first.parent is tree.root
        assert second.child_index() == 0

    def test_insert_right_sibling(self):
        tree = UnrankedTree.from_nested(("a", ["b", "c"]))
        b = tree.nodes_with_label("b")[0]
        new = tree.insert_right_sibling(b.node_id, "z")
        assert [c.label for c in tree.root.children] == ["b", "z", "c"]
        assert new.parent is tree.root

    def test_insert_right_sibling_of_root_fails(self):
        tree = UnrankedTree("a")
        with pytest.raises(InvalidEditError):
            tree.insert_right_sibling(tree.root.node_id, "b")

    def test_delete_leaf(self):
        tree = UnrankedTree.from_nested(("a", ["b", "c"]))
        b = tree.nodes_with_label("b")[0]
        tree.delete_leaf(b.node_id)
        assert [c.label for c in tree.root.children] == ["c"]
        assert b.node_id not in tree

    def test_delete_internal_node_fails(self):
        tree = UnrankedTree.from_nested(("a", [("b", ["c"])]))
        b = tree.nodes_with_label("b")[0]
        with pytest.raises(InvalidEditError):
            tree.delete_leaf(b.node_id)

    def test_delete_root_fails(self):
        tree = UnrankedTree("a")
        with pytest.raises(InvalidEditError):
            tree.delete_leaf(tree.root.node_id)

    def test_relabel(self):
        tree = UnrankedTree("a")
        tree.relabel(tree.root.node_id, "z")
        assert tree.root.label == "z"

    def test_version_changes_on_edits(self):
        tree = UnrankedTree("a")
        v0 = tree.version
        tree.insert_first_child(tree.root.node_id, "b")
        assert tree.version > v0

    def test_copy_preserves_ids_and_structure(self):
        tree = random_tree(30, seed=1)
        clone = tree.copy()
        assert clone.to_nested() == tree.to_nested()
        assert clone.node_ids() == tree.node_ids()
        clone.relabel(clone.root.node_id, "zzz")
        assert tree.root.label != "zzz"

    def test_node_ids_are_stable_across_edits(self):
        tree = UnrankedTree.from_nested(("a", ["b", "c"]))
        c = tree.nodes_with_label("c")[0]
        b = tree.nodes_with_label("b")[0]
        tree.delete_leaf(b.node_id)
        tree.insert_first_child(tree.root.node_id, "d")
        assert tree.node(c.node_id) is c

    def test_ancestors_depth_and_subtree_size(self):
        tree = UnrankedTree.from_nested(("a", [("b", [("c", ["d"])])]))
        d = tree.nodes_with_label("d")[0]
        assert d.depth() == 3
        assert [n.label for n in d.ancestors()] == ["c", "b", "a"]
        assert tree.root.subtree_size() == 4

    def test_height_and_leaves(self):
        tree = path_tree(10, seed=0)
        assert tree.height() == 9
        assert sum(1 for _ in tree.leaves()) == 1
        star = star_tree(10, seed=0)
        assert star.height() == 1
        assert sum(1 for _ in star.leaves()) == 9


# --------------------------------------------------------------------------- edits
class TestEditOperations:
    def test_each_edit_kind_applies(self):
        tree = UnrankedTree.from_nested(("a", ["b", "c"]))
        b = tree.nodes_with_label("b")[0]
        Relabel(b.node_id, "z").apply_to_tree(tree)
        assert tree.node(b.node_id).label == "z"
        Insert(tree.root.node_id, "n").apply_to_tree(tree)
        assert tree.root.children[0].label == "n"
        InsertRight(b.node_id, "m").apply_to_tree(tree)
        assert [c.label for c in tree.root.children] == ["n", "z", "m", "c"]
        Delete(b.node_id).apply_to_tree(tree)
        assert b.node_id not in tree

    def test_describe(self):
        assert "relabel" in Relabel(1, "a").describe()
        assert "insertR" in InsertRight(1, "a").describe()
        assert "insert(" in Insert(1, "a").describe()
        assert "delete" in Delete(1).describe()

    def test_random_edit_sequence_is_replayable(self):
        tree = random_tree(25, seed=3)
        edits = random_edit_sequence(tree, ["a", "b", "c"], 60, seed=7)
        assert len(edits) == 60
        replay = tree.copy()
        for edit in edits:
            edit.apply_to_tree(replay)
        replay.validate()
        assert replay.size() >= 2

    def test_random_edit_sequence_deterministic(self):
        tree = random_tree(20, seed=3)
        first = random_edit_sequence(tree, ["a", "b"], 30, seed=11)
        second = random_edit_sequence(tree, ["a", "b"], 30, seed=11)
        assert first == second


# --------------------------------------------------------------------------- generators
class TestGenerators:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_shapes_produce_valid_trees(self, shape):
        tree = tree_of_shape(shape, 60, seed=5)
        tree.validate()
        assert tree.size() >= 2

    def test_sizes_are_respected(self):
        for size in (1, 2, 17, 64):
            assert random_tree(size, seed=1).size() == size
            assert path_tree(size, seed=1).size() == size
            assert star_tree(size, seed=1).size() == size

    def test_caterpillar_and_comb_sizes(self):
        assert abs(caterpillar_tree(41, seed=0).size() - 41) <= 1
        assert abs(comb_tree(41, seed=0).size() - 41) <= 2

    def test_full_binary_tree(self):
        tree = full_binary_unranked_tree(4, seed=0)
        assert tree.size() == 2 ** 5 - 1
        assert tree.height() == 4

    def test_xml_like_document_shape(self):
        doc = xml_like_document(10, 3, seed=2)
        assert doc.root.label == "catalog"
        assert len(doc.root.children) == 10
        assert all(len(r.children) == 3 for r in doc.root.children)

    def test_word_tree(self):
        word = random_word_tree(12, seed=0)
        assert len(word.root.children) == 12
        assert all(c.is_leaf() for c in word.root.children)

    def test_generators_are_deterministic(self):
        assert random_tree(30, seed=9).to_nested() == random_tree(30, seed=9).to_nested()

    def test_random_binary_tree_generator(self):
        tree = random_binary_tree(20, seed=4)
        tree.validate()
        assert tree.size() == 2 * 20 + 1


# --------------------------------------------------------------------------- binary trees
class TestBinaryTree:
    def test_from_nested(self):
        tree = BinaryTree.from_nested(("a", "b", ("c", "d", "e")))
        assert tree.size() == 5
        assert tree.height() == 2
        tree.validate()
        assert tree.to_nested() == ("a", "b", ("c", "d", "e"))

    def test_leaves_in_document_order(self):
        tree = BinaryTree.from_nested(("a", ("b", "x", "y"), "z"))
        assert [l.label for l in tree.leaves()] == ["x", "y", "z"]

    def test_bad_nested_raises(self):
        with pytest.raises(InvalidTreeError):
            BinaryTree.from_nested(("a", "b"))

    def test_preorder_ids(self):
        tree = BinaryTree.from_nested(("a", ("b", "c", "d"), "e"))
        labels_by_id = {n.node_id: n.label for n in tree.nodes()}
        assert labels_by_id[0] == "a"
        assert labels_by_id[1] == "b"

    def test_single_leaf(self):
        tree = BinaryTree.from_nested("only")
        assert tree.size() == 1
        assert tree.root.is_leaf()


# --------------------------------------------------------------------------- serialization
class TestSerialization:
    def test_sexpr_roundtrip(self):
        tree = UnrankedTree.from_nested(("a", ["b", ("c", ["d"]), "e"]))
        text = to_sexpr(tree)
        back = from_sexpr(text)
        assert back.to_nested() == tree.to_nested()

    def test_sexpr_parse_errors(self):
        for bad in ["", "(", "(a))", "(a (b)", "()", "a"]:
            with pytest.raises(InvalidTreeError):
                from_sexpr(bad)

    def test_dict_roundtrip(self):
        tree = random_tree(40, seed=6)
        back = from_dict(to_dict(tree))
        assert back.to_nested() == tree.to_nested()

    def test_xml_roundtrip(self):
        tree = UnrankedTree.from_nested(("html", [("body", ["p", "p"]), "footer"]))
        text = to_xml(tree)
        assert text.startswith("<html>")
        back = from_xml(text)
        assert back.to_nested() == tree.to_nested()

    def test_xml_invalid_label(self):
        tree = UnrankedTree("not a name")
        with pytest.raises(InvalidTreeError):
            to_xml(tree)

    def test_xml_parse_errors(self):
        for bad in ["", "<a>", "<a></b>"]:
            with pytest.raises(InvalidTreeError):
                from_xml(bad)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=10_000))
    def test_sexpr_roundtrip_random(self, size, seed):
        tree = random_tree(size, seed=seed)
        assert from_sexpr(to_sexpr(tree)).to_nested() == tree.to_nested()
