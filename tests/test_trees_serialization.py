"""Round-trip tests for :mod:`repro.trees.serialization`.

Randomized structural round-trips for all three formats (s-expressions,
JSON-style dicts, XML-ish markup) over the benchmark tree generators, plus
the format-specific contracts: dict output carries node ids, XML rejects
non-XML-name labels, and the parsers reject malformed input.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidTreeError
from repro.trees.generators import tree_of_shape
from repro.trees.serialization import (
    from_dict,
    from_sexpr,
    from_xml,
    to_dict,
    to_sexpr,
    to_xml,
)
from repro.trees.unranked import UnrankedTree

LABELS = ("a", "b", "c", "d")
SHAPES = ("random", "path", "star", "caterpillar", "binary")
SIZES = (1, 2, 17, 64, 150)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_sexpr_roundtrip(shape, size, seed):
    tree = tree_of_shape(shape, size, LABELS, seed)
    back = from_sexpr(to_sexpr(tree))
    assert back.to_nested() == tree.to_nested()
    assert back.size() == tree.size()
    # a second round trip is the identity on the textual form
    assert to_sexpr(back) == to_sexpr(tree)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_dict_roundtrip(shape, size, seed):
    tree = tree_of_shape(shape, size, LABELS, seed)
    payload = to_dict(tree)
    back = from_dict(payload)
    assert back.to_nested() == tree.to_nested()


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_xml_roundtrip(shape, size, seed):
    tree = tree_of_shape(shape, size, LABELS, seed)
    back = from_xml(to_xml(tree))
    assert back.to_nested() == tree.to_nested()


def test_dict_payload_snapshots_node_ids():
    tree = UnrankedTree.from_nested(("a", ["b", ("c", ["d"])]))
    payload = to_dict(tree)
    ids = set()

    def walk(item):
        ids.add(item["id"])
        for child in item["children"]:
            walk(child)

    walk(payload)
    assert ids == set(tree.node_ids())


def test_xml_rejects_bad_labels():
    tree = UnrankedTree.from_nested(("not a name", ["b"]))
    with pytest.raises(InvalidTreeError, match="not a valid XML name"):
        to_xml(tree)


@pytest.mark.parametrize(
    "bad",
    ["", "(", "(a", "(a))", "((a))", "(a (b)) junk", "()"],
)
def test_sexpr_rejects_malformed(bad):
    with pytest.raises(InvalidTreeError):
        from_sexpr(bad)


@pytest.mark.parametrize("bad", ["", "<a>", "<a></b>", "</a>", "<a><b></a></b>"])
def test_xml_rejects_malformed(bad):
    with pytest.raises(InvalidTreeError):
        from_xml(bad)
