"""Tests for the cross-document build cache (hash-consed subtree builds).

The cache (:class:`repro.circuits.build.BuildCache`) memoizes whole built
subtrees — box plus enumeration index — across the documents of one store,
keyed by ``(automaton digest, relation backend, subtree content hash)``.
Pinned here:

* content hashing: canonical encoding, None (= uncacheable) propagation,
  automaton digests content-keyed and stable;
* the cache itself: LRU eviction, hit/miss/eviction counters, a capacity of
  0 disables it entirely;
* cross-document sharing: a duplicated document builds from the cache and
  enumerates byte-identical answers, and edits to one document never
  disturb another that shares its subtrees (boxes are immutable);
* configuration: ``Engine(build_cache_size=...)`` reaches the stores on
  every shard and surfaces summed counters through ``Engine.stats()``.
"""

from __future__ import annotations

import json

import pytest

from repro import Engine, EngineError
from repro.automata.queries import select_labeled
from repro.circuits.build import (
    BuildCache,
    automaton_digest,
    encode_content,
    internal_content_hash,
    leaf_content_hash,
)
from repro.core.enumerator import TreeRuntime
from repro.engine.local import LocalStore
from repro.trees.edits import Relabel
from repro.trees.generators import tree_of_shape

LABELS = ("a", "b", "c", "d")


def canonical(assignments):
    rows = sorted(sorted([str(var), node] for var, node in a) for a in assignments)
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))


def tree_query():
    return select_labeled("a", LABELS)


# --------------------------------------------------------------------- hashing
class TestContentHashing:
    def test_encode_content_is_injective_on_supported_types(self):
        values = ["a", "ab", "", 0, 1, -1, True, False, None, ("a", 1), ("a", (1,))]
        encoded = [encode_content(v) for v in values]
        assert all(e is not None for e in encoded)
        assert len(set(encoded)) == len(values)  # no collisions, incl. 1 vs True

    def test_exotic_labels_are_uncacheable_not_wrongly_shared(self):
        class Exotic:
            pass

        assert encode_content(Exotic()) is None
        assert encode_content(("a", Exotic())) is None  # propagates through tuples
        assert leaf_content_hash(Exotic(), 0) is None

    def test_leaf_hash_depends_on_label_and_payload(self):
        assert leaf_content_hash("a", 0) == leaf_content_hash("a", 0)
        assert leaf_content_hash("a", 0) != leaf_content_hash("b", 0)
        assert leaf_content_hash("a", 0) != leaf_content_hash("a", 1)

    def test_internal_hash_propagates_none_children(self):
        left = leaf_content_hash("a", 0)
        right = leaf_content_hash("b", 1)
        assert internal_content_hash("CONCAT_HH", left, right) is not None
        assert internal_content_hash("CONCAT_HH", None, right) is None
        assert internal_content_hash("CONCAT_HH", left, None) is None
        assert internal_content_hash("CONCAT_HH", left, right) != internal_content_hash(
            "CONCAT_HV", left, right
        )

    def test_automaton_digest_is_content_keyed(self):
        tree = tree_of_shape("random", 20, LABELS, 1)
        a1 = TreeRuntime(tree.copy(), select_labeled("a", LABELS)).binary_automaton
        a2 = TreeRuntime(tree.copy(), select_labeled("b", LABELS)).binary_automaton
        assert automaton_digest(a1) == automaton_digest(a1)  # cached, stable
        assert automaton_digest(a1) != automaton_digest(a2)


# ----------------------------------------------------------------- cache unit
class TestBuildCacheUnit:
    def test_counters_and_lru_eviction(self):
        cache = BuildCache(capacity=2)
        a, b, c = object(), object(), object()
        assert cache.get(("k", "a")) is None  # miss
        cache.put(("k", "a"), a)
        cache.put(("k", "b"), b)
        assert cache.get(("k", "a")) is a  # hit; 'a' becomes most recent
        cache.put(("k", "c"), c)  # evicts 'b', the least recently used
        assert cache.get(("k", "b")) is None
        assert cache.get(("k", "a")) is a and cache.get(("k", "c")) is c
        stats = cache.stats()
        assert stats["build_cache_hits"] == 3
        assert stats["build_cache_misses"] == 2
        assert stats["build_cache_evictions"] == 1
        assert stats["build_cache_size"] == 2
        assert stats["build_cache_capacity"] == 2
        cache.clear()
        assert len(cache) == 0

    @pytest.mark.parametrize("capacity", [0, None])
    def test_zero_capacity_disables(self, capacity):
        cache = BuildCache(capacity=capacity)
        assert not cache.enabled
        cache.put(("k",), object())
        assert len(cache) == 0
        assert cache.stats()["build_cache_capacity"] == 0


# --------------------------------------------------------- cross-document use
class TestCrossDocumentSharing:
    def test_duplicate_document_builds_from_cache_with_equal_answers(self):
        tree = tree_of_shape("random", 80, LABELS, 3)
        store = LocalStore()
        first = store.add_tree(tree.copy(), tree_query())
        after_first = store.stats()
        # leaf hashes include node ids, so a single document never hits itself
        assert after_first["build_cache_hits"] == 0
        assert after_first["build_cache_misses"] > 0

        second = store.add_tree(tree.copy(), tree_query())
        after_second = store.stats()
        # the duplicate reuses every cached subtree: all lookups hit
        assert after_second["build_cache_hits"] == after_first["build_cache_misses"]
        assert after_second["build_cache_misses"] == after_first["build_cache_misses"]
        assert canonical(second.answers()) == canonical(first.answers())

        # and matches a store that never caches, byte for byte
        cold = LocalStore(build_cache_size=0)
        reference = cold.add_tree(tree.copy(), tree_query())
        assert canonical(first.answers()) == canonical(reference.answers())
        assert cold.stats()["build_cache_hits"] == 0
        assert cold.stats()["build_cache_misses"] == 0

    def test_edits_to_one_document_never_disturb_its_cache_twin(self):
        tree = tree_of_shape("random", 60, LABELS, 7)
        store = LocalStore()
        edited = store.add_tree(tree.copy(), tree_query())
        twin = store.add_tree(tree.copy(), tree_query())
        twin_before = canonical(twin.answers())

        target = next(
            n for n in edited.enumerator.tree.nodes() if not n.is_root() and n.label != "a"
        )
        edited.apply_edits([Relabel(target.node_id, "a")])

        # the twin — which shared the edited subtree's boxes — is untouched
        assert canonical(twin.answers()) == twin_before
        # and the edited document matches a from-scratch build of its new tree
        fresh = TreeRuntime(edited.enumerator.tree.copy(), tree_query())
        assert canonical(edited.answers()) == canonical(fresh.assignments())

    def test_tiny_capacity_evicts_but_stays_correct(self):
        tree = tree_of_shape("random", 70, LABELS, 11)
        store = LocalStore(build_cache_size=4)
        first = store.add_tree(tree.copy(), tree_query())
        second = store.add_tree(tree.copy(), tree_query())
        stats = store.stats()
        assert stats["build_cache_evictions"] > 0
        assert stats["build_cache_size"] <= 4
        assert canonical(second.answers()) == canonical(first.answers())


# -------------------------------------------------------------- engine config
class TestEngineBuildCacheConfig:
    def test_negative_size_is_rejected(self):
        with pytest.raises(EngineError, match="build_cache_size"):
            Engine(build_cache_size=-1)

    def test_local_engine_counters_and_disable(self):
        tree = tree_of_shape("random", 60, LABELS, 5)
        with Engine() as engine:
            docs = [engine.add_tree(tree.copy(), tree_query()) for _ in range(3)]
            warm = [canonical(d.stream()) for d in docs]
            stats = engine.stats()
            assert stats["build_cache_hits"] > 0
            assert stats["build_cache_capacity"] > 0
        with Engine(build_cache_size=0) as engine:
            docs = [engine.add_tree(tree.copy(), tree_query()) for _ in range(3)]
            cold = [canonical(d.stream()) for d in docs]
            stats = engine.stats()
            assert stats["build_cache_hits"] == 0
            assert stats["build_cache_misses"] == 0
        assert cold == warm  # byte-identical with and without the cache

    def test_sharded_engine_sums_per_worker_caches(self):
        tree = tree_of_shape("random", 50, LABELS, 9)
        with Engine(workers=2, build_cache_size=128) as engine:
            docs = engine.add_documents([tree.copy() for _ in range(4)], tree_query())
            sharded = [canonical(d.stream()) for d in docs]
            stats = engine.stats()
            # 4 identical documents over 2 shards: each shard's second copy hits
            assert stats["build_cache_hits"] > 0
            assert stats["build_cache_capacity"] == 2 * 128
        with Engine(build_cache_size=128) as engine:
            docs = [engine.add_tree(tree.copy(), tree_query()) for _ in range(4)]
            local = [canonical(d.stream()) for d in docs]
        assert sharded == local
