"""pytest configuration: module imports, cross-test isolation, timeouts.

The tests package is made importable as plain modules, and the module-level
default relation backend is snapshotted around every test: several suites
exercise ``set_default_backend`` (and the enumeration fast path dispatches on
the default), so a test that fails — or simply forgets to restore — must not
leak a non-default backend into later tests.

The fault-tolerance suites mark themselves ``@pytest.mark.timeout(N)``: a
protocol wait that ignores its deadline must fail the test, not hang the
run.  CI installs the real ``pytest-timeout`` plugin; when it is absent
(bare dev environments cannot always install it) a minimal SIGALRM-based
fallback below enforces the same marker on the platforms that have
``signal.SIGALRM``, and the marker degrades to a no-op elsewhere.
"""

import importlib.util
import os
import signal
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.enumeration.relations import get_default_backend, set_default_backend  # noqa: E402

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_HAVE_SIGALRM = hasattr(signal, "SIGALRM")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than ``seconds`` "
        "(pytest-timeout when installed, SIGALRM fallback otherwise)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for ``@pytest.mark.timeout`` without pytest-timeout."""
    marker = item.get_closest_marker("timeout")
    if _HAVE_PYTEST_TIMEOUT or marker is None or not _HAVE_SIGALRM:
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 60

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds}s timeout marker")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _restore_default_relation_backend():
    """Snapshot/restore the process-global default relation backend."""
    original = get_default_backend()
    try:
        yield
    finally:
        set_default_backend(original)
