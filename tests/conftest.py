"""pytest configuration: module imports and cross-test isolation.

The tests package is made importable as plain modules, and the module-level
default relation backend is snapshotted around every test: several suites
exercise ``set_default_backend`` (and the enumeration fast path dispatches on
the default), so a test that fails — or simply forgets to restore — must not
leak a non-default backend into later tests.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.enumeration.relations import get_default_backend, set_default_backend  # noqa: E402


@pytest.fixture(autouse=True)
def _restore_default_relation_backend():
    """Snapshot/restore the process-global default relation backend."""
    original = get_default_backend()
    try:
        yield
    finally:
        set_default_backend(original)
