"""Shared helpers for the test suite: reference automata and random generators.

The binary-TVA builders here are small hand-written queries whose answer sets
are easy to compute independently; they are used throughout the tests of the
circuit and enumeration layers.  The random generators produce arbitrary
(generally nondeterministic) automata and trees for the property-based tests
that compare the enumeration pipeline against the brute-force oracles.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

from repro.assignments import Assignment
from repro.automata.binary_tva import BinaryTVA
from repro.automata.unranked_tva import UnrankedTVA
from repro.trees.binary import BinaryTree

LABELS = ("a", "b", "c")


# --------------------------------------------------------------------------- hand-written binary TVAs
def select_a_leaf() -> BinaryTVA:
    """Φ(x): ``x`` is a leaf labelled ``a`` (exactly one occurrence of x)."""
    labels = LABELS
    initial = [(l, frozenset(), "q0") for l in labels]
    initial.append(("a", frozenset({"x"}), "q1"))
    delta = []
    for l in labels:
        delta.append((l, "q0", "q0", "q0"))
        delta.append((l, "q1", "q0", "q1"))
        delta.append((l, "q0", "q1", "q1"))
    return BinaryTVA(["q0", "q1"], ["x"], initial, delta, ["q1"], name="select_a_leaf")


def select_pair_ab() -> BinaryTVA:
    """Φ(x, y): ``x`` is an ``a``-leaf and ``y`` is a ``b``-leaf (one each)."""
    labels = LABELS
    states = ["q00", "q10", "q01", "q11"]
    initial = [(l, frozenset(), "q00") for l in labels]
    initial.append(("a", frozenset({"x"}), "q10"))
    initial.append(("b", frozenset({"y"}), "q01"))
    delta = []
    for l in labels:
        for sx1 in (0, 1):
            for sy1 in (0, 1):
                for sx2 in (0, 1):
                    for sy2 in (0, 1):
                        if sx1 + sx2 <= 1 and sy1 + sy2 <= 1:
                            q1 = f"q{sx1}{sy1}"
                            q2 = f"q{sx2}{sy2}"
                            q = f"q{sx1 + sx2}{sy1 + sy2}"
                            delta.append((l, q1, q2, q))
    return BinaryTVA(states, ["x", "y"], initial, delta, ["q11"], name="select_pair_ab")


def nondet_witness() -> BinaryTVA:
    """Φ(x): ``x`` is an ``a``-leaf and some ``b``-leaf exists (guessed witness).

    The witness ``b``-leaf is chosen nondeterministically, so the automaton
    has one run per (answer, witness) pair: a good stress test for duplicate
    elimination (Section 5).
    """
    labels = LABELS
    states = ["q0", "qx", "qb", "qxb"]
    initial = [(l, frozenset(), "q0") for l in labels]
    initial.append(("a", frozenset({"x"}), "qx"))
    initial.append(("b", frozenset(), "qb"))
    allowed = {
        ("q0", "q0"): "q0",
        ("qx", "q0"): "qx",
        ("q0", "qx"): "qx",
        ("qb", "q0"): "qb",
        ("q0", "qb"): "qb",
        ("qx", "qb"): "qxb",
        ("qb", "qx"): "qxb",
        ("qxb", "q0"): "qxb",
        ("q0", "qxb"): "qxb",
    }
    delta = [(l, q1, q2, q) for l in labels for (q1, q2), q in allowed.items()]
    return BinaryTVA(states, ["x"], initial, delta, ["qxb"], name="nondet_witness")


def subset_of_a_leaves() -> BinaryTVA:
    """Φ(X): ``X`` is any (possibly empty) set of ``a``-leaves (second-order)."""
    labels = LABELS
    initial = [(l, frozenset(), "q0") for l in labels]
    initial.append(("a", frozenset({"X"}), "q1"))
    delta = []
    for l in labels:
        for q1 in ("q0", "q1"):
            for q2 in ("q0", "q1"):
                q = "q1" if "q1" in (q1, q2) else "q0"
                delta.append((l, q1, q2, q))
    return BinaryTVA(["q0", "q1"], ["X"], initial, delta, ["q0", "q1"], name="subset_of_a_leaves")


def boolean_has_a_leaf() -> BinaryTVA:
    """Boolean query (no variables): the tree has some ``a``-labelled leaf."""
    labels = LABELS
    initial = [(l, frozenset(), "no") for l in labels]
    initial.append(("a", frozenset(), "yes"))
    delta = []
    for l in labels:
        for q1 in ("no", "yes"):
            for q2 in ("no", "yes"):
                q = "yes" if "yes" in (q1, q2) else "no"
                delta.append((l, q1, q2, q))
    return BinaryTVA(["no", "yes"], [], initial, delta, ["yes"], name="boolean_has_a_leaf")


ALL_BINARY_TVAS = [
    select_a_leaf,
    select_pair_ab,
    nondet_witness,
    subset_of_a_leaves,
    boolean_has_a_leaf,
]


# --------------------------------------------------------------------------- random generators
def random_binary_tva(
    seed: int,
    n_states: int = 3,
    labels: Sequence[str] = LABELS,
    variables: Sequence[str] = ("x",),
    initial_density: float = 0.5,
    delta_density: float = 0.25,
) -> BinaryTVA:
    """A random (usually nondeterministic) binary TVA."""
    rng = random.Random(seed)
    states = [f"s{i}" for i in range(n_states)]
    var_sets = [frozenset()] + [frozenset({v}) for v in variables]
    if len(variables) >= 2:
        var_sets.append(frozenset(variables))
    initial = []
    for l in labels:
        for vs in var_sets:
            for q in states:
                if rng.random() < initial_density:
                    initial.append((l, vs, q))
    delta = []
    for l in labels:
        for q1 in states:
            for q2 in states:
                for q in states:
                    if rng.random() < delta_density:
                        delta.append((l, q1, q2, q))
    final = [q for q in states if rng.random() < 0.5]
    if not final:
        final = [rng.choice(states)]
    return BinaryTVA(states, variables, initial, delta, final, name=f"random_{seed}")


def random_unranked_tva(
    seed: int,
    n_states: int = 3,
    labels: Sequence[str] = LABELS,
    variables: Sequence[str] = ("x",),
    initial_density: float = 0.5,
    delta_density: float = 0.3,
) -> UnrankedTVA:
    """A random (usually nondeterministic) stepwise unranked TVA."""
    rng = random.Random(seed)
    states = [f"u{i}" for i in range(n_states)]
    var_sets = [frozenset()] + [frozenset({v}) for v in variables]
    initial = []
    for l in labels:
        for vs in var_sets:
            for q in states:
                if rng.random() < initial_density:
                    initial.append((l, vs, q))
    delta = []
    for q in states:
        for qc in states:
            for qn in states:
                if rng.random() < delta_density:
                    delta.append((q, qc, qn))
    final = [q for q in states if rng.random() < 0.5]
    if not final:
        final = [rng.choice(states)]
    return UnrankedTVA(states, variables, initial, delta, final, name=f"random_unranked_{seed}")


def random_binary_tree_nested(seed: int, n_internal: int, labels: Sequence[str] = LABELS):
    """Nested-tuple representation of a random binary tree (for BinaryTree.from_nested)."""
    rng = random.Random(seed)

    def build(remaining: int):
        if remaining == 0:
            return rng.choice(list(labels))
        left_share = rng.randint(0, remaining - 1)
        return (rng.choice(list(labels)), build(left_share), build(remaining - 1 - left_share))

    return build(n_internal)


def random_binary_tree(seed: int, n_internal: int, labels: Sequence[str] = LABELS) -> BinaryTree:
    """A random binary tree with ``n_internal`` internal nodes."""
    return BinaryTree.from_nested(random_binary_tree_nested(seed, n_internal, labels))


def assignments_sorted(assignments) -> List[Tuple]:
    """Deterministic ordering of a collection of assignments (for comparisons)."""
    return sorted(tuple(sorted(a, key=repr)) for a in assignments)
