"""Tests for the network serving tier (PR 9).

Covers the wire codec (round trips, hardening, byte-corruption fuzz), the
canonical-payload codec hardening in :mod:`repro.automata.serialize`, the
:class:`~repro.engine.sharding.AdaptiveCredit` controller, the server's
per-connection limits and HELLO versioning, typed error propagation over
real TCP, catalog leases + concurrent ``gc()``, and the incremental
(completion-order) ingest path.  The transcript-exactness of the network
tier against the in-process oracle lives in
``test_fuzz_differential.TestNetworkDifferential``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import socket
import sys
import time

import pytest

from repro import Engine, queries
from repro.automata.serialize import (
    MAX_PAYLOAD_BYTES,
    canonical_json,
    loads_payload,
    query_digest,
    query_from_payload,
    query_payload,
)
from repro.engine.catalog import QueryCatalog
from repro.engine.sharding import STREAM_CREDIT, AdaptiveCredit
from repro.core.results import UpdateStats
from repro.engine.local import BatchUpdateReport
from repro.errors import (
    CodecError,
    CursorInvalidatedError,
    EngineError,
    InvalidAutomatonError,
    ProtocolError,
    ReproError,
    ServingError,
    ShardDiedError,
    ShardTimeoutError,
    StaleIteratorError,
)
from repro.net import EngineServer, RemoteEngine
from repro.net.framing import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame_body,
    decode_wire,
    encode_frame,
    encode_wire,
    recv_frame,
    send_frame,
)
from repro.obs.metrics import MetricsRegistry
from repro.engine.cursor import CursorInvalidation
from repro.trees.edits import Delete, Insert, InsertRight, Relabel
from repro.trees.unranked import UnrankedTree


def _fork_or_skip():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip(f"fork start method unavailable on {sys.platform}")


def _tree():
    return UnrankedTree.from_nested(("c", [("a", ["b", "a"]), ("b", ["a"]), "a"]))


# ===================================================== wire codec round trips
class TestWireCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**70,
            "",
            "héllo\n",
            1.5,
            -0.0,
            (),
            (1, "two", None),
            ((1, 2), (3, (4,))),
            frozenset(),
            frozenset({1, 2, 3}),
            frozenset({("x", 1), ("y", 2)}),
            [],
            [1, [2, [3]]],
            {},
            {"b": 1, "a": [2], "nested": {"k": (1, 2)}},
            {1: "int key", ("t", 0): "tuple key"},
        ],
    )
    def test_value_round_trip(self, value):
        assert decode_wire(encode_wire(value)) == value

    def test_float_round_trip_is_exact(self):
        for value in (0.1, 1e-300, float("inf"), float("-inf"), 3.141592653589793):
            assert decode_wire(encode_wire(value)) == value

    def test_tree_round_trip_preserves_node_ids(self):
        tree = _tree()
        clone = decode_wire(encode_wire(tree))
        assert isinstance(clone, UnrankedTree)
        original = [(n.node_id, n.label, None if n.parent is None else n.parent.node_id)
                    for n in tree.nodes()]
        decoded = [(n.node_id, n.label, None if n.parent is None else n.parent.node_id)
                   for n in clone.nodes()]
        assert decoded == original
        assert clone._next_id == tree._next_id
        # Edits against original node ids apply to the clone: the wire
        # transfer must not renumber (the whole protocol depends on it).
        Relabel(1, "b").apply_to_tree(clone)
        assert clone._nodes[1].label == "b"

    @pytest.mark.parametrize(
        "edit",
        [Relabel(3, "b"), Insert(0, "c"), InsertRight(2, "a"), Delete(4)],
    )
    def test_tree_edit_round_trip(self, edit):
        clone = decode_wire(encode_wire(edit))
        assert type(clone) is type(edit)
        assert clone == edit

    def test_report_round_trip(self):
        report = BatchUpdateReport(
            document_id="doc-1",
            epoch=7,
            stats=[UpdateStats(10, 3, 0.25, new_node_id=12, new_position_id=None)],
            boxes_rebuilt=4,
            cursors_resumed=2,
            cursors_invalidated=1,
        )
        clone = decode_wire(encode_wire(report))
        assert isinstance(clone, BatchUpdateReport)
        assert clone.document_id == "doc-1" and clone.epoch == 7
        assert clone.boxes_rebuilt == 4
        assert clone.cursors_resumed == 2 and clone.cursors_invalidated == 1
        assert len(clone.stats) == 1
        stat = clone.stats[0]
        assert (stat.trunk_size, stat.rebuilt_subterm_size) == (10, 3)
        assert stat.seconds == 0.25 and stat.new_node_id == 12
        assert stat.new_position_id is None

    def test_exception_round_trip_preserves_type_and_message(self):
        for exc in (
            ServingError("no document with id 9"),
            EngineError("this engine is closed"),
            StaleIteratorError("document was edited"),
            ShardDiedError("shard 2 died"),
            ProtocolError("bad frame"),
        ):
            clone = decode_wire(encode_wire(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)

    def test_shard_timeout_round_trip_preserves_attrs(self):
        exc = ShardTimeoutError(
            "shard 1 exceeded the deadline", shard=1, op="page", elapsed=2.5, deadline=2.0
        )
        clone = decode_wire(encode_wire(exc))
        assert type(clone) is ShardTimeoutError
        assert isinstance(clone, ShardDiedError)
        assert clone.shard == 1 and clone.op == "page"
        assert clone.elapsed == 2.5 and clone.deadline == 2.0

    def test_cursor_invalidated_round_trip_preserves_report(self):
        report = CursorInvalidation(
            cursor_id=3,
            document_id="d",
            base_epoch=1,
            invalidated_epoch=2,
            answers_delivered=5,
            edit="delete node 4",
            boxes_hit=2,
            regions=(("a", 4, 9, (0, 2)), ("r", 0, 17, (1,))),
        )
        exc = CursorInvalidatedError("cursor 3 invalidated", report=report)
        clone = decode_wire(encode_wire(exc))
        assert type(clone) is CursorInvalidatedError
        assert isinstance(clone.report, CursorInvalidation)
        assert clone.report.answers_delivered == 5
        assert clone.report.invalidated_epoch == 2
        # the overlap regions survive the wire exactly (tuples, not lists),
        # so the client-side report text equals the server-side one
        assert clone.report.regions == report.regions
        assert clone.report.describe() == report.describe()

    def test_unknown_exception_type_degrades_to_engine_error(self):
        frame = json.loads(canonical_json(encode_wire(ValueError("boom"))))
        clone = decode_wire(frame)
        assert type(clone) is EngineError
        assert "ValueError" in str(clone) and "boom" in str(clone)

    def test_uncodable_value_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            encode_wire(object())

    def test_encode_depth_bomb_raises_protocol_error(self):
        bomb = []
        for _ in range(200):
            bomb = [bomb]
        with pytest.raises(ProtocolError, match="nested deeper"):
            encode_wire(bomb)

    def test_decode_depth_bomb_raises_protocol_error(self):
        bomb = ["l", []]
        for _ in range(200):
            bomb = ["l", [bomb]]
        with pytest.raises(ProtocolError, match="nested deeper"):
            decode_wire(bomb)

    def test_oversized_frame_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="frame"):
            encode_frame("x" * 1024, max_frame_bytes=256)

    def test_frame_round_trip(self):
        value = [3, "ok", {"answers": ((frozenset({("x", 1)}),)), "epoch": 2}]
        data = encode_frame(value, MAX_FRAME_BYTES)
        assert decode_frame_body(data[4:], MAX_FRAME_BYTES) == value

    def test_corrupted_frames_raise_only_typed_errors(self):
        """Random byte corruption must surface as ProtocolError/CodecError,
        never as a bare KeyError/TypeError/ValueError from the decoder."""
        tree = _tree()
        value = [
            7,
            "ok",
            {
                "tree": tree,
                "edits": (Relabel(1, "b"), Delete(2)),
                "answers": (frozenset({("x", 1)}), frozenset({("x", 2)})),
                "f": 0.25,
            },
        ]
        body = encode_frame(value, MAX_FRAME_BYTES)[4:]
        rng = random.Random(1234)
        decoded = 0
        for _ in range(400):
            corrupt = bytearray(body)
            for _ in range(rng.randint(1, 4)):
                corrupt[rng.randrange(len(corrupt))] = rng.randrange(256)
            try:
                decode_frame_body(bytes(corrupt), MAX_FRAME_BYTES)
                decoded += 1  # corruption can land in string content: fine
            except (ProtocolError, CodecError):
                pass
        assert decoded < 400  # sanity: the fuzz actually corrupted something


# ============================================ canonical codec hardening
class TestSerializeHardening:
    def test_oversized_payload_raises_codec_error(self):
        with pytest.raises(CodecError, match="bytes"):
            loads_payload("[1]" * 10, max_bytes=8)

    def test_truncated_payload_names_offset(self):
        text = canonical_json({"k": [1, 2, 3]})
        with pytest.raises(CodecError, match="truncated"):
            loads_payload(text[: len(text) - 4])

    def test_malformed_payload_names_offset(self):
        with pytest.raises(CodecError, match="offset"):
            loads_payload('{"k": [1, 2,]}')

    def test_recursion_bomb_raises_codec_error(self):
        bomb = "[" * 2000 + "]" * 2000
        with pytest.raises(CodecError):
            loads_payload(bomb)

    def test_default_payload_ceiling_is_enforced(self):
        assert MAX_PAYLOAD_BYTES == 64 * 1024 * 1024

    def test_corrupted_query_payloads_raise_only_typed_errors(self):
        query = queries.select_labeled("a")
        payload_text = canonical_json(query_payload(query))
        rng = random.Random(99)
        ok = 0
        for _ in range(300):
            corrupt = bytearray(payload_text.encode("utf8"))
            for _ in range(rng.randint(1, 3)):
                corrupt[rng.randrange(len(corrupt))] = rng.randrange(256)
            try:
                payload = loads_payload(bytes(corrupt))
                query_from_payload(payload)
                ok += 1
            except (CodecError, InvalidAutomatonError):
                pass  # both are precise, typed, and part of the contract
        assert ok < 300

    def test_query_payload_round_trip_keeps_digest(self):
        query = queries.select_labeled("b")
        payload = loads_payload(canonical_json(query_payload(query)))
        rebuilt = query_from_payload(payload)
        assert query_digest(rebuilt) == query_digest(query)


# ===================================================== adaptive credit unit
class TestAdaptiveCredit:
    def test_two_stalls_grow_the_window(self):
        credit = AdaptiveCredit(4)
        credit.note_stall()
        assert credit.window == 4
        credit.note_stall()
        assert credit.window == 8
        assert credit.grown_total == 1

    def test_growth_caps_at_max_window(self):
        credit = AdaptiveCredit(4)
        for _ in range(40):
            credit.note_stall()
        assert credit.window == AdaptiveCredit.MAX_WINDOW

    def test_two_full_buffers_shrink_the_window(self):
        credit = AdaptiveCredit(8)
        credit.note_buffered(8, 8)
        assert credit.window == 8
        credit.note_buffered(8, 8)
        assert credit.window == 4
        assert credit.shrunk_total == 1

    def test_shrink_floors_at_min_window(self):
        credit = AdaptiveCredit(4)
        for _ in range(40):
            credit.note_buffered(99, 4)
        assert credit.window == AdaptiveCredit.MIN_WINDOW

    def test_alternating_signals_cancel(self):
        credit = AdaptiveCredit(8)
        for _ in range(10):
            credit.note_stall()
            credit.note_buffered(8, 8)
        assert credit.window == 8
        assert credit.grown_total == 0 and credit.shrunk_total == 0

    def test_partial_buffer_resets_the_shrink_streak(self):
        credit = AdaptiveCredit(8)
        credit.note_buffered(8, 8)
        credit.note_buffered(3, 8)  # buffer drained below capacity
        credit.note_buffered(8, 8)
        assert credit.window == 8

    def test_initial_credit_divides_across_open_streams(self):
        credit = AdaptiveCredit(16)
        assert credit.initial_credit(0) == 16
        assert credit.initial_credit(1) == 8
        assert credit.initial_credit(7) == 2
        assert credit.initial_credit(100) == AdaptiveCredit.MIN_WINDOW

    def test_window_published_as_metric(self):
        metrics = MetricsRegistry()
        credit = AdaptiveCredit(4, metrics=metrics)
        credit.note_stall()
        credit.note_stall()
        snapshot = metrics.snapshot()
        assert snapshot["stream_credit_window"]["value"] == 8
        assert snapshot["stream_credit_grown_total"]["value"] == 1


# ===================================================== server + limits
@pytest.fixture()
def served_engine():
    with Engine(page_size=3) as engine:
        server = EngineServer(engine, idle_timeout=None).start()
        try:
            yield engine, server
        finally:
            server.stop()


def _raw_connect(server):
    sock = socket.create_connection(server.address, timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class TestServerProtocol:
    def test_hello_version_mismatch_gets_typed_error(self, served_engine):
        _engine, server = served_engine
        sock = _raw_connect(server)
        try:
            send_frame(sock, [0, "hello", {"protocol": 999}], MAX_FRAME_BYTES)
            reply = recv_frame(sock, MAX_FRAME_BYTES)
            assert reply[1] == "err"
            assert isinstance(reply[2], ProtocolError)
            assert "revision" in str(reply[2])
            assert recv_frame(sock, MAX_FRAME_BYTES) is None  # then closed
        finally:
            sock.close()

    def test_first_frame_must_be_hello(self, served_engine):
        _engine, server = served_engine
        sock = _raw_connect(server)
        try:
            send_frame(sock, [1, "ping"], MAX_FRAME_BYTES)
            reply = recv_frame(sock, MAX_FRAME_BYTES)
            assert reply[1] == "err" and isinstance(reply[2], ProtocolError)
            assert recv_frame(sock, MAX_FRAME_BYTES) is None
        finally:
            sock.close()

    def test_oversized_frame_kills_only_that_connection(self):
        with Engine(page_size=3) as engine:
            server = EngineServer(engine, max_frame_bytes=4096).start()
            try:
                healthy = RemoteEngine(server.address, max_frame_bytes=4096)
                rogue = _raw_connect(server)
                try:
                    send_frame(rogue, [0, "hello", {"protocol": PROTOCOL_VERSION}], 4096)
                    assert recv_frame(rogue, 4096)[1] == "ok"
                    # Announce a frame far over the server's ceiling.
                    rogue.sendall((1 << 24).to_bytes(4, "big") + b"x" * 64)
                    assert recv_frame(rogue, 4096) is None  # dropped
                finally:
                    rogue.close()
                # The other connection is untouched, and the incident is
                # on the record.
                assert healthy.ping() == "pong"
                kinds = [e["kind"] for e in engine.events()]
                assert "net_protocol_error" in kinds
                healthy.close()
            finally:
                server.stop()

    def test_garbage_frame_body_kills_only_that_connection(self, served_engine):
        _engine, server = served_engine
        rogue = _raw_connect(server)
        try:
            send_frame(rogue, [0, "hello", {"protocol": PROTOCOL_VERSION}], MAX_FRAME_BYTES)
            assert recv_frame(rogue, MAX_FRAME_BYTES)[1] == "ok"
            rogue.sendall((8).to_bytes(4, "big") + b"\xff\x00garbage"[:8])
            assert recv_frame(rogue, MAX_FRAME_BYTES) is None
        finally:
            rogue.close()
        with RemoteEngine(server.address) as healthy:
            assert healthy.ping() == "pong"

    def test_stream_limit_is_typed_error_and_connection_survives(self):
        tree = UnrankedTree.from_nested(("b", ["a"] * 30))
        with Engine(page_size=3) as engine:
            server = EngineServer(engine, max_streams=1).start()
            try:
                with RemoteEngine(server.address, stream_chunk_size=1) as remote:
                    doc = remote.add_tree(tree, queries.select_labeled("a"))
                    first = iter(doc.stream())
                    next(first)  # stream 1 open and producing
                    second = iter(doc.stream())
                    with pytest.raises(ProtocolError, match="stream limit"):
                        next(second)
                    # the connection (and the first stream) still work
                    assert remote.ping() == "pong"
                    next(first)
            finally:
                server.stop()

    def test_idle_timeout_drops_the_connection(self):
        with Engine(page_size=3) as engine:
            server = EngineServer(engine, idle_timeout=0.2).start()
            try:
                sock = _raw_connect(server)
                try:
                    send_frame(sock, [0, "hello", {"protocol": PROTOCOL_VERSION}], MAX_FRAME_BYTES)
                    assert recv_frame(sock, MAX_FRAME_BYTES)[1] == "ok"
                    time.sleep(0.6)
                    assert recv_frame(sock, MAX_FRAME_BYTES) is None
                finally:
                    sock.close()
                reasons = [
                    e.get("reason")
                    for e in engine.events()
                    if e["kind"] == "net_disconnect"
                ]
                assert "idle-timeout" in reasons
            finally:
                server.stop()

    def test_unknown_op_is_typed_error_connection_survives(self, served_engine):
        _engine, server = served_engine
        with RemoteEngine(server.address) as remote:
            with pytest.raises(ProtocolError, match="unknown request op"):
                remote._call("frobnicate")
            assert remote.ping() == "pong"

    def test_unix_socket_serving(self, tmp_path):
        path = os.path.join(str(tmp_path), "engine.sock")
        with Engine(page_size=3) as engine:
            server = EngineServer(engine, host=None, unix_path=path).start()
            try:
                with RemoteEngine(unix_path=path) as remote:
                    doc = remote.add_tree(_tree(), queries.select_labeled("a"))
                    assert doc.count() == len(list(doc.stream()))
            finally:
                server.stop()


class TestRemoteEngineSurface:
    def test_typed_errors_travel_over_tcp(self, served_engine):
        _engine, server = served_engine
        with RemoteEngine(server.address) as remote:
            with pytest.raises(ServingError, match="no document with id"):
                remote._call("page", 999, None, 3)
            doc = remote.add_tree(_tree(), queries.select_labeled("a"))
            with pytest.raises(EngineError, match="not reachable"):
                doc.runtime()
            remote.remove(doc.doc_id)
            with pytest.raises(ServingError):
                remote.document(doc.doc_id)

    def test_page_validation_mirrors_engine(self, served_engine):
        _engine, server = served_engine
        with RemoteEngine(server.address) as remote:
            doc = remote.add_tree(
                UnrankedTree.from_nested(("b", ["a"] * 9)), queries.select_labeled("a")
            )
            page = doc.page(page_size=2)
            with pytest.raises(EngineError, match="page_size is fixed"):
                doc.page(cursor=page, page_size=5)
            with pytest.raises(EngineError, match="page_size must be >= 1"):
                doc.page(page_size=0)
            other = remote.add_tree(_tree(), queries.select_labeled("a"))
            with pytest.raises(EngineError, match="belongs to document"):
                other.page(cursor=page)

    def test_stale_stream_over_tcp(self, served_engine):
        _engine, server = served_engine
        with RemoteEngine(server.address) as remote:
            doc = remote.add_tree(
                UnrankedTree.from_nested(("b", ["a"] * 6)), queries.select_labeled("a")
            )
            iterator = iter(doc.stream())
            next(iterator)
            doc.apply_edits([Relabel(1, "b")])
            with pytest.raises(StaleIteratorError):
                next(iterator)

    def test_cursor_invalidation_report_parity_over_tcp(self, served_engine):
        """The fine-grained invalidation report — overlap regions and the
        describe() text — reaching a RemoteEngine client is identical to the
        one an in-process engine produces for the same scenario."""
        _engine, server = served_engine
        query = queries.select_labeled("a")
        target = next(
            n.node_id for n in _tree().nodes() if n.label == "a" and n.is_leaf()
        )

        def run(doc):
            page = doc.page(page_size=1)
            doc.apply_edits([Relabel(target, "b")])  # removes an undelivered answer
            with pytest.raises(CursorInvalidatedError) as excinfo:
                doc.page(cursor=page)
            return excinfo.value.report

        with Engine() as local_engine:
            local_report = run(local_engine.add_tree(_tree(), query, doc_id="parity"))
        with RemoteEngine(server.address) as remote:
            remote_report = run(remote.add_tree(_tree(), query, doc_id="parity"))
        assert remote_report.regions  # the enriched fields crossed the wire
        assert remote_report.regions == local_report.regions
        assert remote_report.describe() == local_report.describe()

    def test_compile_is_digest_checked_and_cached(self, served_engine):
        engine, server = served_engine
        with RemoteEngine(server.address) as remote:
            query = remote.compile(queries.select_labeled("a"))
            again = remote.compile(queries.select_labeled("a"))
            assert again is query  # client-side cache by digest
            assert query.digest in engine._queries  # really landed server-side

    def test_concurrent_clients_share_one_engine(self, served_engine):
        _engine, server = served_engine
        with RemoteEngine(server.address) as one, RemoteEngine(server.address) as two:
            doc = one.add_tree(_tree(), queries.select_labeled("a"))
            assert one.ping() == "pong" and two.ping() == "pong"
            # Per-connection document namespaces: client two can't see
            # client one's handle, but the server stats do.
            assert doc.doc_id not in two
            assert two._call("stats")["documents"] == 1

    def test_no_pickle_on_the_wire(self, served_engine):
        """Every frame both ways is canonical JSON — never a pickle."""
        _engine, server = served_engine
        remote = RemoteEngine(server.address)
        try:
            real_send = socket.socket.sendall
            seen = []

            def spy(self, data, *args):
                seen.append(bytes(data))
                return real_send(self, data, *args)

            socket.socket.sendall = spy
            try:
                doc = remote.add_tree(_tree(), queries.select_labeled("a"))
                list(doc.stream())
            finally:
                socket.socket.sendall = real_send
            assert seen
            for blob in seen:
                body = blob[4:]
                assert not body.startswith(b"\x80")  # pickle protocol marker
                json.loads(body.decode("utf8"))  # must parse as JSON
        finally:
            remote.close()


# ===================================================== catalog leases + gc
class TestCatalogLeases:
    def test_open_engine_leases_its_digests(self, tmp_path):
        root = str(tmp_path / "catalog")
        with Engine(catalog=root) as engine:
            query = engine.compile(queries.select_labeled("a"))
            catalog = QueryCatalog(root)
            assert query.digest in catalog.live_digests()
            removed = catalog.gc()  # no keep= needed anymore
            assert query.digest not in removed
            assert query.digest in catalog
        # lease released on close: now it is garbage
        removed = QueryCatalog(root).gc()
        assert query.digest in removed

    def test_concurrent_gc_spares_every_open_engine(self, tmp_path):
        root = str(tmp_path / "catalog")
        with Engine(catalog=root) as one:
            q1 = one.compile(queries.select_labeled("a"))
            with Engine(catalog=root) as two:
                q2 = two.compile(queries.select_labeled("b"))
                catalog = QueryCatalog(root)
                removed = catalog.gc()
                assert q1.digest not in removed and q2.digest not in removed
                # engines keep working through a concurrent gc
                doc = two.add_tree(_tree(), queries.select_labeled("b"))
                assert doc.count() >= 0
            # two closed, one still open: q2 without other users is garbage
            removed = QueryCatalog(root).gc()
            assert q2.digest in removed
            assert q1.digest not in removed

    def test_stale_lease_of_dead_process_is_reaped(self, tmp_path):
        root = str(tmp_path / "catalog")
        with Engine(catalog=root) as engine:
            query = engine.compile(queries.select_labeled("a"))
        catalog = QueryCatalog(root)
        # Forge a lease from a process that no longer exists.
        os.makedirs(catalog.leases_root, exist_ok=True)
        stale = os.path.join(catalog.leases_root, "lease-dead.json")
        with open(stale, "w", encoding="utf8") as handle:
            json.dump(
                {
                    "pid": 2**22 - 1,
                    "host": socket.gethostname(),
                    "created_unix": 0,
                    "digests": [query.digest],
                },
                handle,
            )
        assert query.digest not in catalog.live_digests()
        assert not os.path.exists(stale)  # reaped during the scan
        assert query.digest in catalog.gc()

    def test_corrupt_lease_is_discarded(self, tmp_path):
        root = str(tmp_path / "catalog")
        catalog = QueryCatalog(root)
        os.makedirs(catalog.leases_root, exist_ok=True)
        junk = os.path.join(catalog.leases_root, "lease-junk.json")
        with open(junk, "w", encoding="utf8") as handle:
            handle.write("{not json")
        assert catalog.live_digests() == set()
        assert not os.path.exists(junk)


# ===================================================== incremental ingest
class TestIncrementalIngest:
    def test_iter_yields_in_order_on_local_engine(self):
        with Engine(page_size=3) as engine:
            trees = [UnrankedTree.from_nested(("b", ["a"] * n)) for n in (2, 3, 4)]
            docs = list(
                engine.add_documents_iter(
                    trees, queries.select_labeled("a"), doc_ids=["x", "y", "z"]
                )
            )
            assert [doc.doc_id for doc in docs] == ["x", "y", "z"]
            assert engine.stats()["ingest_stragglers"] == 0

    def test_straggler_does_not_delay_other_documents(self):
        """With one shard's ingest artificially slowed, the fast shard's
        documents must be yielded (and usable) before the slow reply lands,
        and the straggler must be counted and logged."""
        _fork_or_skip()
        with Engine(
            workers=2, start_method="fork", fault_plan="0:add_batch:*:slow:0.5"
        ) as engine:
            trees = [UnrankedTree.from_nested(("b", ["a"] * 3)) for _ in range(4)]
            arrivals = []
            for doc in engine.add_documents_iter(trees, queries.select_labeled("a")):
                arrivals.append((doc.doc_id, time.perf_counter()))
            assert len(arrivals) == 4
            placements = engine._shard_of
            fast = [d for d, _t in arrivals if placements[d] == 1]
            slow = [d for d, _t in arrivals if placements[d] == 0]
            if fast and slow:  # both shards got documents (placement-dependent)
                last_fast = max(t for d, t in arrivals if placements[d] == 1)
                first_slow = min(t for d, t in arrivals if placements[d] == 0)
                assert last_fast < first_slow
            assert engine.ingest_stragglers_total >= 1
            assert engine.stats()["ingest_stragglers"] >= 1
            assert any(e["kind"] == "ingest_straggler" for e in engine.events())

    def test_batch_add_documents_unchanged_by_refactor(self):
        _fork_or_skip()
        with Engine(workers=2, start_method="fork") as engine:
            trees = [UnrankedTree.from_nested(("b", ["a"] * 3)) for _ in range(3)]
            docs = engine.add_documents(trees, queries.select_labeled("a"))
            assert [doc.doc_id for doc in docs] == [0, 1, 2]
            with pytest.raises(ServingError, match="already in use"):
                engine.add_documents(
                    [UnrankedTree.from_nested(("b", ["a"]))],
                    queries.select_labeled("a"),
                    doc_ids=[0],
                )
