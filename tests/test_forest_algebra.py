"""Tests for forest algebra terms, the balanced encoder and maintenance
under edits (Section 7 / Lemma 7.4)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidEditError, TermStructureError
from repro.forest_algebra.encoder import balanced_concat, encode_fragment, encode_tree, encode_word
from repro.forest_algebra.hollowing import hollowing_from_report
from repro.forest_algebra.maintenance import MaintainedTerm
from repro.forest_algebra.terms import (
    APPLY_VH,
    LEAF_CONTEXT,
    LEAF_TREE,
    apply,
    concat,
    context_leaf,
    decode,
    decode_to_nested,
    find_hole_leaf,
    term_leaves,
    tree_leaf,
    validate_term,
)
from repro.trees.edits import random_edit_sequence
from repro.trees.generators import (
    caterpillar_tree,
    comb_tree,
    full_binary_unranked_tree,
    path_tree,
    random_tree,
    star_tree,
    xml_like_document,
)
from repro.trees.unranked import UnrankedTree


def tree_to_nested_with_ids(tree: UnrankedTree):
    """(label, id, [children]) representation of an UnrankedTree, for comparisons."""

    def rec(node):
        return (node.label, node.node_id, [rec(c) for c in node.children])

    return rec(tree.root)


# --------------------------------------------------------------------------- term basics
class TestTermConstruction:
    def test_leaf_kinds_and_types(self):
        t = tree_leaf("a", 0)
        c = context_leaf("b", 1)
        assert not t.is_context()
        assert c.is_context()
        assert t.alphabet_label() == ("t", "a")
        assert c.alphabet_label() == ("c", "b")

    def test_concat_type_inference(self):
        assert concat(tree_leaf("a", 0), tree_leaf("b", 1)).kind == "concat_HH"
        assert concat(tree_leaf("a", 0), context_leaf("b", 1)).kind == "concat_HV"
        assert concat(context_leaf("a", 0), tree_leaf("b", 1)).kind == "concat_VH"
        with pytest.raises(TermStructureError):
            concat(context_leaf("a", 0), context_leaf("b", 1))

    def test_apply_type_inference(self):
        assert apply(context_leaf("a", 0), tree_leaf("b", 1)).kind == "apply_VH"
        assert apply(context_leaf("a", 0), context_leaf("b", 1)).kind == "apply_VV"
        with pytest.raises(TermStructureError):
            apply(tree_leaf("a", 0), tree_leaf("b", 1))

    def test_weights_and_heights(self):
        term = concat(tree_leaf("a", 0), concat(tree_leaf("b", 1), tree_leaf("c", 2)))
        assert term.weight == 3
        assert term.height == 2
        validate_term(term)

    def test_decode_simple_application(self):
        # a_□ ⊙ (b_t ⊕ c_t)  =  a(b, c)
        term = apply(context_leaf("a", 0), concat(tree_leaf("b", 1), tree_leaf("c", 2)))
        assert decode_to_nested(term) == ("a", 0, [("b", 1, []), ("c", 2, [])])

    def test_decode_context_and_hole(self):
        term = concat(tree_leaf("b", 1), context_leaf("a", 0))
        roots, hole = decode(term)
        assert hole is not None and hole.node_id == 0
        assert find_hole_leaf(term).tree_node_id == 0

    def test_find_hole_on_forest_raises(self):
        with pytest.raises(TermStructureError):
            find_hole_leaf(tree_leaf("a", 0))

    def test_decode_to_nested_rejects_forest(self):
        with pytest.raises(TermStructureError):
            decode_to_nested(concat(tree_leaf("a", 0), tree_leaf("b", 1)))
        with pytest.raises(TermStructureError):
            decode_to_nested(context_leaf("a", 0))

    def test_term_leaves_in_order(self):
        term = concat(tree_leaf("a", 0), concat(tree_leaf("b", 1), tree_leaf("c", 2)))
        assert [l.tree_node_id for l in term_leaves(term)] == [0, 1, 2]


# --------------------------------------------------------------------------- encoder
SHAPE_BUILDERS = [
    ("path", path_tree),
    ("star", star_tree),
    ("caterpillar", caterpillar_tree),
    ("comb", comb_tree),
    ("random", random_tree),
]


class TestEncoder:
    @pytest.mark.parametrize("shape,builder", SHAPE_BUILDERS)
    @pytest.mark.parametrize("size", [1, 2, 3, 10, 64, 257])
    def test_roundtrip(self, shape, builder, size):
        tree = builder(size, seed=7)
        term = encode_tree(tree)
        validate_term(term)
        assert decode_to_nested(term) == tree_to_nested_with_ids(tree)

    @pytest.mark.parametrize("shape,builder", SHAPE_BUILDERS)
    def test_leaf_bijection(self, shape, builder):
        tree = builder(80, seed=3)
        term = encode_tree(tree)
        leaf_ids = [l.tree_node_id for l in term_leaves(term)]
        assert sorted(leaf_ids) == sorted(tree.node_ids())
        assert len(leaf_ids) == len(set(leaf_ids))

    @pytest.mark.parametrize("shape,builder", SHAPE_BUILDERS)
    @pytest.mark.parametrize("size", [64, 512, 2048])
    def test_logarithmic_height(self, shape, builder, size):
        tree = builder(size, seed=11)
        term = encode_tree(tree)
        bound = 3.0 * math.log2(tree.size() + 1) + 6
        assert term.height <= bound, f"{shape}: height {term.height} > {bound}"

    def test_deep_binary_tree_height(self):
        tree = full_binary_unranked_tree(9, seed=0)  # 1023 nodes
        term = encode_tree(tree)
        assert term.height <= 3.0 * math.log2(tree.size() + 1) + 6

    def test_xml_document_roundtrip(self):
        doc = xml_like_document(30, 4, seed=1)
        term = encode_tree(doc)
        assert decode_to_nested(term) == tree_to_nested_with_ids(doc)

    def test_single_node_tree(self):
        tree = UnrankedTree("only")
        term = encode_tree(tree)
        assert term.kind == LEAF_TREE
        assert term.weight == 1

    def test_encode_word(self):
        term = encode_word(["a", "b", "c", "d"])
        roots, hole = decode(term)
        assert hole is None
        assert [r.label for r in roots] == ["a", "b", "c", "d"]
        assert term.height <= 2

    def test_encode_word_empty_raises(self):
        with pytest.raises(TermStructureError):
            encode_word([])

    def test_balanced_concat_weight_split(self):
        # one huge item and many small ones: the small ones should not pile up
        # into a linear chain on one side.
        big = encode_tree(random_tree(200, seed=5))
        small = [tree_leaf("x", 1000 + i) for i in range(16)]
        term = balanced_concat([big] + small)
        assert term.height <= big.height + 8

    def test_encode_fragment_with_hole(self):
        tree = random_tree(40, seed=9)
        term = encode_tree(tree)
        roots, hole = decode(term)
        # re-encode an equivalent fragment and decode again: same tree
        rebuilt = encode_fragment(roots)
        assert decode_to_nested(rebuilt) == tree_to_nested_with_ids(tree)


# --------------------------------------------------------------------------- maintenance
LABELS = ("a", "b", "c")


def apply_edits_both(tree: UnrankedTree, edits):
    """Apply edits to a reference copy and to a maintained term; return both."""
    reference = tree.copy()
    maintained = MaintainedTerm(tree.copy())
    reports = []
    for edit in edits:
        new_node = edit.apply_to_tree(reference)
        new_id = new_node.node_id if new_node is not None and hasattr(edit, "label") and not hasattr(edit, "_relabel") else None
        # Relabel returns the node but needs no new id; detect insert kinds explicitly.
        from repro.trees.edits import Insert, InsertRight

        if isinstance(edit, (Insert, InsertRight)):
            reports.append(maintained.apply_edit(edit, new_node_id=new_node.node_id))
        else:
            reports.append(maintained.apply_edit(edit))
    return reference, maintained, reports


class TestMaintainedTerm:
    def test_relabel(self):
        tree = random_tree(20, seed=1)
        maintained = MaintainedTerm(tree.copy())
        target = tree.node_ids()[5]
        report = maintained.relabel(target, "zzz")
        maintained.validate()
        assert any(n.is_leaf() and n.tree_node_id == target for n in report.dirty_bottom_up)
        nested = decode_to_nested(maintained.root)
        reference = tree.copy()
        reference.relabel(target, "zzz")
        assert nested == tree_to_nested_with_ids(reference)

    def test_insert_first_child_on_leaf_and_internal(self):
        tree = UnrankedTree.from_nested(("r", ["a", ("b", ["c"])]))
        reference = tree.copy()
        maintained = MaintainedTerm(tree.copy())
        # insert under a leaf
        a_id = [n.node_id for n in tree.nodes() if n.label == "a"][0]
        new = reference.insert_first_child(a_id, "x")
        maintained.insert_first_child(a_id, new.node_id, "x")
        # insert under an internal node with children
        b_id = [n.node_id for n in tree.nodes() if n.label == "b"][0]
        new2 = reference.insert_first_child(b_id, "y")
        maintained.insert_first_child(b_id, new2.node_id, "y")
        # insert under the root
        new3 = reference.insert_first_child(reference.root.node_id, "z")
        maintained.insert_first_child(tree.root.node_id, new3.node_id, "z")
        maintained.validate()
        assert decode_to_nested(maintained.root) == tree_to_nested_with_ids(reference)

    def test_insert_right_sibling_various_positions(self):
        tree = UnrankedTree.from_nested(("r", ["a", ("b", ["c", "d"]), "e"]))
        reference = tree.copy()
        maintained = MaintainedTerm(tree.copy())
        for label in ("a", "b", "c", "d", "e"):
            node_id = [n.node_id for n in reference.nodes() if n.label == label][0]
            new = reference.insert_right_sibling(node_id, f"after_{label}")
            maintained.insert_right_sibling(node_id, new.node_id, f"after_{label}")
            maintained.validate()
        assert decode_to_nested(maintained.root) == tree_to_nested_with_ids(reference)

    def test_insert_right_sibling_of_root_fails(self):
        tree = UnrankedTree("r")
        maintained = MaintainedTerm(tree)
        with pytest.raises(InvalidEditError):
            maintained.insert_right_sibling(tree.root.node_id, 99, "x")

    def test_delete_leaf_cases(self):
        tree = UnrankedTree.from_nested(("r", ["a", ("b", ["c"]), ("d", ["e", "f"])]))
        reference = tree.copy()
        maintained = MaintainedTerm(tree.copy())
        # delete a leaf among siblings
        f_id = [n.node_id for n in reference.nodes() if n.label == "f"][0]
        reference.delete_leaf(f_id)
        maintained.delete_leaf(f_id)
        maintained.validate()
        # delete an only child (its parent becomes a leaf)
        c_id = [n.node_id for n in reference.nodes() if n.label == "c"][0]
        reference.delete_leaf(c_id)
        maintained.delete_leaf(c_id)
        maintained.validate()
        assert decode_to_nested(maintained.root) == tree_to_nested_with_ids(reference)

    def test_delete_internal_or_root_fails(self):
        tree = UnrankedTree.from_nested(("r", [("b", ["c"])]))
        maintained = MaintainedTerm(tree.copy())
        b_id = [n.node_id for n in tree.nodes() if n.label == "b"][0]
        with pytest.raises(InvalidEditError):
            maintained.delete_leaf(b_id)
        single = MaintainedTerm(UnrankedTree("only"))
        with pytest.raises(InvalidEditError):
            single.delete_leaf(0)

    def test_duplicate_insert_id_fails(self):
        tree = UnrankedTree("r")
        maintained = MaintainedTerm(tree)
        with pytest.raises(InvalidEditError):
            maintained.insert_first_child(tree.root.node_id, tree.root.node_id, "x")

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("initial_size", [1, 5, 30])
    def test_random_edit_sequences_match_reference(self, seed, initial_size):
        tree = random_tree(initial_size, seed=seed)
        edits = random_edit_sequence(tree, LABELS, 120, seed=seed + 100)
        reference, maintained, reports = apply_edits_both(tree, edits)
        maintained.validate()
        assert decode_to_nested(maintained.root) == tree_to_nested_with_ids(reference)
        assert maintained.size() == reference.size()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_height_stays_logarithmic_under_growth(self, seed):
        # grow a tree by repeated insertions at adversarial positions
        tree = UnrankedTree("r")
        maintained = MaintainedTerm(tree.copy())
        reference = tree.copy()
        rng = random.Random(seed)
        for step in range(600):
            nodes = list(reference.nodes())
            anchor = rng.choice(nodes)
            if anchor.parent is not None and rng.random() < 0.3:
                new = reference.insert_right_sibling(anchor.node_id, "n")
                maintained.insert_right_sibling(anchor.node_id, new.node_id, "n")
            else:
                new = reference.insert_first_child(anchor.node_id, "n")
                maintained.insert_first_child(anchor.node_id, new.node_id, "n")
        assert maintained.size() == reference.size() == 601
        budget = maintained.height_budget(maintained.size())
        assert maintained.height() <= budget
        assert decode_to_nested(maintained.root) == tree_to_nested_with_ids(reference)

    def test_path_growth_stays_balanced(self):
        # repeatedly deepen a path: the nightmare case for unbalanced encodings
        tree = UnrankedTree("r")
        maintained = MaintainedTerm(tree.copy())
        reference = tree.copy()
        deepest = reference.root
        for _ in range(400):
            new = reference.insert_first_child(deepest.node_id, "p")
            maintained.insert_first_child(deepest.node_id, new.node_id, "p")
            deepest = new
        assert maintained.height() <= maintained.height_budget(maintained.size())
        assert decode_to_nested(maintained.root) == tree_to_nested_with_ids(reference)

    def test_trunk_sizes_are_logarithmic(self):
        tree = random_tree(2000, seed=5)
        maintained = MaintainedTerm(tree.copy())
        reference = tree.copy()
        edits = random_edit_sequence(reference, LABELS, 100, seed=9)
        bound = 6.0 * math.log2(maintained.size() + 1) + 20
        big_trunks = 0
        for edit in edits:
            new_node = edit.apply_to_tree(reference)
            from repro.trees.edits import Insert, InsertRight

            if isinstance(edit, (Insert, InsertRight)):
                report = maintained.apply_edit(edit, new_node_id=new_node.node_id)
            else:
                report = maintained.apply_edit(edit)
            if report.rebuilt_subterm_size == 0 and report.trunk_size() > bound:
                big_trunks += 1
        # non-rebuilding updates must have logarithmic trunks
        assert big_trunks == 0
        maintained.validate()

    def test_hollowing_view(self):
        tree = random_tree(200, seed=2)
        maintained = MaintainedTerm(tree.copy())
        reference = tree.copy()
        leaf = next(n for n in reference.nodes() if n.is_leaf() and n.parent is not None)
        report = maintained.delete_leaf(leaf.node_id)
        hollowing = hollowing_from_report(report)
        assert hollowing.trunk_size() == report.trunk_size()
        assert hollowing.is_antichain()

    def test_removed_leaves_reported(self):
        tree = UnrankedTree.from_nested(("r", ["a", "b"]))
        maintained = MaintainedTerm(tree.copy())
        a_id = [n.node_id for n in tree.nodes() if n.label == "a"][0]
        report = maintained.delete_leaf(a_id)
        assert report.removed_leaves == [a_id]


# --------------------------------------------------------------------------- property tests
@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=60),
)
def test_property_random_edits_roundtrip(initial_size, seed, n_edits):
    tree = random_tree(initial_size, seed=seed)
    edits = random_edit_sequence(tree, LABELS, n_edits, seed=seed + 1)
    reference, maintained, _reports = apply_edits_both(tree, edits)
    maintained.validate()
    assert decode_to_nested(maintained.root) == tree_to_nested_with_ids(reference)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=10_000))
def test_property_encoder_height(size, seed):
    tree = random_tree(size, seed=seed)
    term = encode_tree(tree)
    assert term.height <= 3.0 * math.log2(size + 1) + 6
