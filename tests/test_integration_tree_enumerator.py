"""End-to-end tests of the full pipeline (Theorem 8.1): unranked TVA →
translated binary TVA → balanced term → circuit → enumeration, with updates.

Every test compares the enumerator's answers against the brute-force oracle
on the unranked tree, before and after sequences of updates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_unranked_tva
from repro.automata.boolean_ops import intersect, union
from repro.automata.brute_force import unranked_satisfying_assignments
from repro.automata.queries import (
    boolean_contains_label,
    select_descendant_pairs,
    select_label_pairs,
    select_label_set,
    select_labeled,
    select_leaves,
    select_with_marked_ancestor,
)
from repro.core.baselines import (
    MaterializingEnumerator,
    RecomputeTreeEnumerator,
    RelabelOnlyTreeEnumerator,
    make_enumerator,
)
from repro.core.enumerator import TreeEnumerator, TreeRuntime
from repro.errors import StaleIteratorError, UnsupportedUpdateError
from repro.trees.edits import Delete, Insert, InsertRight, Relabel, random_edit_sequence
from repro.trees.generators import path_tree, random_tree, star_tree, xml_like_document
from repro.trees.unranked import UnrankedTree

LABELS = ("a", "b", "c")

QUERIES = [
    ("labeled", lambda: select_labeled("a", LABELS)),
    ("leaves", lambda: select_leaves(LABELS)),
    ("marked_ancestor", lambda: select_with_marked_ancestor("b", LABELS)),
    ("pairs", lambda: select_label_pairs("a", "b", LABELS)),
    ("descendant", lambda: select_descendant_pairs(LABELS)),
    ("label_set", lambda: select_label_set("a", LABELS)),
    ("boolean", lambda: boolean_contains_label("a", LABELS)),
]


def check_against_oracle(enumerator, query, tree):
    produced = list(enumerator.assignments())
    assert len(produced) == len(set(produced)), "duplicate answers"
    expected = unranked_satisfying_assignments(query, tree)
    assert set(produced) == expected
    return produced


class TestStaticEnumeration:
    @pytest.mark.parametrize("name,factory", QUERIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_oracle_random_trees(self, name, factory, seed):
        query = factory()
        tree = random_tree(14, LABELS, seed=seed)
        enumerator = TreeRuntime(tree, query)
        check_against_oracle(enumerator, query, tree)

    @pytest.mark.parametrize("name,factory", QUERIES)
    @pytest.mark.parametrize("shape", [path_tree, star_tree])
    def test_matches_oracle_adversarial_shapes(self, name, factory, shape):
        query = factory()
        tree = shape(12, LABELS, seed=3)
        enumerator = TreeRuntime(tree, query)
        check_against_oracle(enumerator, query, tree)

    def test_single_node_tree(self):
        query = select_labeled("a", LABELS)
        tree = UnrankedTree("a")
        enumerator = TreeRuntime(tree, query)
        answers = list(enumerator.assignments())
        assert answers == [frozenset({("x", tree.root.node_id)})]

    def test_answers_reference_tree_node_ids(self):
        query = select_labeled("a", LABELS)
        tree = UnrankedTree.from_nested(("b", ["a", ("c", ["a"])]))
        enumerator = TreeRuntime(tree, query)
        a_ids = {n.node_id for n in tree.nodes() if n.label == "a"}
        produced_ids = {node_id for answer in enumerator.assignments() for _var, node_id in answer}
        assert produced_ids == a_ids

    def test_boolean_query_yes_and_no(self):
        query = boolean_contains_label("a", LABELS)
        yes = TreeRuntime(UnrankedTree.from_nested(("b", ["a"])), query)
        no = TreeRuntime(UnrankedTree.from_nested(("b", ["c"])), query)
        assert list(yes.assignments()) == [frozenset()]
        assert list(no.assignments()) == []

    def test_second_order_query_answer_sizes(self):
        query = select_label_set("a", LABELS)
        tree = star_tree(6, ("a",), seed=0)  # all labels 'a'
        enumerator = TreeRuntime(tree, query)
        answers = list(enumerator.assignments())
        assert len(answers) == 2 ** tree.size()
        assert max(len(a) for a in answers) == tree.size()

    def test_stats_reported(self):
        query = select_labeled("a", LABELS)
        tree = random_tree(40, LABELS, seed=4)
        enumerator = TreeRuntime(tree, query)
        stats = enumerator.stats()
        assert stats.tree_size == 40
        assert stats.term_size == 40
        assert stats.circuit_width >= 1
        assert stats.preprocessing_seconds > 0

    def test_answer_tuples_and_valuations(self):
        query = select_label_pairs("a", "b", LABELS)
        tree = UnrankedTree.from_nested(("c", ["a", "b"]))
        enumerator = TreeRuntime(tree, query)
        tuples = set(enumerator.answer_tuples(("x", "y")))
        a_id = tree.nodes_with_label("a")[0].node_id
        b_id = tree.nodes_with_label("b")[0].node_id
        assert tuples == {(a_id, b_id)}
        valuations = list(enumerator.valuations())
        assert valuations == [{a_id: frozenset({"x"}), b_id: frozenset({"y"})}]

    def test_count_and_first(self):
        query = select_labeled("a", LABELS)
        tree = star_tree(20, ("a",), seed=0)
        enumerator = TreeRuntime(tree, query)
        assert enumerator.count() == 20
        assert len(enumerator.first(5)) == 5

    def test_boolean_combinations(self):
        has_a = boolean_contains_label("a", LABELS)
        has_b = boolean_contains_label("b", LABELS)
        both = intersect(has_a, has_b)
        either = union(has_a, has_b)
        tree_ab = UnrankedTree.from_nested(("c", ["a", "b"]))
        tree_a = UnrankedTree.from_nested(("c", ["a", "c"]))
        assert list(TreeRuntime(tree_ab, both).assignments()) == [frozenset()]
        assert list(TreeRuntime(tree_a, both).assignments()) == []
        assert list(TreeRuntime(tree_a, either).assignments()) == [frozenset()]


class TestUpdates:
    @pytest.mark.parametrize("name,factory", QUERIES[:5])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_edit_sequences_stay_correct(self, name, factory, seed):
        query = factory()
        tree = random_tree(10, LABELS, seed=seed)
        enumerator = TreeRuntime(tree, query)
        edits = random_edit_sequence(tree, LABELS, 25, seed=seed + 50)
        reference = tree.copy()
        for edit in edits:
            edit.apply_to_tree(reference)
            enumerator.apply(edit)
            produced = set(enumerator.assignments())
            expected = unranked_satisfying_assignments(query, reference)
            assert produced == expected

    def test_update_convenience_methods(self):
        query = select_labeled("a", LABELS)
        tree = UnrankedTree.from_nested(("b", ["c"]))
        enumerator = TreeRuntime(tree, query)
        assert enumerator.count() == 0
        stats = enumerator.insert_first_child(tree.root.node_id, "a")
        assert stats.new_node_id is not None
        assert enumerator.count() == 1
        enumerator.relabel(stats.new_node_id, "b")
        assert enumerator.count() == 0
        enumerator.relabel(stats.new_node_id, "a")
        sibling = enumerator.insert_right_sibling(stats.new_node_id, "a")
        assert enumerator.count() == 2
        enumerator.delete_leaf(sibling.new_node_id)
        assert enumerator.count() == 1

    def test_trunk_sizes_small_on_large_tree(self):
        query = select_labeled("a", LABELS)
        tree = random_tree(800, LABELS, seed=6)
        enumerator = TreeRuntime(tree, query)
        target = tree.node_ids()[200]
        stats = enumerator.relabel(target, "a")
        assert stats.trunk_size <= 6 * (tree.size().bit_length()) + 20
        assert stats.trunk_size < tree.size() / 4

    def test_stale_iterator_detection(self):
        query = select_labeled("a", LABELS)
        tree = star_tree(10, ("a",), seed=0)
        enumerator = TreeRuntime(tree, query)
        iterator = enumerator.assignments()
        next(iterator)
        enumerator.relabel(tree.root.node_id, "b")
        with pytest.raises(StaleIteratorError):
            for _ in iterator:
                pass

    def test_grow_from_single_node(self):
        query = select_leaves(LABELS)
        tree = UnrankedTree("a")
        enumerator = TreeRuntime(tree, query)
        reference = enumerator.tree  # enumerator owns a copy
        for i in range(15):
            target = reference.node_ids()[i % reference.size()]
            enumerator.insert_first_child(target, LABELS[i % 3])
            expected = unranked_satisfying_assignments(query, reference)
            assert set(enumerator.assignments()) == expected


class TestBaselines:
    @pytest.mark.parametrize("strategy", ["this-paper", "recompute", "relabel-only", "materialize"])
    def test_all_strategies_agree(self, strategy):
        query = select_labeled("a", LABELS)
        tree = random_tree(12, LABELS, seed=2)
        enumerator = make_enumerator(strategy, tree, query)
        expected = unranked_satisfying_assignments(query, tree)
        assert set(enumerator.assignments()) == expected

    @pytest.mark.parametrize("strategy", ["this-paper", "recompute", "relabel-only", "materialize"])
    def test_strategies_agree_after_updates(self, strategy):
        query = select_with_marked_ancestor("b", LABELS)
        tree = random_tree(10, LABELS, seed=7)
        enumerator = make_enumerator(strategy, tree, query)
        reference = tree.copy()
        edits = random_edit_sequence(tree, LABELS, 12, seed=3)
        for edit in edits:
            edit.apply_to_tree(reference)
            enumerator.apply(edit)
            assert set(enumerator.assignments()) == unranked_satisfying_assignments(query, reference)

    def test_relabel_only_strict_mode_rejects_structural_updates(self):
        query = select_labeled("a", LABELS)
        tree = random_tree(8, LABELS, seed=1)
        enumerator = RelabelOnlyTreeEnumerator(tree, query, fallback=False)
        enumerator.apply(Relabel(tree.root.node_id, "a"))
        with pytest.raises(UnsupportedUpdateError):
            enumerator.apply(Insert(tree.root.node_id, "a"))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_enumerator("nope", UnrankedTree("a"), select_labeled("a", LABELS))


class TestRandomAutomataEndToEnd:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=6),
    )
    def test_random_unranked_automata(self, automaton_seed, tree_seed, tree_size, n_edits):
        query = random_unranked_tva(automaton_seed, n_states=2, variables=("x",))
        tree = random_tree(tree_size, LABELS, seed=tree_seed)
        enumerator = TreeRuntime(tree, query)
        reference = tree.copy()
        assert set(enumerator.assignments()) == unranked_satisfying_assignments(query, reference)
        edits = random_edit_sequence(tree, LABELS, n_edits, seed=tree_seed + 1)
        for edit in edits:
            edit.apply_to_tree(reference)
            enumerator.apply(edit)
            assert set(enumerator.assignments()) == unranked_satisfying_assignments(query, reference)


class TestDeprecatedTreeEnumerator:
    def test_tree_enumerator_shim_is_deprecated(self):
        """The one sanctioned use of the legacy name: it must warn, and be
        the same machinery as TreeRuntime."""
        query = select_labeled("a", LABELS)
        tree = random_tree(10, LABELS, seed=0)
        with pytest.deprecated_call():
            shim = TreeEnumerator(tree, query)
        assert isinstance(shim, TreeRuntime)
        check_against_oracle(shim, query, tree)
