"""Tests for the enumeration algorithms of Sections 4–6.

The chain of comparisons is:

* Algorithm 1 (with duplicates) produces at least the captured set;
* Algorithm 2 with the *naive* box enumeration produces exactly the captured
  set, without duplicates;
* Algorithm 3 (indexed box enumeration) produces exactly the same
  (box, relation) pairs as the naive box enumeration;
* the full :class:`CircuitEnumerator` agrees with the brute-force automaton
  oracle, with and without the index, with both relation backends.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import (
    ALL_BINARY_TVAS,
    boolean_has_a_leaf,
    nondet_witness,
    random_binary_tva,
    random_binary_tree,
    select_a_leaf,
    select_pair_ab,
    subset_of_a_leaves,
)
from repro.automata.brute_force import binary_satisfying_assignments
from repro.automata.homogenize import homogenize
from repro.circuits.build import build_assignment_circuit
from repro.circuits.gates import BOTTOM, TOP, UnionGate
from repro.circuits.semantics import captured_set
from repro.enumeration.assignment_iter import CircuitEnumerator
from repro.enumeration.box_enum import indexed_box_enum, naive_box_enum
from repro.enumeration.duplicate_free import enumerate_boxed_set
from repro.enumeration.index import build_index, fbb_of_slots, fib_of_slots
from repro.enumeration.relations import Relation, get_default_backend, set_default_backend
from repro.enumeration.simple import enumerate_with_duplicates
from repro.trees.binary import BinaryTree


def build_circuit(factory, tree_seed, tree_size=6):
    automaton = homogenize(factory())
    tree = random_binary_tree(tree_seed, tree_size)
    circuit = build_assignment_circuit(tree, automaton)
    return automaton, tree, circuit


def union_gates_of(circuit):
    for box in circuit.boxes():
        for gate in box.union_gates:
            yield gate


# --------------------------------------------------------------------------- Relation
class TestRelation:
    def test_identity_and_pairs(self):
        rel = Relation.identity(3)
        assert rel.pairs() == {(0, 0), (1, 1), (2, 2)}
        assert rel.lower_slots() == {0, 1, 2}
        assert not rel.is_empty()

    def test_compose_pairs_and_matrix_agree(self):
        first = Relation(3, 2, [(0, 0), (1, 1), (2, 1)], backend="pairs")
        second = Relation(2, 4, [(0, 3), (1, 0), (1, 2)], backend="pairs")
        composed = first.compose(second)
        first_m = Relation(3, 2, [(0, 0), (1, 1), (2, 1)], backend="matrix")
        second_m = Relation(2, 4, [(0, 3), (1, 0), (1, 2)], backend="matrix")
        composed_m = first_m.compose(second_m)
        assert composed.pairs() == composed_m.pairs()
        assert composed == composed_m

    def test_compose_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Relation(2, 2).compose(Relation(3, 3))

    def test_uppers_by_lower_and_restrict(self):
        rel = Relation(2, 3, [(0, 0), (0, 2), (1, 1)])
        assert rel.uppers_by_lower() == {0: {0, 2}, 1: {1}}
        assert rel.restrict_upper([0]).pairs() == {(0, 0)}
        assert rel.uppers_of(0) == {0, 2}

    def test_matrix_roundtrip_and_empty(self):
        rel = Relation(2, 2, [], backend="matrix")
        assert rel.is_empty() and not rel
        rel2 = Relation.from_matrix(rel.matrix())
        assert rel2.is_empty()

    def test_default_backend_switch(self):
        original = get_default_backend()
        set_default_backend("matrix")
        try:
            rel = Relation(1, 1, [(0, 0)])
            assert rel.backend == "matrix"
        finally:
            set_default_backend(original)
        with pytest.raises(ValueError):
            set_default_backend("nope")


# --------------------------------------------------------------------------- Algorithm 1
class TestSimpleEnumeration:
    @pytest.mark.parametrize("factory", [select_a_leaf, select_pair_ab, subset_of_a_leaves])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_covers_captured_set(self, factory, seed):
        _automaton, _tree, circuit = build_circuit(factory, seed)
        for gate in union_gates_of(circuit):
            produced = list(enumerate_with_duplicates(gate))
            assert set(produced) == captured_set(gate)

    def test_duplicates_reflect_multiple_runs(self):
        # nondet_witness has one run per (answer, witness) pair: with two
        # b-leaves, each answer must be produced at least twice.
        automaton = homogenize(nondet_witness())
        tree = BinaryTree.from_nested(("c", ("c", "a", "b"), "b"))
        circuit = build_assignment_circuit(tree, automaton)
        gates = [g for g in circuit.root_gates() if isinstance(g, UnionGate)]
        counter = Counter()
        for gate in gates:
            counter.update(enumerate_with_duplicates(gate))
        assert counter and all(count >= 2 for count in counter.values())


# --------------------------------------------------------------------------- box enumeration
class TestBoxEnumeration:
    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_indexed_matches_naive(self, factory, seed):
        _automaton, _tree, circuit = build_circuit(factory, seed, tree_size=8)
        build_index(circuit)
        for box in circuit.boxes():
            if not box.union_gates:
                continue
            gamma = list(box.union_gates)
            naive = {(id(b), rel.pairs()) for b, rel in naive_box_enum(gamma)}
            indexed = {(id(b), rel.pairs()) for b, rel in indexed_box_enum(gamma)}
            assert naive == indexed

    @pytest.mark.parametrize("seed", range(6))
    def test_indexed_matches_naive_random_automata(self, seed):
        automaton = homogenize(random_binary_tva(seed, n_states=3, variables=("x", "y")))
        tree = random_binary_tree(seed + 100, 8)
        circuit = build_assignment_circuit(tree, automaton)
        build_index(circuit)
        root_gates = [g for g in circuit.root_gates() if isinstance(g, UnionGate)]
        for gate in root_gates:
            naive = {(id(b), rel.pairs()) for b, rel in naive_box_enum([gate])}
            indexed = {(id(b), rel.pairs()) for b, rel in indexed_box_enum([gate])}
            assert naive == indexed

    def test_every_interesting_box_produced_once(self):
        _automaton, _tree, circuit = build_circuit(select_pair_ab, 2, tree_size=10)
        build_index(circuit)
        for box in circuit.boxes():
            if not box.union_gates:
                continue
            produced = [id(b) for b, _ in indexed_box_enum(list(box.union_gates))]
            assert len(produced) == len(set(produced))

    def test_index_fib_points_to_interesting_box(self):
        _automaton, _tree, circuit = build_circuit(select_a_leaf, 4, tree_size=8)
        build_index(circuit)
        for box in circuit.boxes():
            index = box.index
            for slot, gate in enumerate(box.union_gates):
                fib_box = index.fib[slot]
                # the fib box contains a var- or ×-gate reachable from the gate
                produced = {id(b) for b, _ in naive_box_enum([gate])}
                assert id(fib_box) in produced

    def test_lca_of_is_reflexive_and_matches_ancestry(self):
        _automaton, _tree, circuit = build_circuit(select_pair_ab, 3, tree_size=8)
        build_index(circuit)
        for box in circuit.boxes():
            index = box.index
            for target in index.targets:
                assert index.lca_of(target, target) is target
                assert index.is_ancestor(target, target)
                assert index.lca_of(box, target) is box
                assert index.is_ancestor(box, target)

    @pytest.mark.parametrize("seed", range(8))
    def test_lca_of_answers_all_target_pairs(self, seed):
        # The lca of two targets need not be a target itself; lca_of must
        # still return the correct box (checked against true box ancestry).
        _automaton, _tree, circuit = build_circuit(select_pair_ab, seed, tree_size=12)
        build_index(circuit)
        for box in circuit.boxes():
            index = box.index
            ancestors = {}  # box -> list of (ancestor, depth) via DFS paths
            stack = [(box, [box])]
            while stack:
                current, path = stack.pop()
                ancestors[id(current)] = list(path)
                for child in current.children():
                    stack.append((child, path + [child]))
            targets = list(index.targets)
            for i, first in enumerate(targets):
                for second in targets[i:]:
                    expected = None
                    path_first = ancestors[id(first)]
                    path_second = set(id(b) for b in ancestors[id(second)])
                    for node in reversed(path_first):
                        if id(node) in path_second:
                            expected = node
                            break
                    assert index.lca_of(first, second) is expected

    def test_fib_fbb_of_slots_helpers(self):
        _automaton, _tree, circuit = build_circuit(select_pair_ab, 5, tree_size=8)
        build_index(circuit)
        root = circuit.root_box
        slots = [g.slot for g in root.union_gates]
        if slots:
            fib = fib_of_slots(root.index, slots)
            assert fib is not None
            # fbb may legitimately be None (no branching below)
            fbb_of_slots(root.index, slots)


# --------------------------------------------------------------------------- Algorithm 2
class TestDuplicateFreeEnumeration:
    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("box_enum", [naive_box_enum, indexed_box_enum])
    def test_no_duplicates_and_complete(self, factory, seed, box_enum):
        _automaton, _tree, circuit = build_circuit(factory, seed, tree_size=7)
        build_index(circuit)
        for box in circuit.boxes():
            if not box.union_gates:
                continue
            gamma = list(box.union_gates)
            expected = set()
            for gate in gamma:
                expected |= captured_set(gate)
            produced = [a for a, _prov in enumerate_boxed_set(gamma, box_enum)]
            assert len(produced) == len(set(produced)), "duplicate assignment produced"
            assert set(produced) == expected

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_provenance_is_correct(self, seed):
        _automaton, _tree, circuit = build_circuit(select_pair_ab, seed, tree_size=7)
        build_index(circuit)
        root_gates = [g for g in circuit.root_box.union_gates]
        if not root_gates:
            pytest.skip("no union gates at the root for this tree")
        captured = {id(g): captured_set(g) for g in root_gates}
        for assignment, provenance in enumerate_boxed_set(root_gates):
            for gate in root_gates:
                if assignment in captured[id(gate)]:
                    assert gate in provenance
                else:
                    assert gate not in provenance

    def test_heavy_nondeterminism_still_duplicate_free(self):
        automaton = homogenize(nondet_witness())
        tree = BinaryTree.from_nested(
            ("c", ("c", ("c", "a", "b"), ("c", "b", "b")), ("c", "a", "b"))
        )
        circuit = build_assignment_circuit(tree, automaton)
        build_index(circuit)
        gates = [g for g in circuit.root_gates() if isinstance(g, UnionGate)]
        produced = [a for a, _ in enumerate_boxed_set(gates)]
        assert len(produced) == len(set(produced))
        expected = binary_satisfying_assignments(automaton, tree)
        assert set(produced) == expected


# --------------------------------------------------------------------------- full enumerator
class TestCircuitEnumerator:
    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("use_index", [True, False])
    def test_matches_oracle(self, factory, seed, use_index):
        automaton, tree, circuit = build_circuit(factory, seed, tree_size=7)
        enumerator = CircuitEnumerator(circuit, use_index=use_index)
        produced = list(enumerator.assignments())
        assert len(produced) == len(set(produced))
        assert set(produced) == binary_satisfying_assignments(automaton, tree)

    @pytest.mark.parametrize("backend", ["pairs", "matrix", "bitset"])
    def test_relation_backends_agree(self, backend):
        automaton, tree, circuit = build_circuit(select_pair_ab, 7, tree_size=9)
        enumerator = CircuitEnumerator(circuit, relation_backend=backend)
        assert set(enumerator.assignments()) == binary_satisfying_assignments(automaton, tree)

    def test_empty_assignment_first(self):
        automaton = homogenize(subset_of_a_leaves())
        tree = BinaryTree.from_nested(("c", "a", ("c", "a", "b")))
        circuit = build_assignment_circuit(tree, automaton)
        enumerator = CircuitEnumerator(circuit)
        answers = list(enumerator.assignments())
        assert answers[0] == frozenset()
        assert len(answers) == 4  # subsets of the two a-leaves

    def test_boolean_query(self):
        automaton = homogenize(boolean_has_a_leaf())
        yes_tree = BinaryTree.from_nested(("c", "a", "b"))
        no_tree = BinaryTree.from_nested(("c", "b", "b"))
        yes = CircuitEnumerator(build_assignment_circuit(yes_tree, automaton))
        no = CircuitEnumerator(build_assignment_circuit(no_tree, automaton))
        assert list(yes.assignments()) == [frozenset()]
        assert list(no.assignments()) == []

    def test_first_and_count_helpers(self):
        automaton, tree, circuit = build_circuit(select_a_leaf, 9, tree_size=10)
        enumerator = CircuitEnumerator(circuit)
        total = len(binary_satisfying_assignments(automaton, tree))
        assert enumerator.count() == total
        assert len(enumerator.first(2)) == min(2, total)
        assert enumerator.count(limit=1) == min(1, total)

    def test_delay_probe_counts_answers(self):
        automaton, tree, circuit = build_circuit(select_a_leaf, 11, tree_size=12)
        enumerator = CircuitEnumerator(circuit)
        delays = enumerator.delay_probe()
        assert len(delays) == len(binary_satisfying_assignments(automaton, tree))
        assert all(d >= 0 for d in delays)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=1, max_value=8),
    )
    def test_random_instances_match_oracle(self, automaton_seed, tree_seed, n_states, n_vars, size):
        variables = ["x", "y"][:n_vars]
        automaton = homogenize(
            random_binary_tva(automaton_seed, n_states=n_states, variables=variables)
        )
        tree = random_binary_tree(tree_seed, size)
        circuit = build_assignment_circuit(tree, automaton)
        enumerator = CircuitEnumerator(circuit)
        produced = list(enumerator.assignments())
        assert len(produced) == len(set(produced))
        assert set(produced) == binary_satisfying_assignments(automaton, tree)
