"""Cross-backend equivalence of the relation backends (pairs/matrix/bitset).

The three backends of :class:`repro.enumeration.relations.Relation` must be
observationally identical: same ``pairs()`` under every operation (creation,
composition chains, restriction, projections), same equality/hash behaviour
across backends, and — end to end — identical answer sets when driving the
full enumeration pipeline.  These tests randomize over relations and over
(automaton, tree) instances and compare every pair of backends.
"""

from __future__ import annotations

import itertools
import random

import pytest

from helpers import (
    ALL_BINARY_TVAS,
    random_binary_tree,
    random_binary_tva,
    select_pair_ab,
)
from repro.automata.brute_force import binary_satisfying_assignments
from repro.automata.homogenize import homogenize
from repro.circuits.build import build_assignment_circuit
from repro.enumeration.assignment_iter import CircuitEnumerator
from repro.enumeration.relations import (
    Relation,
    get_default_backend,
    set_default_backend,
)

BACKENDS = ("pairs", "matrix", "bitset", "numpy")
BACKEND_PAIRS = list(itertools.combinations(BACKENDS, 2))


def random_pairs(rng: random.Random, n_lower: int, n_upper: int, density: float):
    return [
        (lower, upper)
        for lower in range(n_lower)
        for upper in range(n_upper)
        if rng.random() < density
    ]


# --------------------------------------------------------------------------- unit equivalence
class TestRelationBackendEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("first,second", BACKEND_PAIRS)
    def test_random_relations_same_observables(self, seed, first, second):
        rng = random.Random(seed)
        n_lower = rng.randint(1, 9)
        n_upper = rng.randint(1, 9)
        pairs = random_pairs(rng, n_lower, n_upper, 0.35)
        rel_a = Relation(n_lower, n_upper, pairs, backend=first)
        rel_b = Relation(n_lower, n_upper, pairs, backend=second)
        assert rel_a.pairs() == rel_b.pairs()
        assert rel_a.lower_slots() == rel_b.lower_slots()
        assert rel_a.upper_slots() == rel_b.upper_slots()
        assert rel_a.lower_mask() == rel_b.lower_mask()
        assert rel_a.uppers_by_lower() == rel_b.uppers_by_lower()
        assert rel_a.is_empty() == rel_b.is_empty()
        assert len(rel_a) == len(rel_b)
        for lower in range(n_lower):
            assert rel_a.uppers_of(lower) == rel_b.uppers_of(lower)
        # cross-backend equality and hashing (satellite: cached canonical form)
        assert rel_a == rel_b
        assert hash(rel_a) == hash(rel_b)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("first,second", BACKEND_PAIRS)
    def test_composition_chains_agree(self, seed, first, second):
        rng = random.Random(1000 + seed)
        dims = [rng.randint(1, 7) for _ in range(5)]
        layer_pairs = [
            random_pairs(rng, dims[i], dims[i + 1], 0.4) for i in range(len(dims) - 1)
        ]
        chain_a = [
            Relation(dims[i], dims[i + 1], layer_pairs[i], backend=first)
            for i in range(len(dims) - 1)
        ]
        chain_b = [
            Relation(dims[i], dims[i + 1], layer_pairs[i], backend=second)
            for i in range(len(dims) - 1)
        ]
        composed_a = chain_a[0]
        composed_b = chain_b[0]
        for next_a, next_b in zip(chain_a[1:], chain_b[1:]):
            composed_a = composed_a.compose(next_a)
            composed_b = composed_b.compose(next_b)
            assert composed_a.pairs() == composed_b.pairs()
        assert composed_a == composed_b

    @pytest.mark.parametrize("first,second", BACKEND_PAIRS)
    def test_mixed_backend_composition(self, first, second):
        a = Relation(3, 4, [(0, 1), (1, 2), (2, 3)], backend=first)
        b = Relation(4, 2, [(1, 0), (2, 1), (3, 0)], backend=second)
        mixed = a.compose(b)
        reference = Relation(3, 4, a.pairs(), backend="pairs").compose(
            Relation(4, 2, b.pairs(), backend="pairs")
        )
        assert mixed.pairs() == reference.pairs()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_restrict_upper_native(self, backend):
        rel = Relation(3, 5, [(0, 0), (0, 4), (1, 2), (2, 3)], backend=backend)
        restricted = rel.restrict_upper([0, 2, 3])
        assert restricted.backend in BACKENDS
        assert restricted.pairs() == {(0, 0), (1, 2), (2, 3)}
        assert restricted.n_lower == 3 and restricted.n_upper == 5
        assert rel.restrict_upper([]).is_empty()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identity_and_from_masks_roundtrip(self, backend):
        ident = Relation.identity(4, backend=backend)
        assert ident.pairs() == {(i, i) for i in range(4)}
        rel = Relation.from_masks(3, 4, [0b1010, 0, 0b0001], backend=backend)
        assert rel.pairs() == {(0, 1), (0, 3), (2, 0)}
        assert rel.masks() == [0b1010, 0, 0b0001]

    def test_eq_short_circuits_on_dimensions(self):
        assert Relation(2, 3, [(0, 0)]) != Relation(3, 2, [(0, 0)])
        assert Relation(2, 3, [(0, 0)]) != Relation(2, 4, [(0, 0)])
        assert Relation(2, 3, []) != object()


# --------------------------------------------------------------------------- end-to-end equivalence
def _answers(circuit_factory, backend):
    circuit = circuit_factory()
    enumerator = CircuitEnumerator(circuit, relation_backend=backend)
    answers = list(enumerator.assignments())
    assert len(answers) == len(set(answers)), f"{backend} produced duplicates"
    return set(answers)


class TestEndToEndBackendEquivalence:
    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_backends_same_answers(self, factory, seed):
        automaton = homogenize(factory())
        tree = random_binary_tree(seed, 8)
        expected = binary_satisfying_assignments(automaton, tree)
        for backend in BACKENDS:
            produced = _answers(lambda: build_assignment_circuit(tree, automaton), backend)
            assert produced == expected, f"backend {backend} diverged"

    @pytest.mark.parametrize("seed", range(4))
    def test_random_automata_all_backends(self, seed):
        automaton = homogenize(random_binary_tva(seed, n_states=3, variables=("x", "y")))
        tree = random_binary_tree(seed + 50, 7)
        expected = binary_satisfying_assignments(automaton, tree)
        for backend in BACKENDS:
            produced = _answers(lambda: build_assignment_circuit(tree, automaton), backend)
            assert produced == expected

    def test_default_backend_selection_round_trip(self):
        original = get_default_backend()
        try:
            for backend in BACKENDS:
                set_default_backend(backend)
                assert get_default_backend() == backend
                assert Relation(1, 1, [(0, 0)]).backend == backend
        finally:
            set_default_backend(original)
        with pytest.raises(ValueError):
            set_default_backend("nope")

    def test_default_is_bitset(self):
        assert get_default_backend() == "bitset"

    def test_hand_built_boxes_record_wiring_and_index_correctly(self):
        """The non-plan construction path (Box.add_* API) stays equivalent.

        Hand-builds a three-level circuit fragment through the public gate
        API — exercising add_union_gate's mask classification, the wiring
        fallback (no wire plan), and the generic index path — and checks the
        masks against child_wire_pairs and the indexed enumeration against
        the naive walk.
        """
        from repro.circuits.gates import Box, child_wire_pairs
        from repro.enumeration.box_enum import indexed_box_enum, naive_box_enum
        from repro.enumeration.index import build_box_index

        left = Box("l", leaf_payload=1)
        gate_l = left.add_union_gate("q", [left.add_var_gate(frozenset({("x", 1)}))])
        right = Box("r", leaf_payload=2)
        gate_r = right.add_union_gate("q", [right.add_var_gate(frozenset({("x", 2)}))])
        mid = Box("m", left_child=left, right_child=right)
        prod = mid.add_prod_gate(gate_l, gate_r)
        gate_m0 = mid.add_union_gate("q", [prod])
        gate_m1 = mid.add_union_gate("p", [gate_l])
        top_leaf = Box("t", leaf_payload=3)
        gate_t = top_leaf.add_union_gate("q", [top_leaf.add_var_gate(frozenset({("x", 3)}))])
        root = Box("root", left_child=mid, right_child=top_leaf)
        gate_root = root.add_union_gate("q", [root.add_prod_gate(gate_m0, gate_t), gate_m1])
        for box in (mid, root):
            box.state_gate = {g.state: g for g in box.union_gates}

        assert root.local_mask == 0b1
        assert root.left_input_masks == [0b10]  # gate_m1 is slot 1 of mid
        assert child_wire_pairs(root, "left") == {(1, 0)}
        assert child_wire_pairs(mid, "left") == {(0, 1)}

        for box in (left, right, top_leaf, mid, root):
            build_box_index(box)
        naive = {(id(b), rel.pairs()) for b, rel in naive_box_enum([gate_root])}
        indexed = {(id(b), rel.pairs()) for b, rel in indexed_box_enum([gate_root])}
        assert naive == indexed and naive

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_relation_pairs_identical_on_index_relations(self, backend):
        """The stored index relations agree with the pairs reference backend."""
        automaton = homogenize(select_pair_ab())
        tree = random_binary_tree(3, 9)
        circuit_ref = build_assignment_circuit(tree, automaton)
        CircuitEnumerator(circuit_ref, relation_backend="pairs")
        circuit = build_assignment_circuit(tree, automaton)
        CircuitEnumerator(circuit, relation_backend=backend)
        for box_ref, box in zip(circuit_ref.boxes(), circuit.boxes()):
            ref_rels = {
                id_rank: info.relation.pairs()
                for id_rank, info in (
                    (info.rank, info) for info in box_ref.index.targets.values()
                )
            }
            rels = {info.rank: info.relation.pairs() for info in box.index.targets.values()}
            assert ref_rels == rels


class TestBackendValidation:
    """Typos in backend names must fail fast with a helpful message."""

    def test_set_default_backend_lists_backends_and_suggests(self):
        with pytest.raises(ValueError) as excinfo:
            set_default_backend("bitsets")
        message = str(excinfo.value)
        for name in ("'pairs'", "'matrix'", "'bitset'"):
            assert name in message
        assert "did you mean 'bitset'?" in message

    def test_relation_constructor_validates(self):
        with pytest.raises(ValueError, match="did you mean 'matrix'"):
            Relation(2, 2, backend="matrx")

    def test_enumerator_keyword_fails_fast(self):
        from repro.core.enumerator import TreeRuntime
        from repro.automata.queries import select_labeled
        from repro.trees.unranked import UnrankedTree

        tree = UnrankedTree.from_nested(("a", ["b"]))
        with pytest.raises(ValueError, match="valid backends are"):
            TreeRuntime(tree, select_labeled("a", ("a", "b")), relation_backend="biset")

    def test_valid_backends_accepted(self):
        original = get_default_backend()
        try:
            for backend in BACKENDS:
                set_default_backend(backend)
                assert get_default_backend() == backend
        finally:
            set_default_backend(original)
