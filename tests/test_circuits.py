"""Tests for the assignment-circuit construction (Lemma 3.7) and the
structured-DNNF invariants (Definitions 3.1–3.6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import (
    ALL_BINARY_TVAS,
    boolean_has_a_leaf,
    nondet_witness,
    random_binary_tva,
    random_binary_tree,
    select_a_leaf,
    select_pair_ab,
    subset_of_a_leaves,
)
from repro.automata.brute_force import binary_satisfying_assignments, binary_state_assignments
from repro.automata.homogenize import homogenize
from repro.circuits.build import build_assignment_circuit
from repro.circuits.dnnf import circuit_stats, validate_circuit
from repro.circuits.gates import BOTTOM, TOP, UnionGate
from repro.circuits.semantics import captured_set
from repro.circuits.vtree import iter_vtree_edges, vtree_leaf_labels, vtree_partition_is_valid
from repro.errors import NotHomogenizedError
from repro.trees.binary import BinaryTree


def build(factory, tree):
    automaton = homogenize(factory())
    circuit = build_assignment_circuit(tree, automaton)
    return automaton, circuit


class TestConstructionBasics:
    def test_requires_homogenized(self):
        # A non-homogenized automaton must be rejected.
        from repro.automata.binary_tva import BinaryTVA

        automaton = BinaryTVA(
            ["q"],
            ["x"],
            [("a", frozenset(), "q"), ("a", frozenset({"x"}), "q")],
            [("a", "q", "q", "q")],
            ["q"],
        )
        tree = BinaryTree.from_nested(("a", "a", "a"))
        with pytest.raises(NotHomogenizedError):
            build_assignment_circuit(tree, automaton)

    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    def test_structure_is_valid(self, factory):
        tree = BinaryTree.from_nested(("c", ("a", "a", "b"), ("b", "c", "a")))
        _automaton, circuit = build(factory, tree)
        validate_circuit(circuit)
        assert vtree_partition_is_valid(circuit)

    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    def test_width_bounded_by_states(self, factory):
        automaton = homogenize(factory())
        tree = random_binary_tree(3, 10)
        circuit = build_assignment_circuit(tree, automaton)
        stats = circuit_stats(circuit)
        assert stats.width <= len(automaton.states)
        assert stats.max_prod_gates_in_box <= stats.width ** 2 or stats.width == 0

    def test_depth_follows_tree_height(self):
        automaton = homogenize(select_a_leaf())
        deep = BinaryTree.from_nested(("a", ("a", ("a", "a", "b"), "b"), "b"))
        circuit = build_assignment_circuit(deep, automaton)
        assert circuit.depth() == deep.height()

    def test_boxes_mirror_tree(self):
        automaton = homogenized = homogenize(select_a_leaf())
        tree = random_binary_tree(1, 8)
        circuit = build_assignment_circuit(tree, automaton)
        assert sum(1 for _ in circuit.boxes()) == tree.size()
        assert len(list(iter_vtree_edges(circuit))) == tree.size() - 1
        # every tree node has a box
        for node in tree.nodes():
            assert circuit.box_of(node.node_id) is not None

    def test_leaf_labels_cover_all_leaves(self):
        automaton = homogenize(select_pair_ab())
        tree = random_binary_tree(2, 6)
        circuit = build_assignment_circuit(tree, automaton)
        labels = vtree_leaf_labels(circuit)
        assert set(labels) == {leaf.node_id for leaf in tree.leaves()}

    def test_gate_count_linear_in_tree(self):
        automaton = homogenize(select_a_leaf())
        small = build_assignment_circuit(random_binary_tree(0, 10), automaton)
        large = build_assignment_circuit(random_binary_tree(0, 40), automaton)
        assert large.gate_count() <= 5 * small.gate_count()


class TestCapturedSets:
    """γ(n, q) must capture exactly the assignments of runs reaching q at n."""

    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gamma_gates_capture_run_assignments(self, factory, seed):
        automaton = homogenize(factory())
        tree = random_binary_tree(seed, 5)
        circuit = build_assignment_circuit(tree, automaton)
        oracle = binary_state_assignments(automaton, tree)
        for node in tree.nodes():
            box = circuit.box_of(node.node_id)
            for state in automaton.states:
                gate = box.state_gate[state]
                expected = frozenset(oracle[node.node_id].get(state, set()))
                assert captured_set(gate) == expected, (node.node_id, state)

    @pytest.mark.parametrize("factory", ALL_BINARY_TVAS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_root_final_gates_capture_satisfying_assignments(self, factory, seed):
        automaton = homogenize(factory())
        tree = random_binary_tree(seed, 6)
        circuit = build_assignment_circuit(tree, automaton)
        captured = set()
        for gate in circuit.root_gates():
            captured |= captured_set(gate)
        assert captured == binary_satisfying_assignments(automaton, tree)

    def test_zero_states_have_sentinel_gates(self):
        automaton = homogenize(nondet_witness())
        tree = random_binary_tree(5, 6)
        circuit = build_assignment_circuit(tree, automaton)
        for box in circuit.boxes():
            for state, gate in box.state_gate.items():
                if state in automaton.zero_states:
                    assert gate is TOP or gate is BOTTOM
                elif isinstance(gate, UnionGate):
                    # 1-state union gates never capture the empty assignment
                    assert frozenset() not in captured_set(gate)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=2),
    )
    def test_random_automata_circuits_correct(self, automaton_seed, tree_seed, n_states, n_vars):
        variables = ["x", "y"][:n_vars]
        automaton = homogenize(random_binary_tva(automaton_seed, n_states=n_states, variables=variables))
        tree = random_binary_tree(tree_seed, 5)
        circuit = build_assignment_circuit(tree, automaton)
        validate_circuit(circuit)
        captured = set()
        for gate in circuit.root_gates():
            captured |= captured_set(gate)
        assert captured == binary_satisfying_assignments(automaton, tree)


class TestBooleanAndEdgeCases:
    def test_boolean_query_circuit_has_no_union_gates(self):
        automaton = homogenize(boolean_has_a_leaf())
        tree = BinaryTree.from_nested(("c", "a", "b"))
        circuit = build_assignment_circuit(tree, automaton)
        assert circuit.width() == 0
        gates = circuit.root_gates()
        assert any(g is TOP for g in gates)

    def test_single_leaf_tree(self):
        automaton = homogenize(select_a_leaf())
        tree = BinaryTree.from_nested("a")
        circuit = build_assignment_circuit(tree, automaton)
        captured = set()
        for gate in circuit.root_gates():
            captured |= captured_set(gate)
        assert captured == {frozenset({("x", tree.root.node_id)})}

    def test_empty_answer_query(self):
        automaton = homogenize(subset_of_a_leaves())
        tree = BinaryTree.from_nested(("c", "b", "b"))
        circuit = build_assignment_circuit(tree, automaton)
        gates = circuit.root_gates()
        # no a-leaves: only the empty assignment is an answer, via a TOP gate
        assert any(g is TOP for g in gates)
        assert all(not captured_set(g) for g in gates if g is not TOP and g is not BOTTOM)
