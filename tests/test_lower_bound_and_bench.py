"""Tests for the marked-ancestor reduction (Theorem 9.2), the query library
and the benchmark helper modules."""

from __future__ import annotations

import random

import pytest

from repro.automata.brute_force import unranked_satisfying_assignments
from repro.automata.queries import (
    select_special_with_marked_ancestor,
    select_with_marked_ancestor,
)
from repro.bench.measure import measure_delays, measure_preprocessing, measure_updates, summarize
from repro.bench.reporting import format_table, record_experiment
from repro.bench.workloads import (
    mixed_workload,
    nondeterministic_family,
    query_for_name,
    spanner_document,
    tree_for_experiment,
)
from repro.core.enumerator import TreeRuntime
from repro.lower_bound.marked_ancestor import (
    EnumerationMarkedAncestor,
    MarkedAncestorInstance,
    NaiveMarkedAncestor,
)
from repro.trees.generators import random_tree

LABELS = ("unmarked", "marked", "special")


# --------------------------------------------------------------------------- lower bound
class TestMarkedAncestorReduction:
    @pytest.mark.parametrize("shape", ["random", "path"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_reduction_agrees_with_naive(self, shape, seed):
        instance = MarkedAncestorInstance(30, seed=seed, shape=shape)
        operations = instance.random_operations(60)
        naive = NaiveMarkedAncestor(instance.tree)
        reduction = EnumerationMarkedAncestor(instance.tree.copy())
        naive_answers = []
        for kind, node in operations:
            if kind == "mark":
                naive.mark(node)
            elif kind == "unmark":
                naive.unmark(node)
            else:
                naive_answers.append(naive.query(node))
        assert reduction.run(operations) == naive_answers

    def test_query_is_side_effect_free(self):
        instance = MarkedAncestorInstance(15, seed=2)
        reduction = EnumerationMarkedAncestor(instance.tree.copy())
        node = instance.random_node()
        before = set(reduction.enumerator.assignments())
        reduction.query(node)
        after = set(reduction.enumerator.assignments())
        assert before == after

    def test_marked_ancestor_queries_semantics(self):
        # direct check of the two query automata on a hand-built tree
        from repro.trees.unranked import UnrankedTree

        tree = UnrankedTree.from_nested(
            ("unmarked", [("marked", ["special"]), "unmarked"])
        )
        special_id = tree.nodes_with_label("special")[0].node_id
        query = select_special_with_marked_ancestor("marked", "special", LABELS)
        answers = unranked_satisfying_assignments(query, tree)
        assert answers == {frozenset({("x", special_id)})}
        # the unmarked sibling has no marked ancestor
        query_all = select_with_marked_ancestor("marked", LABELS)
        answers_all = unranked_satisfying_assignments(query_all, tree)
        assert frozenset({("x", special_id)}) in answers_all


# --------------------------------------------------------------------------- bench helpers
class TestBenchHelpers:
    def test_tree_and_query_factories(self):
        tree = tree_for_experiment(50, "random", seed=1)
        assert tree.size() == 50
        for name in ["select-a", "leaves", "marked-ancestor", "pairs", "descendant", "label-set", "boolean"]:
            query = query_for_name(name)
            assert query.size() > 0
        with pytest.raises(ValueError):
            query_for_name("nope")

    def test_mixed_workload_replayable(self):
        tree = tree_for_experiment(40, "random", seed=2)
        edits = mixed_workload(tree, 30, seed=3)
        assert len(edits) == 30
        relabels_only = mixed_workload(tree, 10, seed=3, structural=False)
        assert all(type(e).__name__ == "Relabel" for e in relabels_only)

    def test_spanner_document(self):
        doc = spanner_document(100, seed=1)
        assert len(doc) == 100
        assert set(doc) <= {"a", "b", "c", " "}

    def test_nondeterministic_family_is_consistent(self):
        tree = random_tree(12, ("a", "b", "c"), seed=5)
        small = nondeterministic_family(1)
        large = nondeterministic_family(3)
        assert large.size() > small.size()
        # the enumeration pipeline handles the family and agrees with the oracle
        enumerator = TreeRuntime(tree, small)
        assert set(enumerator.assignments()) == unranked_satisfying_assignments(small, tree)

    def test_measure_helpers(self):
        tree = tree_for_experiment(60, "random", seed=4)
        query = query_for_name("select-a")
        seconds = measure_preprocessing(lambda: TreeRuntime(tree, query))
        assert seconds > 0
        enumerator = TreeRuntime(tree, query)
        delays = measure_delays(enumerator, max_answers=10)
        assert delays.count <= 10
        updates = measure_updates(enumerator, mixed_workload(tree, 5, seed=0))
        assert updates.count == 5
        assert updates.mean >= 0
        summary = summarize([3.0, 1.0, 2.0])
        assert summary.median == 2.0 and summary.maximum == 3.0
        assert summarize([]).count == 0

    def test_reporting(self, tmp_path):
        table = record_experiment(
            "E0",
            "smoke test",
            ["n", "seconds"],
            [[10, 0.1], [20, 0.2]],
            notes="just a test",
            directory=str(tmp_path),
        )
        assert "smoke test" in table
        assert (tmp_path / "E0.json").exists()
        assert "n" in format_table("t", ["n"], [[1]])
