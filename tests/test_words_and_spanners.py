"""Tests for WVAs, the spanner regex compiler, the word enumerator
(Theorem 8.5) and word updates."""

from __future__ import annotations

import random
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.wva import WVA
from repro.core.enumerator import WordEnumerator, WordRuntime
from repro.errors import InvalidAutomatonError, InvalidEditError, RegexSyntaxError
from repro.spanners.compile import regex_to_wva
from repro.spanners.regex import parse_regex
from repro.spanners.spanner import Spanner

ALPHABET = ("a", "b", "c")


def simple_wva():
    """x marks one position carrying letter 'a'."""
    transitions = []
    for letter in ALPHABET:
        transitions.append(("scan", letter, frozenset(), "scan"))
        transitions.append(("after", letter, frozenset(), "after"))
    transitions.append(("scan", "a", frozenset({"x"}), "after"))
    return WVA(["scan", "after"], ["x"], transitions, ["scan"], ["after"], name="mark_a")


# --------------------------------------------------------------------------- WVA basics
class TestWVA:
    def test_accepts_and_size(self):
        automaton = simple_wva()
        assert automaton.size() == 2 + len(automaton.transitions)
        assert automaton.letters() == set(ALPHABET)
        assert automaton.accepts(list("bab"), {1: {"x"}})
        assert not automaton.accepts(list("bab"), {0: {"x"}})
        assert not automaton.accepts(list("bab"), {})

    def test_satisfying_assignments_oracle(self):
        automaton = simple_wva()
        word = list("abca")
        expected = {frozenset({("x", 0)}), frozenset({("x", 3)})}
        assert automaton.satisfying_assignments(word) == expected

    def test_validation(self):
        with pytest.raises(InvalidAutomatonError):
            WVA([], [], [], [], [])
        with pytest.raises(InvalidAutomatonError):
            WVA(["q"], [], [("q", "a", {"x"}, "q")], ["q"], ["q"])


# --------------------------------------------------------------------------- regex parsing
class TestRegexParsing:
    def test_basic_shapes(self):
        assert parse_regex("abc").kind == "concat"
        assert parse_regex("a|b").kind == "alt"
        assert parse_regex("a*").kind == "star"
        assert parse_regex("a+").kind == "plus"
        assert parse_regex("a?").kind == "optional"
        assert parse_regex("[abc]").kind == "class"
        assert parse_regex(".").kind == "any"
        assert parse_regex("x{a}").kind == "capture"

    def test_capture_variables(self):
        node = parse_regex("x{a+} b y{c}")
        assert node.variables() == {"x", "y"}

    def test_errors(self):
        for bad in ["", "(", ")", "a)", "x{", "[]", "*a", "a|*"]:
            with pytest.raises(RegexSyntaxError):
                parse_regex(bad)


# --------------------------------------------------------------------------- regex -> WVA
def reference_boolean_match(pattern: str, word: str) -> bool:
    """Use Python's re as an oracle for capture-free patterns (full match)."""
    translated = pattern.replace(" ", "")
    return re.fullmatch(translated, word) is not None


class TestRegexCompilation:
    @pytest.mark.parametrize(
        "pattern",
        ["a", "ab", "a|b", "a*", "(ab)*", "a(b|c)*a", "[ab]+c?", ".*", "a.c"],
    )
    def test_boolean_semantics_match_python_re(self, pattern):
        wva = regex_to_wva(pattern, ALPHABET)
        rng = random.Random(0)
        for _ in range(60):
            length = rng.randint(0, 6)
            word = "".join(rng.choice(ALPHABET) for _ in range(length))
            expected = reference_boolean_match(pattern, word)
            got = wva.accepts(list(word), {}) if word else bool(set(wva.initial) & set(wva.final))
            assert got == expected, (pattern, word)

    def test_capture_semantics_single_position(self):
        wva = regex_to_wva(".* x{a} .*", ALPHABET)
        word = list("babca")
        expected = {frozenset({("x", 1)}), frozenset({("x", 4)})}
        assert wva.satisfying_assignments(word) == expected

    def test_capture_semantics_block(self):
        wva = regex_to_wva("b x{a+} b", ("a", "b"))
        word = list("baab")
        assert wva.satisfying_assignments(word) == {frozenset({("x", 1), ("x", 2)})}

    def test_two_variables(self):
        wva = regex_to_wva("x{a} .* y{b}", ("a", "b"))
        word = list("ab")
        assert wva.satisfying_assignments(word) == {frozenset({("x", 0), ("y", 1)})}

    def test_negated_class(self):
        wva = regex_to_wva("[^a]+", ALPHABET)
        assert wva.accepts(list("bcb"), {})
        assert not wva.accepts(list("bca"), {})


# --------------------------------------------------------------------------- Spanner API
class TestSpanner:
    def test_matches_and_spans(self):
        spanner = Spanner(".* x{ab} .*", ("a", "b", "c"))
        matches = spanner.matches(list("cabab"))
        spans = sorted(Spanner.spans(m)["x"] for m in matches)
        assert spans == [(1, 3), (3, 5)]
        assert spanner.variables() == {"x"}

    def test_enumerator_agrees_with_oracle(self):
        spanner = Spanner(".* x{a+} .*", ("a", "b"))
        document = list("abaab")
        # Spanner.enumerator is the deprecated entry point (Engine.add_word
        # is the replacement); this is its one sanctioned, warning-checked use.
        with pytest.deprecated_call():
            enumerator = spanner.enumerator(document)
        expected = spanner.matches(document)
        produced = set(enumerator.assignments_by_index())
        assert produced == expected


# --------------------------------------------------------------------------- WordRuntime
class TestWordRuntime:
    def test_matches_oracle_static(self):
        automaton = simple_wva()
        word = list("abcab")
        enumerator = WordRuntime(word, automaton)
        produced = set(enumerator.assignments_by_index())
        assert produced == automaton.satisfying_assignments(word)
        assert len(list(enumerator.assignments())) == len(produced)

    def test_empty_word_rejected(self):
        with pytest.raises(InvalidEditError):
            WordRuntime([], simple_wva())

    def test_stats(self):
        enumerator = WordRuntime(list("abcabc"), simple_wva())
        stats = enumerator.stats()
        assert stats.tree_size == 6
        assert stats.circuit_width >= 1

    def test_replace_insert_delete(self):
        automaton = simple_wva()
        enumerator = WordRuntime(list("bbb"), automaton)
        assert enumerator.count() == 0
        # replace the middle letter by 'a'
        middle = enumerator.position_ids()[1]
        enumerator.replace(middle, "a")
        assert enumerator.count() == 1
        # insert an 'a' at the front and after the middle
        enumerator.insert_after(None, "a")
        stats = enumerator.insert_after(middle, "a")
        assert stats.new_position_id is not None
        assert enumerator.count() == 3
        assert "".join(enumerator.word()) == "abaab"
        # delete the middle 'a'
        enumerator.delete(middle)
        assert "".join(enumerator.word()) == "abab"
        assert enumerator.count() == 2

    def test_random_update_sequences_match_oracle(self):
        automaton = simple_wva()
        rng = random.Random(3)
        word = [rng.choice(ALPHABET) for _ in range(8)]
        enumerator = WordRuntime(word, automaton)
        for _ in range(60):
            ids = enumerator.position_ids()
            action = rng.choice(["replace", "insert", "delete"])
            if action == "replace":
                enumerator.replace(rng.choice(ids), rng.choice(ALPHABET))
            elif action == "insert":
                anchor = rng.choice([None] + ids)
                enumerator.insert_after(anchor, rng.choice(ALPHABET))
            elif action == "delete" and len(ids) > 1:
                enumerator.delete(rng.choice(ids))
            current = enumerator.word()
            expected = automaton.satisfying_assignments(current)
            assert set(enumerator.assignments_by_index()) == expected

    def test_delete_last_letter_rejected(self):
        enumerator = WordRuntime(["a"], simple_wva())
        with pytest.raises(InvalidEditError):
            enumerator.delete(enumerator.position_ids()[0])

    def test_word_term_height_stays_logarithmic(self):
        automaton = simple_wva()
        enumerator = WordRuntime(list("ab"), automaton)
        last = enumerator.position_ids()[-1]
        for _ in range(300):
            stats = enumerator.insert_after(last, "b")
            last = stats.new_position_id
        assert enumerator.term.height() <= enumerator.term.height_budget(enumerator.term.size())

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=1000))
    def test_property_static_words(self, length, seed):
        rng = random.Random(seed)
        word = [rng.choice(ALPHABET) for _ in range(length)]
        automaton = simple_wva()
        enumerator = WordRuntime(word, automaton)
        assert set(enumerator.assignments_by_index()) == automaton.satisfying_assignments(word)

    def test_word_enumerator_shim_is_deprecated(self):
        """The one sanctioned use of the legacy name: it must warn, and be
        the same machinery as WordRuntime."""
        with pytest.deprecated_call():
            shim = WordEnumerator(list("aba"), simple_wva())
        assert isinstance(shim, WordRuntime)
        assert shim.count() == 2
