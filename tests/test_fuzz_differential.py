"""Randomized differential test harness (seeded, no external services).

Every structural rewrite of the enumeration hot path — most recently the
mask-native provenance representation of Algorithm 2 — is pinned here against
two independent sources of truth:

* the brute-force assignment-set oracle of :mod:`repro.automata.brute_force`,
  which mirrors Definition 3.3 and shares no code with the enumeration
  machinery, and
* the agreement of the three relation backends (``pairs``, ``matrix``,
  ``bitset``) with each other, before and after every edit of a random edit
  sequence (the ``bitset`` backend takes the mask-native fast path, the other
  two the generic relation-based path, so this is also a fast-vs-reference
  differential).

Case accounting: ``TestEndToEndDifferential`` runs ``N_SCENARIOS`` random
(tree, query, edit-sequence) scenarios with ``N_EDITS`` edits each, checking
all three backends at every checkpoint — ``N_SCENARIOS × (N_EDITS + 1) × 3``
randomized backend-checkpoint cases (288 with the defaults, ≥ 200 required).
``TestCircuitLevelDifferential`` adds circuit-level cases comparing the
mask-native iterator against the generic path, provenance included.
"""

from __future__ import annotations

import random

import pytest

from helpers import random_binary_tva, random_binary_tree, random_unranked_tva
from repro.automata.brute_force import (
    binary_satisfying_assignments,
    unranked_satisfying_assignments,
)
from repro.automata.homogenize import homogenize
from repro.circuits.build import build_assignment_circuit
from repro.core.enumerator import TreeEnumerator
from repro.enumeration.box_enum import naive_box_enum
from repro.enumeration.duplicate_free import (
    _enumerate_generic,
    enumerate_boxed_masks,
    enumerate_boxed_set,
)
from repro.enumeration.index import build_index
from repro.enumeration.relations import iter_bits
from repro.trees.edits import random_edit_sequence
from repro.trees.generators import random_tree

BACKENDS = ("pairs", "matrix", "bitset")
LABELS = ("a", "b", "c")

N_SCENARIOS = 24
N_EDITS = 3


def _scenario(case: int):
    """A reproducible random (tree, query, edits) triple for one case seed."""
    rng = random.Random(7000 + case)
    n_vars = rng.choice((1, 1, 2))
    query = random_unranked_tva(
        rng.randrange(10_000),
        n_states=rng.choice((2, 3)),
        variables=("x", "y")[:n_vars],
        initial_density=rng.uniform(0.3, 0.7),
        delta_density=rng.uniform(0.2, 0.5),
    )
    tree = random_tree(rng.randint(4, 10), LABELS, seed=rng.randrange(10_000))
    edits = random_edit_sequence(tree, LABELS, N_EDITS, seed=rng.randrange(10_000))
    return tree, query, edits


class TestEndToEndDifferential:
    @pytest.mark.parametrize("case", range(N_SCENARIOS))
    def test_backends_match_oracle_under_edits(self, case):
        tree, query, edits = _scenario(case)
        reference = tree.copy()
        enumerators = {
            backend: TreeEnumerator(tree, query, relation_backend=backend)
            for backend in BACKENDS
        }

        def check(stage):
            expected = unranked_satisfying_assignments(query, reference)
            for backend, enumerator in enumerators.items():
                produced = list(enumerator.assignments())
                assert len(produced) == len(set(produced)), (
                    f"case {case}, {stage}: duplicate answers on {backend}"
                )
                assert set(produced) == expected, (
                    f"case {case}, {stage}: {backend} disagrees with the oracle"
                )

        check("initial")
        for step, edit in enumerate(edits):
            edit.apply_to_tree(reference)
            for enumerator in enumerators.values():
                enumerator.apply(edit)
            check(f"after edit {step} ({edit.describe()})")


class TestCircuitLevelDifferential:
    """Mask-native Algorithm 2 vs the generic path, provenance included."""

    @pytest.mark.parametrize("case", range(15))
    def test_mask_path_matches_generic_with_provenance(self, case):
        rng = random.Random(9000 + case)
        automaton = homogenize(
            random_binary_tva(
                rng.randrange(10_000),
                n_states=rng.choice((2, 3)),
                variables=("x", "y")[: rng.choice((1, 1, 2))],
            )
        )
        # Trees are kept small: the generic reference path is enumerated with
        # the *naive* box enumeration for every box of the circuit, and the
        # captured sets grow exponentially with the number of leaves.
        tree = random_binary_tree(rng.randrange(10_000), rng.randint(3, 6))
        circuit = build_assignment_circuit(tree, automaton)
        build_index(circuit)
        oracle = binary_satisfying_assignments(automaton, tree)
        for box in circuit.boxes():
            if not box.union_gates:
                continue
            gamma = list(box.union_gates)
            generic = {
                (assignment, frozenset(id(g) for g in provenance))
                for assignment, provenance in _enumerate_generic(gamma, naive_box_enum)
            }
            fast = {
                (assignment, frozenset(id(gamma[p]) for p in iter_bits(mask)))
                for assignment, mask in enumerate_boxed_masks(gamma)
            }
            assert fast == generic
            public = {
                (assignment, frozenset(id(g) for g in provenance))
                for assignment, provenance in enumerate_boxed_set(gamma)
            }
            assert public == generic

    @pytest.mark.parametrize("case", range(8))
    def test_root_enumeration_matches_dp_oracle(self, case):
        rng = random.Random(9900 + case)
        automaton = homogenize(
            random_binary_tva(rng.randrange(10_000), n_states=3, variables=("x",))
        )
        tree = random_binary_tree(rng.randrange(10_000), rng.randint(4, 10))
        circuit = build_assignment_circuit(tree, automaton)
        build_index(circuit)
        from repro.enumeration.assignment_iter import CircuitEnumerator

        produced = list(CircuitEnumerator(circuit, build=False).assignments())
        assert len(produced) == len(set(produced))
        assert set(produced) == binary_satisfying_assignments(automaton, tree)
