"""Randomized differential test harness (seeded, no external services).

Every structural rewrite of the enumeration hot path — most recently the
mask-native provenance representation of Algorithm 2 — is pinned here against
two independent sources of truth:

* the brute-force assignment-set oracle of :mod:`repro.automata.brute_force`,
  which mirrors Definition 3.3 and shares no code with the enumeration
  machinery, and
* the agreement of the three relation backends (``pairs``, ``matrix``,
  ``bitset``) with each other, before and after every edit of a random edit
  sequence (the ``bitset`` backend takes the mask-native fast path, the other
  two the generic relation-based path, so this is also a fast-vs-reference
  differential).

Case accounting: ``TestEndToEndDifferential`` runs ``N_SCENARIOS`` random
(tree, query, edit-sequence) scenarios with ``N_EDITS`` edits each, checking
all three backends at every checkpoint — ``N_SCENARIOS × (N_EDITS + 1) × 3``
randomized backend-checkpoint cases (288 with the defaults, ≥ 200 required).
``TestCircuitLevelDifferential`` adds circuit-level cases comparing the
mask-native iterator against the generic path, provenance included.
``TestShardedDifferential`` pins the pipelined shard protocol (PR 5):
randomized ``Engine(workers=2–3)`` serving scenarios — several documents,
standing queries, interleaved batched edits, concurrent streams and cursor
pages — whose full transcripts must be byte-identical to a single-process
engine, under both the ``fork`` and ``spawn`` start methods.
``TestFaultInjectedDifferential`` (PR 6) runs the same kind of schedule on a
replicated fleet (``workers=3, replicas=2``) with exactly one injected fault
per scenario — a SIGKILL'd worker or a one-shot worker hang the deadline
machinery must catch — and requires the transcript to stay byte-identical to
a fault-free single-process oracle.

Environment knobs (used by the scheduled extended-fuzz CI job):

* ``REPRO_FUZZ_SCENARIOS`` — end-to-end scenario count (default 24);
* ``REPRO_FUZZ_SHARDED_SCENARIOS`` — sharded fork-scenario count (default 4;
  spawn runs a third of it, minimum one, because each spawn worker boots a
  fresh interpreter);
* ``REPRO_FUZZ_FAULT_SCENARIOS`` — fault-injected replicated scenario count
  (default 3);
* ``REPRO_FUZZ_SEED`` — base seed offset, rotated by the scheduled job so
  every week explores fresh cases;
* ``REPRO_FUZZ_ARTIFACTS`` — when set, a failing sharded scenario is
  *minimized* (greedy op-dropping while the divergence persists) and written
  to ``tests/fuzz_artifacts/`` as a self-contained JSON repro.

(The separate ``REPRO_FAULTS`` engine knob composes with the plain sharded
differential: CI runs a leg with blanket slow-reply noise injected into
every worker, which must never alter a transcript.)
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import sys

import pytest

from helpers import random_binary_tva, random_binary_tree, random_unranked_tva
from repro.automata.brute_force import (
    binary_satisfying_assignments,
    unranked_satisfying_assignments,
)
from repro.automata.homogenize import homogenize
from repro.circuits.build import build_assignment_circuit
from repro.core.enumerator import TreeRuntime
from repro.enumeration.box_enum import naive_box_enum
from repro.enumeration.duplicate_free import (
    _enumerate_generic,
    enumerate_boxed_masks,
    enumerate_boxed_set,
)
from repro.enumeration.index import build_index
from repro.enumeration.relations import iter_bits
from repro.trees.edits import random_edit_sequence
from repro.trees.generators import random_tree

BACKENDS = ("pairs", "matrix", "bitset", "numpy")
LABELS = ("a", "b", "c")

N_SCENARIOS = int(os.environ.get("REPRO_FUZZ_SCENARIOS", "24"))
N_EDITS = 3
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
N_SHARDED = int(os.environ.get("REPRO_FUZZ_SHARDED_SCENARIOS", "4"))
N_FAULT = int(os.environ.get("REPRO_FUZZ_FAULT_SCENARIOS", "3"))
#: deadline of the fault-injected replicated engine: long enough that no
#: healthy op ever trips it, short enough that each injected hang costs the
#: suite about this many seconds
FAULT_DEADLINE = 2.0
ARTIFACT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fuzz_artifacts")


def _scenario(case: int):
    """A reproducible random (tree, query, edits) triple for one case seed."""
    rng = random.Random(7000 + FUZZ_SEED + case)
    n_vars = rng.choice((1, 1, 2))
    query = random_unranked_tva(
        rng.randrange(10_000),
        n_states=rng.choice((2, 3)),
        variables=("x", "y")[:n_vars],
        initial_density=rng.uniform(0.3, 0.7),
        delta_density=rng.uniform(0.2, 0.5),
    )
    tree = random_tree(rng.randint(4, 10), LABELS, seed=rng.randrange(10_000))
    edits = random_edit_sequence(tree, LABELS, N_EDITS, seed=rng.randrange(10_000))
    return tree, query, edits


class TestEndToEndDifferential:
    @pytest.mark.parametrize("case", range(N_SCENARIOS))
    def test_backends_match_oracle_under_edits(self, case):
        tree, query, edits = _scenario(case)
        reference = tree.copy()
        enumerators = {
            backend: TreeRuntime(tree, query, relation_backend=backend)
            for backend in BACKENDS
        }

        def check(stage):
            expected = unranked_satisfying_assignments(query, reference)
            for backend, enumerator in enumerators.items():
                produced = list(enumerator.assignments())
                assert len(produced) == len(set(produced)), (
                    f"case {case}, {stage}: duplicate answers on {backend}"
                )
                assert set(produced) == expected, (
                    f"case {case}, {stage}: {backend} disagrees with the oracle"
                )

        check("initial")
        for step, edit in enumerate(edits):
            edit.apply_to_tree(reference)
            for enumerator in enumerators.values():
                enumerator.apply(edit)
            check(f"after edit {step} ({edit.describe()})")


class TestCircuitLevelDifferential:
    """Mask-native Algorithm 2 vs the generic path, provenance included."""

    @pytest.mark.parametrize("case", range(15))
    def test_mask_path_matches_generic_with_provenance(self, case):
        rng = random.Random(9000 + FUZZ_SEED + case)
        automaton = homogenize(
            random_binary_tva(
                rng.randrange(10_000),
                n_states=rng.choice((2, 3)),
                variables=("x", "y")[: rng.choice((1, 1, 2))],
            )
        )
        # Trees are kept small: the generic reference path is enumerated with
        # the *naive* box enumeration for every box of the circuit, and the
        # captured sets grow exponentially with the number of leaves.
        tree = random_binary_tree(rng.randrange(10_000), rng.randint(3, 6))
        circuit = build_assignment_circuit(tree, automaton)
        build_index(circuit)
        oracle = binary_satisfying_assignments(automaton, tree)
        for box in circuit.boxes():
            if not box.union_gates:
                continue
            gamma = list(box.union_gates)
            generic = {
                (assignment, frozenset(id(g) for g in provenance))
                for assignment, provenance in _enumerate_generic(gamma, naive_box_enum)
            }
            fast = {
                (assignment, frozenset(id(gamma[p]) for p in iter_bits(mask)))
                for assignment, mask in enumerate_boxed_masks(gamma)
            }
            assert fast == generic
            public = {
                (assignment, frozenset(id(g) for g in provenance))
                for assignment, provenance in enumerate_boxed_set(gamma)
            }
            assert public == generic

    @pytest.mark.parametrize("case", range(8))
    def test_root_enumeration_matches_dp_oracle(self, case):
        rng = random.Random(9900 + FUZZ_SEED + case)
        automaton = homogenize(
            random_binary_tva(rng.randrange(10_000), n_states=3, variables=("x",))
        )
        tree = random_binary_tree(rng.randrange(10_000), rng.randint(4, 10))
        circuit = build_assignment_circuit(tree, automaton)
        build_index(circuit)
        from repro.enumeration.assignment_iter import CircuitEnumerator

        produced = list(CircuitEnumerator(circuit, build=False).assignments())
        assert len(produced) == len(set(produced))
        assert set(produced) == binary_satisfying_assignments(automaton, tree)


# ===================================================== sharded differential
def _ordered_answers(answers):
    """Order-preserving canonical text of an answer sequence.

    Unlike a sorted canonicalization, this pins the *order* the engine
    produced the answers in — the sharded engine must reproduce the
    single-process stream byte for byte, not just as a set.
    """
    return json.dumps(
        [sorted([str(var), pos] for var, pos in answer) for answer in answers],
        sort_keys=True,
        separators=(",", ":"),
    )


def _sharded_scenario(case_seed: int):
    """Build one reproducible sharded serving scenario from its seed.

    Returns ``(workers, trees, queries, doc_query, ops)`` where ``ops`` is a
    replayable schedule of ``("edits", doc, batch)``, ``("page", doc)`` and
    ``("stream", doc, n)`` events.  Edit batches are generated against
    reference copies that evolve alongside, so every edit is valid at its
    point in the schedule whatever engine replays it.
    """
    rng = random.Random(31000 + case_seed)
    workers = rng.choice((2, 3))
    n_docs = rng.randint(3, 5)
    queries = [
        random_unranked_tva(
            rng.randrange(10_000),
            n_states=rng.choice((2, 3)),
            variables=("x", "y")[: rng.choice((1, 1, 2))],
            initial_density=rng.uniform(0.3, 0.7),
            delta_density=rng.uniform(0.2, 0.5),
        )
        for _ in range(rng.choice((1, 2)))
    ]
    trees = [
        random_tree(rng.randint(5, 10), LABELS, seed=rng.randrange(10_000))
        for _ in range(n_docs)
    ]
    doc_query = [rng.randrange(len(queries)) for _ in range(n_docs)]
    references = [tree.copy() for tree in trees]
    ops = []
    for _ in range(rng.randint(10, 16)):
        kind = rng.choice(("edits", "page", "page", "stream", "stream"))
        doc = rng.randrange(n_docs)
        if kind == "edits":
            batch = random_edit_sequence(
                references[doc], LABELS, rng.randint(1, 2), seed=rng.randrange(10_000)
            )
            for edit in batch:
                edit.apply_to_tree(references[doc])
            ops.append(("edits", doc, batch))
        elif kind == "page":
            ops.append(("page", doc))
        else:
            ops.append(("stream", doc, rng.randint(1, 6)))
    return workers, trees, queries, doc_query, ops


def _fault_scenario(case_seed: int):
    """A sharded scenario plus exactly **one** injected fault.

    The fault is either a parent-side ``("kill", shard)`` op spliced into the
    schedule (SIGKILL mid-workload) or a worker-side one-shot hang rule (the
    deadline machinery must kill and fail over).  One fault per scenario is
    the contract under test — ``replicas=2`` survives any *single* shard loss
    with zero document/answer loss; two concurrent losses may legitimately
    lose cursors.  Returns ``(workers, trees, queries, doc_query, ops,
    fault_plan)``.
    """
    _workers, trees, queries, doc_query, ops = _sharded_scenario(case_seed)
    workers = 3  # replicas=2 always leaves a survivor to fail over to
    rng = random.Random(47000 + case_seed)
    ops = list(ops)
    fault_plan = None
    if rng.random() < 0.5:
        ops.insert(rng.randrange(len(ops) + 1), ("kill", rng.randrange(workers)))
    else:
        # a concrete (shard, op, nth) so the one-shot rule fires on at most
        # one worker: hang exactly once, somewhere plausible in the schedule
        target_op = rng.choice(("edits", "page", "add_batch", "stream_chunk"))
        fault_plan = f"{rng.randrange(workers)}:{target_op}:{rng.randrange(2)}:hang"
    return workers, trees, queries, doc_query, ops, fault_plan


def _replay_ops(engine, trees, queries, doc_query, ops, keep=None):
    """Replay a scenario schedule on one (possibly remote) engine facade.

    The transcript records every observable: epochs, per-batch rebuild and
    cursor-resume/invalidate counts, page contents/offsets/exhaustion,
    cursor invalidation reports, stream segments in production order with
    their end status, and the final answers + epoch of every document.
    """
    from repro import CursorInvalidatedError, ReproError, StaleIteratorError

    transcript = []
    docs = engine.add_documents(
        trees,
        queries=[queries[index] for index in doc_query],
        doc_ids=list(range(len(trees))),
    )
    pages = {}
    streams = {}
    for op_index, op in enumerate(ops):
        if keep is not None and op_index not in keep:
            continue
        kind, doc_index = op[0], op[1]
        if kind == "kill":
            # Fault-injection schedules only: SIGKILL one worker of the
            # replicated engine, mid-workload.  A no-op on the
            # single-process oracle — the transcripts must stay
            # byte-identical regardless.  A RemoteEngine points
            # ``_kill_target`` at the server-side engine, so the kill
            # lands on the real worker fleet while staying invisible to
            # the network client.
            target = getattr(engine, "_kill_target", engine)
            if target.workers:
                process = target._pool._shards[op[1]].process
                process.kill()
                process.join(timeout=10.0)
            continue
        doc = docs[doc_index]
        if kind == "edits":
            try:
                report = doc.apply_edits(op[2])
            except ReproError as exc:
                # Minimization may drop a batch whose Insert created the
                # node a later batch edits; the failure is deterministic
                # (both engines replay the same schedule), so record it
                # as a transcript event instead of aborting the replay.
                transcript.append(
                    ("edits-error", doc_index, type(exc).__name__, doc.epoch)
                )
                continue
            transcript.append(
                (
                    "edits",
                    doc_index,
                    report.epoch,
                    report.boxes_rebuilt,
                    report.cursors_resumed,
                    report.cursors_invalidated,
                )
            )
        elif kind == "page":
            previous = pages.get(doc_index)
            try:
                if previous is None or previous.exhausted:
                    page = doc.page(page_size=3)
                else:
                    page = doc.page(cursor=previous)
                transcript.append(
                    (
                        "page",
                        doc_index,
                        _ordered_answers(page.answers),
                        page.offset,
                        page.exhausted,
                        page.epoch,
                    )
                )
                pages[doc_index] = page
            except CursorInvalidatedError as exc:
                transcript.append(
                    ("cursor-invalidated", doc_index, exc.report.answers_delivered)
                )
                pages[doc_index] = None
        else:
            wanted = op[2]
            iterator = streams.get(doc_index)
            if iterator is None:
                iterator = iter(doc.stream())
                streams[doc_index] = iterator
            collected = []
            status = "open"
            try:
                for _ in range(wanted):
                    collected.append(next(iterator))
            except StopIteration:
                status = "end"
                streams[doc_index] = None
            except StaleIteratorError:
                status = "stale"
                streams[doc_index] = None
            transcript.append(
                ("stream", doc_index, _ordered_answers(collected), status)
            )
    for doc_index, doc in enumerate(docs):
        transcript.append(
            ("final", doc_index, _ordered_answers(doc.stream()), doc.epoch)
        )
    return transcript


def _replay_transcript(trees, queries, doc_query, ops, keep=None, **engine_kwargs):
    """Replay a scenario schedule on one local engine; full transcript."""
    from repro import Engine

    with Engine(**engine_kwargs) as engine:
        return _replay_ops(engine, trees, queries, doc_query, ops, keep=keep)


def _replay_transcript_network(trees, queries, doc_query, ops, keep=None, **engine_kwargs):
    """Replay a scenario through a real TCP connection to a served engine.

    The schedule runs on a :class:`repro.RemoteEngine` talking to an
    :class:`repro.EngineServer` over loopback TCP, with the server-side
    engine built from ``engine_kwargs`` (typically sharded, possibly
    replicated + fault-injected).  The transcript must be byte-identical
    to the in-process one — answers, epochs, cursor invalidations, stream
    staleness and all.
    """
    from repro import Engine
    from repro.net import EngineServer, RemoteEngine

    with Engine(**engine_kwargs) as engine:
        server = EngineServer(engine).start()
        try:
            with RemoteEngine(server.address) as remote:
                remote._kill_target = engine  # kill ops land on the real fleet
                return _replay_ops(remote, trees, queries, doc_query, ops, keep=keep)
        finally:
            server.stop()


def _transcripts(case_seed: int, start_method, keep=None, fault=False):
    if fault:
        workers, trees, queries, doc_query, ops, fault_plan = _fault_scenario(case_seed)
        sharded = _replay_transcript(
            trees, queries, doc_query, ops, keep=keep,
            workers=workers, replicas=2, deadline=FAULT_DEADLINE,
            fault_plan=fault_plan, start_method=start_method,
        )
    else:
        workers, trees, queries, doc_query, ops = _sharded_scenario(case_seed)
        sharded = _replay_transcript(
            trees, queries, doc_query, ops, keep=keep,
            workers=workers, start_method=start_method,
        )
    single = _replay_transcript(trees, queries, doc_query, ops, keep=keep)
    return sharded, single, len(ops)


def _minimize_failing_ops(
    case_seed: int, start_method, n_ops: int, budget: int = 40, fault=False
):
    """Greedy ddmin-lite: drop ops one by one while the divergence persists."""
    keep = list(range(n_ops))
    changed = True
    while changed and budget > 0:
        changed = False
        for op_index in list(keep):
            if budget <= 0:
                break
            trial = [k for k in keep if k != op_index]
            budget -= 1
            sharded, single, _ = _transcripts(
                case_seed, start_method, keep=trial, fault=fault
            )
            if sharded != single:
                keep = trial
                changed = True
    return keep


def _write_repro_artifact(
    case_seed: int, start_method, keep, sharded, single, fault=False
) -> str:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    if fault:
        workers, trees, _queries, doc_query, ops, fault_plan = _fault_scenario(case_seed)
    else:
        workers, trees, _queries, doc_query, ops = _sharded_scenario(case_seed)
        fault_plan = None
    first_diff = next(
        (i for i, (a, b) in enumerate(zip(sharded, single)) if a != b),
        min(len(sharded), len(single)),
    )
    tag = "fault_" if fault else ""
    path = os.path.join(
        ARTIFACT_DIR, f"sharded_{tag}case_{case_seed}_{start_method}.json"
    )
    with open(path, "w", encoding="utf8") as handle:
        json.dump(
            {
                "case_seed": case_seed,
                "start_method": start_method,
                "workers": workers,
                "fault": fault,
                "fault_plan": fault_plan,
                "doc_sizes": [tree.size() for tree in trees],
                "doc_query": doc_query,
                "kept_op_indices": keep,
                "kept_ops": [
                    (op[0], op[1]) + ((len(op[2]),) if op[0] == "edits" else op[2:])
                    for i, op in enumerate(ops)
                    if i in set(keep)
                ],
                "first_divergent_entry": first_diff,
                "sharded_entry": sharded[first_diff] if first_diff < len(sharded) else None,
                "single_entry": single[first_diff] if first_diff < len(single) else None,
                "repro": (
                    "PYTHONPATH=src python -c \"import sys; sys.path.insert(0, 'tests'); "
                    "import test_fuzz_differential as f; "
                    f"print(f._transcripts({case_seed}, {start_method!r}, keep={keep}, "
                    f"fault={fault})[0])\""
                ),
            },
            handle,
            indent=2,
        )
    return path


def _sharded_cases():
    fork_cases = [("fork", index) for index in range(N_SHARDED)]
    spawn_cases = [("spawn", index) for index in range(max(1, N_SHARDED // 3))]
    return fork_cases + spawn_cases


class TestShardedDifferential:
    """Pipelined shard protocol vs the single-process oracle, transcript-exact."""

    @pytest.mark.parametrize("start_method,case", _sharded_cases())
    def test_sharded_transcript_matches_single_process(self, start_method, case):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {start_method} unavailable on {sys.platform}")
        case_seed = FUZZ_SEED + case
        sharded, single, n_ops = _transcripts(case_seed, start_method)
        if sharded != single and os.environ.get("REPRO_FUZZ_ARTIFACTS"):
            keep = _minimize_failing_ops(case_seed, start_method, n_ops)
            sharded_min, single_min, _ = _transcripts(case_seed, start_method, keep=keep)
            path = _write_repro_artifact(
                case_seed, start_method, keep, sharded_min, single_min
            )
            pytest.fail(
                f"sharded transcript diverged from single-process "
                f"(seed {case_seed}, {start_method}); minimized repro: {path}"
            )
        assert sharded == single


class TestFaultInjectedDifferential:
    """The replicated fleet under injected kills and hangs, transcript-exact.

    Each scenario runs ``Engine(workers=3, replicas=2, deadline=...)`` through
    a randomized serving schedule with exactly one injected fault — a
    SIGKILL'd worker mid-workload or a one-shot worker hang the deadline
    machinery must catch — and requires the full transcript (epochs, page
    bytes, cursor invalidations, stream segments, final answers) to stay
    byte-identical to a fault-free single-process engine: a single shard
    loss may cost latency, never an answer.
    """

    @pytest.mark.timeout(300)
    @pytest.mark.parametrize("case", range(N_FAULT))
    def test_faulted_replicated_transcript_matches_single_process(self, case):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip(f"fork start method unavailable on {sys.platform}")
        case_seed = FUZZ_SEED + case
        sharded, single, n_ops = _transcripts(case_seed, "fork", fault=True)
        if sharded != single and os.environ.get("REPRO_FUZZ_ARTIFACTS"):
            keep = _minimize_failing_ops(case_seed, "fork", n_ops, fault=True)
            sharded_min, single_min, _ = _transcripts(
                case_seed, "fork", keep=keep, fault=True
            )
            path = _write_repro_artifact(
                case_seed, "fork", keep, sharded_min, single_min, fault=True
            )
            pytest.fail(
                f"fault-injected replicated transcript diverged from "
                f"single-process (seed {case_seed}); minimized repro: {path}"
            )
        assert sharded == single


# ===================================================== network differential
N_NET = int(os.environ.get("REPRO_FUZZ_NET_SCENARIOS", "2"))


class TestNetworkDifferential:
    """The network serving tier vs the in-process oracle, transcript-exact.

    The same randomized serving schedules as ``TestShardedDifferential``,
    replayed through a :class:`repro.RemoteEngine` over real loopback TCP
    against an :class:`repro.EngineServer` fronting a sharded engine — so
    the differential covers the wire codec, the framing, the demultiplexer
    and the credit-window streaming on top of everything below them.  The
    fault leg additionally SIGKILLs a worker of the *server-side* replicated
    fleet mid-schedule; the client must not be able to tell.
    """

    @pytest.mark.parametrize("case", range(N_NET))
    def test_network_transcript_matches_single_process(self, case):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip(f"fork start method unavailable on {sys.platform}")
        case_seed = FUZZ_SEED + case
        workers, trees, queries, doc_query, ops = _sharded_scenario(case_seed)
        networked = _replay_transcript_network(
            trees, queries, doc_query, ops, workers=workers, start_method="fork"
        )
        single = _replay_transcript(trees, queries, doc_query, ops)
        assert networked == single

    @pytest.mark.timeout(300)
    def test_network_faulted_transcript_matches_single_process(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip(f"fork start method unavailable on {sys.platform}")
        case_seed = FUZZ_SEED
        workers, trees, queries, doc_query, ops, fault_plan = _fault_scenario(case_seed)
        networked = _replay_transcript_network(
            trees, queries, doc_query, ops,
            workers=workers, replicas=2, deadline=FAULT_DEADLINE,
            fault_plan=fault_plan, start_method="fork",
        )
        single = _replay_transcript(trees, queries, doc_query, ops)
        assert networked == single

    @pytest.mark.timeout(120)
    def test_midstream_server_shard_kill_is_invisible_to_client(self):
        """SIGKILL the replica serving a live stream, mid-stream, behind the
        server's back: the client's answer sequence must be unaffected.

        The document is large enough (> one shard stream chunk) that the
        engine-side stream still needs the dead worker after the kill, so
        the replicated failover machinery (reopen on a survivor, replay
        skip) actually runs — under a network client none the wiser.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip(f"fork start method unavailable on {sys.platform}")
        from repro import Engine, queries as Q
        from repro.net import EngineServer, RemoteEngine
        from repro.trees.unranked import UnrankedTree

        # 2000 selected nodes: more than the worker's whole initial credit
        # window can push ahead (4 chunks x 256 answers), so the engine-side
        # stream is guaranteed to still need the worker when the kill lands
        # (with only ~10 answers consumed no credit grant has gone out yet).
        tree = UnrankedTree.from_nested(("b", ["a"] * 2000))
        query = Q.select_labeled("a")
        with Engine(workers=3, replicas=2, start_method="fork") as engine:
            with Engine() as oracle_engine:
                oracle = list(oracle_engine.add_tree(tree.copy(), query).stream())
            server = EngineServer(engine).start()
            try:
                # A tiny client chunk keeps the server-side pump from
                # prefetching the whole stream before the kill lands.
                with RemoteEngine(server.address, stream_chunk_size=1) as remote:
                    doc = remote.add_tree(tree.copy(), query)
                    iterator = iter(doc.stream())
                    collected = [next(iterator) for _ in range(10)]
                    serving = [
                        shard
                        for shard, entry in enumerate(engine._pool._shards)
                        if entry.streams
                    ]
                    assert serving, "no shard-side stream open mid-consumption"
                    process = engine._pool._shards[serving[0]].process
                    process.kill()
                    process.join(timeout=10.0)
                    collected.extend(iterator)
                    assert _ordered_answers(collected) == _ordered_answers(oracle)
                    assert engine.failovers_total >= 1
            finally:
                server.stop()

    def test_slow_consumer_shrinks_client_credit_window(self):
        """A consumer that lets pushed chunks pile up client-side must see
        its adaptive credit window shrink (served answers unaffected)."""
        from repro import Engine, queries as Q
        from repro.engine.sharding import AdaptiveCredit
        from repro.net import EngineServer, RemoteEngine
        from repro.trees.unranked import UnrankedTree

        tree = UnrankedTree.from_nested(("b", ["a"] * 40))
        query = Q.select_labeled("a")
        with Engine() as engine:
            oracle = list(engine.add_tree(tree.copy(), query).stream())
            server = EngineServer(engine).start()
            try:
                with RemoteEngine(server.address, stream_chunk_size=1) as remote:
                    doc = remote.add_tree(tree.copy(), query)
                    iterator = iter(doc.stream())
                    collected = []
                    for _ in range(len(oracle)):
                        # Interleaved calls drain pushed chunks into the
                        # stream buffer faster than the consumer pops them —
                        # the network shape of a slow consumer.
                        remote.ping()
                        collected.append(next(iterator))
                    assert _ordered_answers(collected) == _ordered_answers(oracle)
                    stats = remote.net_stats()
                    assert stats["credit_shrunk"] >= 1
                    assert remote.credit.window == AdaptiveCredit.MIN_WINDOW
            finally:
                server.stop()


# ================================================= cursor-stability differential
N_CURSOR = int(os.environ.get("REPRO_FUZZ_CURSOR_SCENARIOS", "12"))
N_CURSOR_BACKENDS = int(os.environ.get("REPRO_FUZZ_CURSOR_BACKEND_SCENARIOS", "2"))


def _cursor_scenario(case_seed: int):
    """A relabel-heavy serving schedule exercising cursor resume paths.

    Like :func:`_sharded_scenario`, but pages are opened before the edits
    start and every other edit batch is a *guaranteed no-op relabel* (a node
    relabelled to its current label), so the schedule deterministically
    contains trunk rebuilds that are slot-for-slot fingerprint-equal — the
    case the fine-grained dependency test must let cursors survive.
    """
    from repro.trees.edits import Relabel

    rng = random.Random(61000 + case_seed)
    n_docs = 2
    # Regenerate until every document has a healthy answer count: a cursor
    # exhausted by its first 3-answer page has nothing left to resume, and
    # this leg exists to exercise resumes.
    while True:
        queries = [
            random_unranked_tva(
                rng.randrange(10_000),
                n_states=rng.choice((2, 3)),
                variables=("x", "y")[: rng.choice((1, 2))],
                initial_density=rng.uniform(0.3, 0.7),
                delta_density=rng.uniform(0.2, 0.5),
            )
        ]
        trees = [
            random_tree(rng.randint(8, 12), LABELS, seed=rng.randrange(10_000))
            for _ in range(n_docs)
        ]
        if all(
            len(unranked_satisfying_assignments(queries[0], tree)) >= 8
            for tree in trees
        ):
            break
    doc_query = [0] * n_docs
    references = [tree.copy() for tree in trees]
    ops = [("page", doc) for doc in range(n_docs)]
    noop_turn = True
    for _ in range(rng.randint(8, 12)):
        doc = rng.randrange(n_docs)
        kind = rng.choice(("edits", "edits", "page", "page", "page"))
        if kind == "edits":
            if noop_turn:
                node = rng.choice(list(references[doc].nodes()))
                batch = [Relabel(node.node_id, node.label)]
            else:
                batch = random_edit_sequence(
                    references[doc], LABELS, 1,
                    seed=rng.randrange(10_000), weights=(6, 1, 1, 1),
                )
            noop_turn = not noop_turn
            for edit in batch:
                edit.apply_to_tree(references[doc])
            ops.append(("edits", doc, batch))
        else:
            ops.append(("page", doc))
    return trees, queries, doc_query, ops


class TestCursorStabilityDifferential:
    """The fine-grained cursor dependency test, measured against oracles.

    Two legs.  The local leg drives one cursor through relabel-heavy edit
    sequences and checks, per edit, the fine decision against (a) the coarse
    whole-box decision the old code would have made (recomputed from the
    cursor's referenced-box serials and the maintainer's replaced set) and
    (b) the brute-force answer-set oracle: a resumed cursor must drain to a
    byte-identical suffix of the base-epoch stream (no false survivals), the
    fine test must never invalidate where the coarse test resumes, and over
    the whole suite it must resume strictly more often and false-invalidate
    (invalidate although the brute-force answer set did not change) at most
    as often.  The backend leg replays the same schedules on the sharded,
    replicated and network engines, transcript-exact against the
    single-process oracle — the resume/invalidate decision must be
    indistinguishable across all four backends.
    """

    @pytest.mark.parametrize("case", range(N_CURSOR))
    def test_fine_decisions_sound_and_more_precise_than_coarse(self, case):
        from repro.engine.local import LocalStore

        rng = random.Random(63000 + FUZZ_SEED + case)
        query = random_unranked_tva(
            rng.randrange(10_000),
            n_states=rng.choice((2, 3)),
            variables=("x", "y")[: rng.choice((1, 2))],
            initial_density=rng.uniform(0.3, 0.7),
            delta_density=rng.uniform(0.2, 0.5),
        )
        tree = random_tree(rng.randint(6, 10), LABELS, seed=rng.randrange(10_000))
        reference = tree.copy()
        store = LocalStore()
        doc = store.add_tree(tree, query)

        # The full base-epoch stream, recorded by a probe cursor at open time:
        # the cursor under test must deliver exactly this, in this order.
        base_stream = doc.open_cursor(page_size=10_000).fetch_all()
        cursor = doc.open_cursor(page_size=2)
        delivered = list(cursor.fetch().answers)

        fine = {"resumed": 0, "invalidated": 0, "false_invalidated": 0}
        coarse = {"resumed": 0, "invalidated": 0, "false_invalidated": 0}
        answers_before = sorted(
            map(sorted, unranked_satisfying_assignments(query, reference))
        )
        edits = iter(
            random_edit_sequence(
                reference.copy(), LABELS, 6,
                seed=rng.randrange(10_000), weights=(6, 1, 1, 1),
            )
        )
        # the guaranteed fingerprint-equal case: lead with a no-op relabel
        first_node = next(iter(reference.nodes()))
        from repro.trees.edits import Relabel

        schedule = [Relabel(first_node.node_id, first_node.label)] + list(edits)
        for edit in schedule:
            if not cursor.is_active():
                break
            refs = {box.serial for box in cursor.referenced_boxes()}
            report = doc.apply_edits([edit])
            edit.apply_to_tree(reference)
            answers_after = sorted(
                map(sorted, unranked_satisfying_assignments(query, reference))
            )
            replaced = set(doc.maintainer.last_replaced_deltas)
            changed = answers_before != answers_after
            answers_before = answers_after
            coarse_hit = bool(refs & replaced)
            fine_hit = report.cursors_invalidated == 1
            # the fine test only ever *refines* the coarse one
            assert not (fine_hit and not coarse_hit), (
                "fine test invalidated where the coarse whole-box test resumed"
            )
            for counters, hit in ((fine, fine_hit), (coarse, coarse_hit)):
                counters["invalidated" if hit else "resumed"] += 1
                if hit and not changed:
                    counters["false_invalidated"] += 1
            if fine_hit:
                break
            delivered.extend(cursor.fetch().answers)

        if cursor.is_active():
            delivered.extend(cursor.fetch_all())
        if cursor.status in ("active", "exhausted"):
            # no false survivals: the resumed cursor's pages are a
            # byte-identical continuation of the base-epoch stream
            assert delivered == base_stream
        assert fine["resumed"] >= coarse["resumed"]
        assert fine["false_invalidated"] <= coarse["false_invalidated"]
        TestCursorStabilityDifferential._totals["fine_resumed"] += fine["resumed"]
        TestCursorStabilityDifferential._totals["coarse_resumed"] += coarse["resumed"]
        TestCursorStabilityDifferential._totals["cases"] += 1
        if TestCursorStabilityDifferential._totals["cases"] == N_CURSOR:
            # measured precision: across the suite the fine test resumes
            # strictly more often than the coarse test would have
            totals = TestCursorStabilityDifferential._totals
            assert totals["fine_resumed"] > totals["coarse_resumed"], totals

    _totals = {"fine_resumed": 0, "coarse_resumed": 0, "cases": 0}

    @pytest.mark.timeout(300)
    @pytest.mark.parametrize("case", range(N_CURSOR_BACKENDS))
    def test_cursor_transcripts_identical_across_backends(self, case):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip(f"fork start method unavailable on {sys.platform}")
        case_seed = FUZZ_SEED + case
        trees, queries, doc_query, ops = _cursor_scenario(case_seed)
        single = _replay_transcript(trees, queries, doc_query, ops)
        sharded = _replay_transcript(
            trees, queries, doc_query, ops, workers=2, start_method="fork"
        )
        replicated = _replay_transcript(
            trees, queries, doc_query, ops,
            workers=3, replicas=2, start_method="fork",
        )
        networked = _replay_transcript_network(
            trees, queries, doc_query, ops, workers=2, start_method="fork"
        )
        assert sharded == single
        assert replicated == single
        assert networked == single
        resumes = sum(
            event[4] for event in single if event[0] == "edits"
        )
        assert resumes >= 1, "schedule produced no resumed cursors"
