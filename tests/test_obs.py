"""The observability layer: histograms, Prometheus text, traces, SLOs, events.

What is pinned here:

* **Mergeable histograms** — fixed shared bucket bounds make the sharded
  merge (element-wise bucket addition) *identical* to recording every sample
  in a single process; quantiles are conservative bucket upper bounds.
* **Prometheus round trip** — ``Engine.metrics_text()`` parses back with
  :func:`repro.obs.parse_prometheus_text` to the same counts, sums and
  cumulative buckets.
* **One coherent trace** — a sharded ``stream()`` under an injected worker
  crash produces a single Chrome-trace JSON holding the parent span, spans
  from both shard process rows and the failover retry, linked by
  ``trace_id`` / ``parent_id``.
* **SLO monitoring** — ``delay_budget`` records every per-answer delay and
  every breach (event + counter) without raising; ``delay_strict`` raises.
* **Precise lifecycle errors** — monitoring calls on a closed engine, or on
  one whose constructor raised, get an :class:`~repro.errors.EngineError`
  naming the situation, never an ``AttributeError``; ``close()`` is
  idempotent.
* **Zero overhead when off** — without tracing/budgets the local stream is
  the runtime's own iterator and no per-answer hook is installed.
"""

from __future__ import annotations

import json
import glob
import os

import pytest

from repro import Engine, EngineError, ShardTimeoutError
from repro.automata.queries import select_labeled
from repro.obs import (
    DelayMonitor,
    EventLog,
    Histogram,
    MetricsRegistry,
    Tracer,
    parse_prometheus_text,
    render_prometheus,
)
from repro.trees.edits import Relabel
from repro.trees.generators import random_tree

LABELS = ("a", "b", "c", "d")


def tree_query():
    return select_labeled("a", LABELS)


def small_tree(seed=7, size=30):
    return random_tree(size, LABELS, seed)


# ================================================================ histograms
class TestHistogram:
    def test_observe_count_sum_max(self):
        h = Histogram()
        for v in (0.5, 0.25, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(2.75)
        assert h.max == 2.0

    def test_quantile_is_conservative_bucket_upper_bound(self):
        h = Histogram()
        for _ in range(99):
            h.observe(2e-6)  # bucket (1e-6, 2.5e-6]
        h.observe(0.2)  # bucket (1e-1, 2.5e-1]
        assert h.quantile(0.50) == 2.5e-6
        assert h.quantile(0.50) >= 2e-6  # never below the true quantile
        assert h.quantile(0.999) == 2.5e-1
        assert h.quantile(1.0) == 2.5e-1

    def test_overflow_bucket_reports_exact_max(self):
        h = Histogram()
        h.observe(120.0)  # beyond the last bound (60 s)
        assert h.quantile(0.99) == 120.0
        assert h.counts[-1] == 1

    def test_empty_quantiles_are_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_merge_requires_matching_bounds(self):
        with pytest.raises(ValueError, match="bucket bounds"):
            Histogram().merge(Histogram(bounds=(1.0, 2.0)))

    def test_sharded_merge_equals_single_process_recording(self):
        """The satellite invariant: merging per-shard histograms bucket-wise
        is indistinguishable from having recorded every sample in one
        process (dyadic samples so float sums are exact)."""
        shard_a = [0.5, 0.25, 0.125, 4.0]
        shard_b = [0.0625, 8.0, 0.25]
        ra, rb, single = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for v in shard_a:
            ra.observe("answer_delay_seconds", v)
            single.observe("answer_delay_seconds", v)
        for v in shard_b:
            rb.observe("answer_delay_seconds", v)
            single.observe("answer_delay_seconds", v)
        ra.inc("delay_violations", 2)
        rb.inc("delay_violations", 1)
        single.inc("delay_violations", 3)

        parent = MetricsRegistry()
        for wire in (ra.to_wire(), rb.to_wire(), None):  # None: a dead shard
            parent.merge_wire(wire)
        assert parent.snapshot() == single.snapshot()

    def test_registry_snapshot_shape(self):
        r = MetricsRegistry()
        r.observe("x_seconds", 0.004)
        r.inc("hits")
        snap = r.snapshot()
        assert snap["x_seconds"]["type"] == "histogram"
        assert snap["x_seconds"]["count"] == 1
        assert snap["x_seconds"]["p50"] == 5e-3
        assert snap["hits"] == {"type": "counter", "value": 1}

    def test_timer_is_a_bound_observe(self):
        r = MetricsRegistry()
        t = r.timer("op_seconds")
        t(0.5)
        t(0.25)
        assert r.histograms["op_seconds"].count == 2


# ================================================================ prometheus
class TestPrometheusText:
    def test_render_parse_round_trip(self):
        r = MetricsRegistry()
        for v in (2e-6, 3e-4, 0.02, 0.02, 7.0):
            r.observe("update_batch_seconds", v)
        r.inc("failovers_total", 4)
        r.inc("migrations", 2)  # _total appended by the renderer
        text = render_prometheus(r.snapshot())
        parsed = parse_prometheus_text(text)

        hist = parsed["repro_update_batch_seconds"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 5
        assert hist["sum"] == pytest.approx(2e-6 + 3e-4 + 0.02 + 0.02 + 7.0)
        assert hist["buckets"]["+Inf"] == 5  # cumulative series ends at count
        cumulative = [hist["buckets"][le] for le in hist["buckets"]]
        assert cumulative == sorted(cumulative)  # cumulative ⇒ monotone
        assert parsed["repro_failovers_total"]["value"] == 4
        assert parsed["repro_migrations_total"]["value"] == 2

    def test_engine_metrics_text_round_trips(self):
        with Engine(delay_budget=60.0) as engine:
            doc = engine.add_tree(small_tree(), tree_query())
            answers = doc.answers()
            doc.apply_edits([Relabel(0, "b")])
            metrics = engine.metrics()
            parsed = parse_prometheus_text(engine.metrics_text())
        delay = parsed["repro_answer_delay_seconds"]
        assert delay["count"] == len(answers)
        assert delay["count"] == metrics["answer_delay_seconds"]["count"]
        assert delay["sum"] == pytest.approx(metrics["answer_delay_seconds"]["sum"])
        assert (
            parsed["repro_failovers_total"]["value"]
            == metrics["failovers_total"]["value"]
            == 0
        )


# ==================================================================== engine
class TestEngineMetrics:
    def _workload(self, engine):
        """The same deterministic workload on any engine; returns answer count."""
        docs = [
            engine.add_tree(small_tree(seed), tree_query(), doc_id=f"d{seed}")
            for seed in (1, 2, 3)
        ]
        total = sum(len(doc.answers()) for doc in docs)
        for doc in docs:
            doc.apply_edits([Relabel(0, "a"), Relabel(1, "b")])
        total += sum(len(doc.answers()) for doc in docs)
        return total

    def test_sharded_histograms_merge_to_single_process_totals(self):
        with Engine(delay_budget=60.0) as local:
            local_total = self._workload(local)
            local_metrics = local.metrics()
        with Engine(workers=2, delay_budget=60.0) as sharded:
            sharded_total = self._workload(sharded)
            sharded_metrics = sharded.metrics()

        assert local_total == sharded_total
        # The merged worker histograms carry exactly the per-answer and
        # per-edit sample counts of the single process (timings differ, the
        # sample population does not).
        for name in (
            "answer_delay_seconds",
            "update_apply_seconds",
            "update_batch_seconds",
            "ingest_build_seconds",
        ):
            assert sharded_metrics[name]["count"] == local_metrics[name]["count"], name
        assert local_metrics["answer_delay_seconds"]["count"] == local_total
        # Parent-side protocol metrics only exist on the sharded engine.
        assert sharded_metrics["protocol_round_trip_seconds"]["count"] > 0
        assert "protocol_round_trip_seconds" not in local_metrics
        assert sharded_metrics["shard_deaths_total"]["value"] == 0

    def test_delay_budget_records_violations_without_raising(self):
        with Engine(delay_budget=1e-12) as engine:  # everything breaches
            doc = engine.add_tree(small_tree(), tree_query())
            answers = doc.answers()
            metrics = engine.metrics()
            events = engine.events()
        assert len(answers) > 0
        assert metrics["answer_delay_seconds"]["count"] == len(answers)
        assert metrics["delay_violations"]["value"] == len(answers)
        violation = [e for e in events if e["kind"] == "delay_violation"]
        assert violation and violation[0]["budget"] == 1e-12
        assert violation[0]["seconds"] > 1e-12

    def test_delay_strict_raises_on_first_breach(self):
        with Engine(delay_budget=1e-12, delay_strict=True) as engine:
            doc = engine.add_tree(small_tree(), tree_query())
            with pytest.raises(EngineError, match="delay SLO violated"):
                list(doc.stream())

    def test_budget_validation(self):
        with pytest.raises(EngineError, match="delay budget must be positive"):
            Engine(delay_budget=0.0)
        with pytest.raises(EngineError, match="slow_op_seconds must be positive"):
            Engine(slow_op_seconds=-1.0)
        with pytest.raises(EngineError, match="must be positive"):
            DelayMonitor(-1.0, MetricsRegistry())

    def test_zero_overhead_when_off(self):
        """No budget, no tracing: the local stream is the runtime's own
        iterator and no per-answer hook is installed anywhere."""
        with Engine() as engine:
            doc = engine.add_tree(small_tree(), tree_query())
            store = engine._store
            assert store.delay_monitor is None
            maintainer = store.document(doc.doc_id).maintainer
            assert maintainer.on_delay is None
            iterator = doc.stream()
            # the exact generator the runtime hands out — no wrapper frames
            assert iterator.gi_code.co_name == "iterate"
            assert engine._tracer.enabled is False
        with Engine(delay_budget=1.0) as engine:
            doc = engine.add_tree(small_tree(), tree_query())
            maintainer = engine._store.document(doc.doc_id).maintainer
            assert maintainer.on_delay == engine._store.delay_monitor.observe


# ===================================================================== events
class TestEvents:
    def test_fault_injection_is_an_event(self):
        with Engine(workers=1, fault_plan="0:count:0:slow:0.0") as engine:
            doc = engine.add_tree(small_tree(), tree_query())
            doc.count()
            events = engine.events()
        fired = [e for e in events if e["kind"] == "fault_injected"]
        assert fired == [
            {"kind": "fault_injected", "ts": fired[0]["ts"],
             "shard": 0, "op": "count", "action": "slow"}
        ]

    def test_timeout_message_carries_stats_snapshot(self):
        """Satellite: ShardTimeoutError names the hung shard's live load."""
        with Engine(workers=1, deadline=0.4, fault_plan="0:count:0:hang") as engine:
            doc = engine.add_tree(small_tree(), tree_query())
            with pytest.raises(ShardTimeoutError) as excinfo:
                doc.count()
            message = str(excinfo.value)
            assert "[shard 0 at timeout: " in message
            # the hung count request itself is still in flight
            assert "inflight_requests=1" in message
            assert "queued_replies=0" in message
            assert "streams_open=0" in message
            events = engine.events()
            metrics = engine.metrics()
        kinds = [e["kind"] for e in events]
        assert "shard_timeout" in kinds
        assert "shard_death" in kinds
        assert metrics["shard_timeouts_total"]["value"] == 1
        assert metrics["shard_deaths_total"]["value"] == 1

    def test_event_log_is_a_ring(self):
        log = EventLog(capacity=3)
        for n in range(5):
            log.emit("tick", n=n)
        assert [e["n"] for e in log.snapshot()] == [2, 3, 4]
        assert len(log) == 3


# ===================================================================== tracer
class TestTracer:
    def test_disabled_tracer_is_inert_and_shared(self):
        t = Tracer()
        assert t.begin("x") is None
        assert t.span("x") is t.span("y")  # one shared no-op CM
        t.finish(None)  # no-op
        assert t.drain() == []

    def test_span_nesting_and_context(self):
        t = Tracer(enabled=True, process="parent")
        with t.span("outer") as outer:
            assert t.current_context() == outer.context
            with t.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert t.current_context() is None
        drained = t.drain()
        assert [s["name"] for s in drained] == ["inner", "outer"]
        assert t.drain() == []  # drain clears

    def test_chrome_trace_shape(self):
        t = Tracer(enabled=True, process="parent")
        with t.span("op", doc_id="'d'"):
            pass
        t.absorb([{  # a drained worker span
            "name": "count", "trace_id": "t:parent:0", "span_id": "shard-1:0",
            "parent_id": "parent:0", "process": "shard-1",
            "start_wall": 123.0, "duration": 0.5, "attrs": {},
        }])
        trace = t.chrome_trace()
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"parent", "shard-1"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"op", "count"}
        assert all(e["dur"] > 0 for e in spans)

    def test_trace_env_auto_dump_on_close(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        engine = Engine()
        assert engine._tracer.enabled
        doc = engine.add_tree(small_tree(), tree_query())
        doc.answers()
        engine.close()
        paths = glob.glob(os.path.join(str(tmp_path), "trace-*.json"))
        assert len(paths) == 1
        with open(paths[0], encoding="utf8") as handle:
            trace = json.load(handle)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_dump_trace_requires_tracing(self, tmp_path):
        with Engine() as engine:
            with pytest.raises(EngineError, match="tracing is off"):
                engine.dump_trace(str(tmp_path / "t.json"))

    def test_sharded_stream_crash_yields_one_linked_trace(self, tmp_path):
        """The acceptance trace: one sharded stream under an injected worker
        crash exports a single Chrome trace holding the parent stream span,
        spans from both shard process rows, and the failover retry linked
        under the stream span."""
        with Engine(
            workers=2,
            replicas=2,
            trace=True,
            fault_plan="*:stream_chunk:0:crash",
        ) as engine:
            doc = engine.add_tree(small_tree(size=60), tree_query())
            answers = list(doc.stream())  # crash mid-stream, failover, finish
            assert engine.failovers_total >= 1
            engine.await_repairs()
            path = engine.dump_trace(str(tmp_path / "trace.json"))
        with open(path, encoding="utf8") as handle:
            trace = json.load(handle)
        assert len(answers) > 0

        events = trace["traceEvents"]
        process_of = {
            e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        spans = [e for e in events if e["ph"] == "X"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)

        # parent + both shard rows are present in the one file
        assert "parent" in process_of.values()
        assert {"shard-0", "shard-1"} <= set(process_of.values())

        stream = by_name["stream"][0]
        assert process_of[stream["pid"]] == "parent"
        # the failover retry is linked under the stream span
        retry = by_name["failover_retry"][0]
        assert retry["args"]["parent_id"] == stream["args"]["span_id"]
        assert retry["args"]["trace_id"] == stream["args"]["trace_id"]
        # the surviving worker's stream_open span joined the same trace
        worker_opens = [
            s for s in by_name.get("stream_open", ())
            if process_of[s["pid"]].startswith("shard-")
        ]
        assert any(
            s["args"]["trace_id"] == stream["args"]["trace_id"]
            for s in worker_opens
        )
        # the repair of the crashed replica was traced on the respawned worker
        assert "restore" in by_name


# ================================================================= lifecycle
class TestLifecycleErrors:
    def test_close_is_idempotent_and_monitoring_errors_are_precise(self):
        engine = Engine()
        engine.add_tree(small_tree(), tree_query())
        engine.close()
        engine.close()  # satellite: second close is a silent no-op
        for call in (engine.stats, engine.metrics, engine.metrics_text, engine.events):
            with pytest.raises(EngineError, match="engine is closed"):
                call()
        with pytest.raises(EngineError, match="engine is closed"):
            engine.dump_trace("unused.json")

    def test_failed_construction_monitoring_raises_engine_error(self):
        captured = {}

        class Probe(Engine):
            def __init__(self, *args, **kwargs):
                captured["husk"] = self
                super().__init__(*args, **kwargs)

        with pytest.raises(EngineError, match="page_size"):
            Probe(page_size=0)  # raises before _closed is ever assigned
        husk = captured["husk"]
        for call in (husk.stats, husk.metrics, husk.events):
            with pytest.raises(EngineError, match="never finished construction"):
                call()
        husk.close()  # still safe: nothing was created, nothing to release
