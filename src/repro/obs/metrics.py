"""Fixed-bucket latency histograms and counters, mergeable across processes.

The design constraints come from where these run:

* **inside shard workers.**  Recording must be cheap and safe without
  locks: a :class:`Histogram` observation is one bisect into a fixed bound
  table plus two int increments — atomic enough under the GIL, and the
  worker's event loop is single-threaded anyway.
* **merged parent-side.**  ``Engine.metrics()`` gathers every worker's
  registry over the protocol and merges, exactly like ``Engine.stats()``.
  Because all histograms of a given registry share the *same fixed bucket
  bounds*, merging is element-wise addition of bucket counts: the merged
  histogram is identical to one recorded in a single process (the
  test suite pins this).
* **quantiles from buckets.**  ``p50/p95/p99`` are read off the cumulative
  bucket counts and reported as the *upper bound* of the bucket containing
  the quantile (conservative: the true quantile is never above the reported
  one).  The exact ``max`` and ``sum`` are tracked alongside.

:func:`render_prometheus` emits the Prometheus text exposition format
(`histogram` with cumulative ``_bucket{le=...}`` samples, plus plain
counters); :func:`parse_prometheus_text` is the minimal inverse used by the
round-trip test and by anyone who wants to scrape ``Engine.metrics_text()``
without a Prometheus client library.
"""

from __future__ import annotations

from bisect import bisect_left
from math import inf
from typing import Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "parse_prometheus_text",
]

#: Fixed latency bucket upper bounds, in seconds: 1 µs to 60 s, roughly four
#: per decade.  Wide enough for every engine latency (a bitset per-answer
#: delay is ~10 µs; a cold sharded ingest is ~1 s) while keeping a snapshot
#: small enough to ship over the shard protocol per request.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Histogram:
    """A fixed-bucket latency histogram (seconds) with exact sum and max."""

    __slots__ = ("bounds", "counts", "count", "sum", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = bounds
        # one count per bound, plus the +Inf overflow bucket at the end
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (the worker-side hot path)."""
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same bounds) into this one, in place."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        counts = self.counts
        for index, value in enumerate(other.counts):
            counts[index] += value
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding the ``q``-quantile sample.

        Conservative by construction (never below the true quantile); the
        overflow bucket reports the exact observed ``max``.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, value in enumerate(self.counts):
            cumulative += value
            if cumulative >= rank:
                return self.bounds[index] if index < len(self.bounds) else self.max
        return self.max

    def snapshot(self) -> Dict[str, object]:
        """The structured view ``Engine.metrics()`` reports."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
            "buckets": list(self.counts),
            "bounds": list(self.bounds),
        }


class MetricsRegistry:
    """Named histograms and counters of one process (engine or shard worker).

    ``to_wire()`` serializes the registry to plain builtins (lists / dicts /
    numbers) so it crosses the shard pipe pickled like any reply;
    ``merge_wire()`` folds such a snapshot into this registry — the parent
    merges every worker's registry into its own, mirroring the
    ``Engine.stats()`` gather.
    """

    __slots__ = ("histograms", "counters")

    def __init__(self):
        self.histograms: Dict[str, Histogram] = {}
        self.counters: Dict[str, int] = {}

    def observe(self, name: str, seconds: float) -> None:
        """Record a latency sample into the named histogram (created lazily)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(seconds)

    def timer(self, name: str):
        """A bound ``observe`` callback for the named histogram (hook wiring)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram.observe

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment a counter (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def to_wire(self) -> Dict[str, object]:
        """A picklable plain-builtin snapshot (shipped over the shard pipe)."""
        return {
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "max": h.max,
                }
                for name, h in self.histograms.items()
            },
            "counters": dict(self.counters),
        }

    def merge_wire(self, wire: Optional[Dict[str, object]]) -> None:
        """Fold one ``to_wire()`` snapshot into this registry (``None`` ok)."""
        if not wire:
            return
        for name, data in wire.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(tuple(data["bounds"]))
            other = Histogram(tuple(data["bounds"]))
            other.counts = list(data["counts"])
            other.count = data["count"]
            other.sum = data["sum"]
            other.max = data["max"]
            histogram.merge(other)
        for name, value in wire.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value

    def snapshot(self) -> Dict[str, object]:
        """The structured dict behind ``Engine.metrics()``."""
        merged: Dict[str, object] = {
            name: histogram.snapshot()
            for name, histogram in sorted(self.histograms.items())
        }
        for name, value in sorted(self.counters.items()):
            merged[name] = {"type": "counter", "value": value}
        return merged


def _format_value(value: float) -> str:
    """Prometheus sample values: integers bare, floats via repr."""
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, object], prefix: str = "repro_") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text exposition.

    Histograms become the standard cumulative ``_bucket{le="..."}`` series
    plus ``_sum`` and ``_count``; counters become plain ``_total``-suffixed
    samples (the suffix is appended only when the name doesn't carry it).
    """
    lines: List[str] = []
    for name, entry in snapshot.items():
        metric = prefix + name
        if entry["type"] == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            bounds = list(entry["bounds"]) + [inf]
            for bound, count in zip(bounds, entry["buckets"]):
                cumulative += count
                le = "+Inf" if bound == inf else _format_value(bound)
                lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{metric}_sum {_format_value(entry['sum'])}")
            lines.append(f"{metric}_count {entry['count']}")
        else:
            if not metric.endswith("_total"):
                metric += "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """A minimal parser of the exposition format :func:`render_prometheus` emits.

    Returns ``{metric_name: {"type": ..., samples...}}`` — histograms carry
    ``count``, ``sum`` and a ``buckets`` dict of ``le -> cumulative count``;
    counters carry ``value``.  Enough to verify a scrape round-trips, not a
    general Prometheus parser (no labels beyond ``le``, no escaping).
    """
    metrics: Dict[str, Dict[str, object]] = {}
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
                metrics.setdefault(parts[2], {"type": parts[3]})
            continue
        name_and_labels, value_text = line.rsplit(" ", 1)
        value = float(value_text)
        if "{" in name_and_labels:
            sample_name, label_text = name_and_labels.split("{", 1)
            labels = label_text.rstrip("}")
        else:
            sample_name, labels = name_and_labels, ""
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
                base = sample_name[: -len(suffix)]
                break
        entry = metrics.setdefault(base, {"type": types.get(base, "untyped")})
        if sample_name == base + "_bucket":
            le = labels.split("=", 1)[1].strip('"') if labels else "+Inf"
            entry.setdefault("buckets", {})[le] = value
        elif sample_name == base + "_sum":
            entry["sum"] = value
        elif sample_name == base + "_count":
            entry["count"] = value
        else:
            entry["value"] = value
    return metrics
