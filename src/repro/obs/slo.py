"""The live SLO layer: delay budgets and the structured operational event log.

The paper proves enumeration delay is independent of the document size
(Theorem 6.5); production wants that as a *monitored invariant*, not an
offline benchmark.  :class:`DelayMonitor` samples per-answer delay in-flight
— at the mask-stack iterator, under the materialization boundary — records
every sample into a shared histogram, and logs a structured event per
violation of the configured budget.  It never raises by default (an SLO
breach is a signal, not an error); ``strict=True`` turns breaches into
:class:`~repro.errors.EngineError` for tests that want hard gates.

:class:`EventLog` is the bounded ring buffer behind ``Engine.events()``:
shard deaths, timeouts, protocol violations, slow operations, fault-plan
firings, divergence tripwires and delay violations all land here as plain
dicts ``{"kind", "ts", ...fields}``, newest-last, oldest evicted first.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["DelayMonitor", "EventLog", "DEFAULT_EVENT_LOG_SIZE"]

#: events retained by an :class:`EventLog` before the oldest are dropped
DEFAULT_EVENT_LOG_SIZE = 256


class EventLog:
    """A bounded ring buffer of structured operational events."""

    __slots__ = ("_events",)

    def __init__(self, capacity: int = DEFAULT_EVENT_LOG_SIZE):
        self._events: deque = deque(maxlen=max(1, capacity))

    def emit(self, kind: str, **fields) -> None:
        """Append one event (wall-clock stamped); oldest evicted past capacity."""
        self._events.append({"kind": kind, "ts": time.time(), **fields})

    def snapshot(self) -> List[Dict[str, object]]:
        """The retained events, oldest first (plain picklable dicts)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class DelayMonitor:
    """Sample per-answer enumeration delay against a budget, in-flight.

    ``observe(seconds)`` is the hook the enumeration layer calls once per
    produced answer (see ``MaskStackEnumeration.on_delay``): the sample is
    recorded into the registry's ``answer_delay_seconds`` histogram and, when
    it exceeds ``budget`` seconds, a ``delay_violation`` event is logged and
    the ``delay_violations`` counter incremented.  ``sample_every=N`` thins
    the sampling to every Nth answer when even the measurement's
    ``perf_counter`` pair is too much for a workload.
    """

    __slots__ = (
        "budget",
        "strict",
        "sample_every",
        "violations",
        "_metrics",
        "_observe_histogram",
        "_events",
        "_skip",
    )

    def __init__(
        self,
        budget: float,
        metrics,
        events: Optional[EventLog] = None,
        strict: bool = False,
        sample_every: int = 1,
    ):
        if budget <= 0:
            from repro.errors import EngineError

            raise EngineError(f"the delay budget must be positive, got {budget}")
        self.budget = budget
        self.strict = strict
        self.sample_every = max(1, sample_every)
        self.violations = 0
        self._metrics = metrics
        self._observe_histogram: Callable[[float], None] = metrics.timer(
            "answer_delay_seconds"
        )
        self._events = events
        self._skip = 0

    @property
    def should_sample(self) -> bool:
        """Whether the next answer is a sampling point (advances the phase)."""
        self._skip += 1
        if self._skip >= self.sample_every:
            self._skip = 0
            return True
        return False

    def observe(self, seconds: float) -> None:
        """Record one per-answer delay sample; log (or raise) on breach."""
        self._observe_histogram(seconds)
        if seconds <= self.budget:
            return
        self.violations += 1
        self._metrics.inc("delay_violations")
        if self._events is not None:
            self._events.emit(
                "delay_violation", seconds=seconds, budget=self.budget
            )
        if self.strict:
            from repro.errors import EngineError

            raise EngineError(
                f"enumeration delay SLO violated: one answer took "
                f"{seconds * 1e6:.1f} µs against a budget of "
                f"{self.budget * 1e6:.1f} µs"
            )
