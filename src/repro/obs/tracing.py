"""Request-scoped spans with cross-process context propagation.

One logical engine call — ``stream()``, ``add_documents()``,
``apply_edits()`` — touches the parent *and* several shard workers: the
parent places the request, each worker builds/enumerates, failover may
retry on another replica, and background repairs run on a respawned
process.  A :class:`Tracer` stitches all of that into one trace:

* the parent opens a root span per engine call and passes its
  ``(trace_id, span_id)`` context over the shard protocol (a fire-and-forget
  ``trace_push`` message immediately before the request — the pipe is FIFO,
  so the worker attaches it to exactly the next request it handles);
* each worker runs its own :class:`Tracer` and parents its request spans
  under the pushed context; the parent drains worker spans over the
  protocol (``trace_drain``) when exporting;
* :meth:`Tracer.chrome_trace` renders everything as Chrome-trace JSON
  (the ``traceEvents`` array of complete ``"X"`` events) — load it in
  ``chrome://tracing`` or Perfetto; spans of one logical call share a
  ``trace_id`` in their ``args`` and link through ``parent_id``.

Span timestamps are wall-clock (``time.time``) so parent and worker spans
align on one axis; durations are measured with ``time.perf_counter``.

When the tracer is **disabled** (the default), :meth:`Tracer.span` returns a
shared no-op context manager and :meth:`Tracer.begin` returns ``None`` — the
instrumentation left in the hot paths is one attribute check, which is what
keeps the tracing-off overhead gate under 5%.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "TRACE_ENV_VAR"]

#: Environment variable naming a directory; when set, every Engine enables
#: tracing and dumps its Chrome trace there on close (headless runs).
TRACE_ENV_VAR = "REPRO_TRACE"

_trace_file_ids = itertools.count()


def trace_path_from_env() -> Optional[str]:
    """A fresh trace-file path under ``$REPRO_TRACE``, or None when unset."""
    directory = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not directory:
        return None
    return os.path.join(
        directory, f"trace-{os.getpid()}-{next(_trace_file_ids)}.json"
    )


class Span:
    """One timed operation; a node of a trace tree."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "process",
        "start_wall",
        "_start_perf",
        "duration",
        "attrs",
    )

    def __init__(self, name, trace_id, span_id, parent_id, process, attrs):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.process = process  #: "parent" or "shard-N" (Chrome-trace pid row)
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()
        self.duration = 0.0
        self.attrs = attrs

    @property
    def context(self) -> Tuple[str, str]:
        """The ``(trace_id, span_id)`` pair that propagates to children."""
        return (self.trace_id, self.span_id)

    def to_wire(self) -> dict:
        """Plain-builtin form (shipped over the shard pipe by trace_drain)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "start_wall": self.start_wall,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _NoopSpan:
    """The shared do-nothing context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP = _NoopSpan()


class _SpanScope:
    """Context manager pushing/popping one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        self._tracer.finish(self._span)
        return False


class Tracer:
    """Collects spans of one process; disabled by default (near-zero cost).

    Two usage shapes:

    * ``with tracer.span("add_documents", docs=3):`` — stack-based implicit
      nesting for straight-line code;
    * ``span = tracer.begin("failover_retry", parent=ctx); ...;
      tracer.finish(span)`` — explicit parentage for generators and
      callbacks, where the enclosing ``with`` block has long exited.
    """

    __slots__ = ("enabled", "process", "spans", "foreign", "_stack", "_ids")

    def __init__(self, enabled: bool = False, process: str = "parent"):
        self.enabled = enabled
        self.process = process
        self.spans: List[Span] = []  #: finished spans of this process
        self.foreign: List[dict] = []  #: drained worker spans (wire dicts)
        self._stack: List[Span] = []
        self._ids = itertools.count()

    # ------------------------------------------------------------ recording
    def begin(self, name: str, parent: Optional[Tuple[str, str]] = None, **attrs):
        """Start a span explicitly; returns None when tracing is off."""
        if not self.enabled:
            return None
        if parent is None and self._stack:
            parent = self._stack[-1].context
        span_id = f"{self.process}:{next(self._ids)}"
        if parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id, parent_id = f"t:{span_id}", None
        return Span(name, trace_id, span_id, parent_id, self.process, attrs)

    def finish(self, span: Optional[Span]) -> None:
        """End a span started with :meth:`begin` (None is a no-op)."""
        if span is None:
            return
        span.duration = time.perf_counter() - span._start_perf
        self.spans.append(span)

    def span(self, name: str, parent: Optional[Tuple[str, str]] = None, **attrs):
        """Context-manager form of :meth:`begin`/:meth:`finish`."""
        if not self.enabled:
            return _NOOP
        return _SpanScope(self, self.begin(name, parent=parent, **attrs))

    def current_context(self) -> Optional[Tuple[str, str]]:
        """The innermost open span's context (protocol propagation), or None."""
        if not self.enabled or not self._stack:
            return None
        return self._stack[-1].context

    # ------------------------------------------------------------- gathering
    def drain(self) -> List[dict]:
        """Hand over (and clear) this process's finished spans as wire dicts.

        Workers answer the ``trace_drain`` protocol request with this, so a
        second export never duplicates spans already shipped.
        """
        spans, self.spans = self.spans, []
        return [span.to_wire() for span in spans]

    def absorb(self, wire_spans: Optional[List[dict]]) -> None:
        """Merge spans drained from another process (None is a no-op)."""
        if wire_spans:
            self.foreign.extend(wire_spans)

    # -------------------------------------------------------------- exporting
    def _all_wire_spans(self) -> List[dict]:
        return [span.to_wire() for span in self.spans] + list(self.foreign)

    def chrome_trace(self) -> Dict[str, object]:
        """The Chrome-trace JSON object (``traceEvents`` of ``"X"`` events).

        Each process label becomes one pid row (named via ``process_name``
        metadata events); span links (``trace_id`` / ``span_id`` /
        ``parent_id``) ride in each event's ``args``.
        """
        spans = self._all_wire_spans()
        pids: Dict[str, int] = {}
        events: List[dict] = []
        for wire in spans:
            process = wire["process"]
            pid = pids.get(process)
            if pid is None:
                pid = pids[process] = len(pids)
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": process},
                    }
                )
            events.append(
                {
                    "name": wire["name"],
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": wire["start_wall"] * 1e6,
                    "dur": max(wire["duration"], 1e-7) * 1e6,
                    "args": {
                        "trace_id": wire["trace_id"],
                        "span_id": wire["span_id"],
                        "parent_id": wire["parent_id"],
                        **wire["attrs"],
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump(self, path: str) -> str:
        """Write :meth:`chrome_trace` as JSON; returns the path written."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf8") as handle:
            json.dump(self.chrome_trace(), handle)
        return path
