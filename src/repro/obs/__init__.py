"""`repro.obs` — zero-dependency observability for the enumeration engine.

The paper's contract is quantitative — constant delay per answer
(Theorem 6.5), logarithmic work per update (Lemma 7.3) — and the engine's
contract is operational: bounded protocol waits, transparent failover,
byte-identical replicas.  This package turns both into *continuously
measured* signals, with nothing beyond the standard library:

* :mod:`repro.obs.metrics` — fixed-bucket latency histograms and counters.
  Recording is a list increment (lock-free under the GIL, safe inside shard
  workers); snapshots are plain dicts that merge across processes exactly
  like ``Engine.stats()``, and render to the Prometheus text exposition
  format (``Engine.metrics_text()``).
* :mod:`repro.obs.tracing` — request-scoped spans with context propagation
  over the shard protocol, exported as Chrome-trace JSON
  (``Engine.dump_trace(path)`` / ``chrome://tracing`` / Perfetto), or
  automatically per engine via the ``REPRO_TRACE=dir`` environment variable.
* :mod:`repro.obs.slo` — the live SLO layer: an opt-in
  :class:`~repro.obs.slo.DelayMonitor` that samples per-answer enumeration
  delay in-flight and records budget violations, and a ring-buffer
  :class:`~repro.obs.slo.EventLog` of structured operational events (shard
  deaths, timeouts, slow ops, fault injections, divergence tripwires)
  surfaced through ``Engine.events()``.

Everything is opt-in at the expensive end: with tracing off and no delay
budget configured, the per-answer hot path is untouched (the tracing-off
overhead gate in ``make check`` holds it under 5% of the bitset delay
median, like the PR-4 facade gate).
"""

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.slo import DelayMonitor, EventLog
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "parse_prometheus_text",
    "Tracer",
    "Span",
    "DelayMonitor",
    "EventLog",
]
