"""Document spanners: regexes with capture variables compiled to WVAs (Section 8)."""

from repro.spanners.regex import RegexNode, parse_regex
from repro.spanners.compile import compile_regex, regex_to_wva
from repro.spanners.spanner import Spanner

__all__ = [
    "RegexNode",
    "parse_regex",
    "compile_regex",
    "regex_to_wva",
    "Spanner",
]
