"""A small regex language with capture variables, for document spanners.

The paper's motivation for words is information extraction with document
spanners [22, 23]: queries are regular expressions whose sub-expressions can
be *captured* by variables, and an answer assigns word positions to the
variables.  This module parses the following syntax into an AST:

==============  =====================================================
syntax          meaning
==============  =====================================================
``a``           a single letter (any character except the meta characters)
``.``           any letter
``[abc]``       a character class; ``[^abc]`` for its complement
``e1 e2``       concatenation
``e1|e2``       alternation
``e*`` ``e+`` ``e?``  repetition
``(e)``         grouping
``x{e}``        capture: the *positions matched by* ``e`` are bound to the
                (second-order) variable ``x``; with the first-order
                convention of Corollary 8.3 a capture of a single letter
                binds ``x`` to that position
==============  =====================================================

The compiler (:mod:`repro.spanners.compile`) turns the AST into a word
variable automaton by a Thompson-style construction where transitions inside
a capture carry the capturing variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.errors import RegexSyntaxError

__all__ = ["RegexNode", "parse_regex"]

_META = set("|*+?(){}[]")


@dataclass(frozen=True)
class RegexNode:
    """A node of the regex AST.

    ``kind`` is one of ``letter``, ``any``, ``class``, ``concat``, ``alt``,
    ``star``, ``plus``, ``optional``, ``capture``, ``epsilon``.
    """

    kind: str
    letters: FrozenSet[str] = frozenset()
    negated: bool = False
    children: Tuple["RegexNode", ...] = ()
    variable: Optional[str] = None

    def variables(self) -> FrozenSet[str]:
        """All capture variables occurring in the expression."""
        result = set()
        if self.variable is not None:
            result.add(self.variable)
        for child in self.children:
            result |= child.variables()
        return frozenset(result)

    def __repr__(self) -> str:  # pragma: no cover
        if self.kind == "letter":
            return f"Letter({''.join(sorted(self.letters))})"
        if self.kind == "capture":
            return f"Capture({self.variable}, {self.children[0]!r})"
        return f"{self.kind}({', '.join(repr(c) for c in self.children)})"


class _Parser:
    """Recursive-descent parser for the spanner regex syntax."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.text[self.pos] if self.pos < len(self.text) else None

    def take(self) -> str:
        ch = self.peek()
        if ch is None:
            raise RegexSyntaxError("unexpected end of expression")
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise RegexSyntaxError(f"expected {ch!r} at position {self.pos} in {self.text!r}")
        self.pos += 1

    # grammar: alt := concat ('|' concat)* ; concat := repeat+ ; repeat := atom [*+?]
    def parse(self) -> RegexNode:
        node = self.parse_alt()
        if self.pos != len(self.text):
            raise RegexSyntaxError(f"trailing characters at position {self.pos} in {self.text!r}")
        return node

    def parse_alt(self) -> RegexNode:
        branches = [self.parse_concat()]
        while self.peek() == "|":
            self.take()
            branches.append(self.parse_concat())
        if len(branches) == 1:
            return branches[0]
        return RegexNode("alt", children=tuple(branches))

    def parse_concat(self) -> RegexNode:
        items: List[RegexNode] = []
        while True:
            ch = self.peek()
            if ch is None or ch in "|)}":
                break
            items.append(self.parse_repeat())
        if not items:
            return RegexNode("epsilon")
        if len(items) == 1:
            return items[0]
        return RegexNode("concat", children=tuple(items))

    def parse_repeat(self) -> RegexNode:
        node = self.parse_atom()
        while True:
            ch = self.peek()
            if ch == "*":
                self.take()
                node = RegexNode("star", children=(node,))
            elif ch == "+":
                self.take()
                node = RegexNode("plus", children=(node,))
            elif ch == "?":
                self.take()
                node = RegexNode("optional", children=(node,))
            else:
                return node

    def parse_atom(self) -> RegexNode:
        ch = self.peek()
        if ch is None:
            raise RegexSyntaxError("unexpected end of expression")
        if ch == "(":
            self.take()
            node = self.parse_alt()
            self.expect(")")
            return node
        if ch == "[":
            return self.parse_class()
        if ch == ".":
            self.take()
            return RegexNode("any")
        if ch in _META:
            raise RegexSyntaxError(f"unexpected {ch!r} at position {self.pos}")
        # either a plain letter or the start of a capture `x{...}`
        self.take()
        if self.peek() == "{":
            self.take()
            inner = self.parse_alt()
            self.expect("}")
            return RegexNode("capture", children=(inner,), variable=ch)
        return RegexNode("letter", letters=frozenset({ch}))

    def parse_class(self) -> RegexNode:
        self.expect("[")
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        letters = set()
        while self.peek() not in (None, "]"):
            letters.add(self.take())
        self.expect("]")
        if not letters:
            raise RegexSyntaxError("empty character class")
        return RegexNode("class", letters=frozenset(letters), negated=negated)


def parse_regex(text: str) -> RegexNode:
    """Parse a spanner regular expression into its AST.

    >>> parse_regex("a x{b+} c").kind
    'concat'
    """
    # whitespace is not significant; strip it for readability of examples
    cleaned = text.replace(" ", "")
    if not cleaned:
        raise RegexSyntaxError("empty regular expression")
    return _Parser(cleaned).parse()
