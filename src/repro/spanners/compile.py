"""Compile spanner regexes into word variable automata (WVAs).

The construction is a Thompson-style translation producing a nondeterministic
automaton with ε-transitions, followed by ε-elimination:

* every letter occurrence becomes one transition reading that letter;
* inside a capture ``x{...}``, every letter transition additionally carries
  the variable ``x`` (nested captures accumulate variables) — this matches
  the *extended* variable-set automata of [23]: the variables annotate the
  positions they capture;
* alternation, concatenation and repetition are the usual Thompson gadgets.

The resulting WVA is polynomial in the regex (linear number of states), and —
crucially for the paper's combined-complexity story — it is **not**
determinized at any point.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.automata.wva import WVA
from repro.errors import RegexSyntaxError
from repro.spanners.regex import RegexNode, parse_regex

__all__ = ["compile_regex", "regex_to_wva"]


class _NFABuilder:
    """Accumulates states, ε-edges and letter transitions during compilation."""

    def __init__(self, alphabet: Sequence[str]):
        self.alphabet = list(dict.fromkeys(alphabet))
        self.n_states = 0
        self.epsilon: List[Tuple[int, int]] = []
        self.transitions: List[Tuple[int, str, FrozenSet[str], int]] = []

    def new_state(self) -> int:
        state = self.n_states
        self.n_states += 1
        return state

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon.append((source, target))

    def add_letter(self, source: int, letters: Iterable[str], variables: FrozenSet[str], target: int) -> None:
        for letter in letters:
            self.transitions.append((source, letter, variables, target))

    def letters_of(self, node: RegexNode) -> List[str]:
        if node.kind == "letter":
            unknown = node.letters - set(self.alphabet)
            if unknown:
                # letters outside the declared alphabet simply never match;
                # keep them so the automaton is still well-formed
                pass
            return sorted(node.letters)
        if node.kind == "any":
            return list(self.alphabet)
        if node.kind == "class":
            if node.negated:
                return [a for a in self.alphabet if a not in node.letters]
            return sorted(node.letters)
        raise RegexSyntaxError(f"not a letter-like node: {node.kind}")


def _build(node: RegexNode, builder: _NFABuilder, variables: FrozenSet[str]) -> Tuple[int, int]:
    """Thompson construction; returns the (start, accept) states of the fragment."""
    start = builder.new_state()
    accept = builder.new_state()
    if node.kind in ("letter", "any", "class"):
        builder.add_letter(start, builder.letters_of(node), variables, accept)
    elif node.kind == "epsilon":
        builder.add_epsilon(start, accept)
    elif node.kind == "concat":
        previous = start
        for child in node.children:
            child_start, child_accept = _build(child, builder, variables)
            builder.add_epsilon(previous, child_start)
            previous = child_accept
        builder.add_epsilon(previous, accept)
    elif node.kind == "alt":
        for child in node.children:
            child_start, child_accept = _build(child, builder, variables)
            builder.add_epsilon(start, child_start)
            builder.add_epsilon(child_accept, accept)
    elif node.kind == "star":
        child_start, child_accept = _build(node.children[0], builder, variables)
        builder.add_epsilon(start, accept)
        builder.add_epsilon(start, child_start)
        builder.add_epsilon(child_accept, child_start)
        builder.add_epsilon(child_accept, accept)
    elif node.kind == "plus":
        child_start, child_accept = _build(node.children[0], builder, variables)
        builder.add_epsilon(start, child_start)
        builder.add_epsilon(child_accept, child_start)
        builder.add_epsilon(child_accept, accept)
    elif node.kind == "optional":
        child_start, child_accept = _build(node.children[0], builder, variables)
        builder.add_epsilon(start, accept)
        builder.add_epsilon(start, child_start)
        builder.add_epsilon(child_accept, accept)
    elif node.kind == "capture":
        child_start, child_accept = _build(node.children[0], builder, variables | {node.variable})
        builder.add_epsilon(start, child_start)
        builder.add_epsilon(child_accept, accept)
    else:
        raise RegexSyntaxError(f"unknown regex node kind {node.kind!r}")
    return start, accept


def _epsilon_closure(builder: _NFABuilder) -> Dict[int, Set[int]]:
    closure: Dict[int, Set[int]] = {state: {state} for state in range(builder.n_states)}
    adjacency: Dict[int, List[int]] = {}
    for source, target in builder.epsilon:
        adjacency.setdefault(source, []).append(target)
    for state in range(builder.n_states):
        stack = [state]
        seen = closure[state]
        while stack:
            current = stack.pop()
            for target in adjacency.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
    return closure


def compile_regex(regex: RegexNode, alphabet: Sequence[str], name: str = "") -> WVA:
    """Compile a parsed spanner regex over the given alphabet into a WVA."""
    builder = _NFABuilder(alphabet)
    start, accept = _build(regex, builder, frozenset())
    closure = _epsilon_closure(builder)

    # ε-elimination: a transition can be taken from any state whose closure
    # contains its source; final states are those reaching the accept state
    # through ε-moves.
    by_source: Dict[int, List[Tuple[str, FrozenSet[str], int]]] = {}
    for source, letter, variables, target in builder.transitions:
        by_source.setdefault(source, []).append((letter, variables, target))

    transitions: Set[Tuple[int, str, FrozenSet[str], int]] = set()
    for state in range(builder.n_states):
        for mid in closure[state]:
            for letter, variables, target in by_source.get(mid, ()):
                transitions.add((state, letter, variables, target))
    final = [state for state in range(builder.n_states) if accept in closure[state]]

    return WVA(
        states=range(builder.n_states),
        variables=regex.variables(),
        transitions=transitions,
        initial=[start],
        final=final,
        name=name,
    )


def regex_to_wva(text: str, alphabet: Sequence[str]) -> WVA:
    """Parse and compile a spanner regex in one step."""
    return compile_regex(parse_regex(text), alphabet, name=text)
