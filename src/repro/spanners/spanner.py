"""The document-spanner convenience API (Section 8 / Theorem 8.5).

A :class:`Spanner` wraps a spanner regex compiled to a WVA.  It can

* *materialize* all matches on a (short) document with the brute-force WVA
  oracle — handy for tests and ad-hoc use;
* build a :class:`~repro.core.enumerator.WordEnumerator` over a document,
  giving enumeration with output-linear delay and logarithmic updates of the
  text (character insertion / deletion / replacement), which is the use case
  the paper's information-extraction motivation describes.

Answers are assignments binding the capture variables to word positions; the
helper :meth:`Spanner.spans` converts an assignment into per-variable
``(start, end)`` spans (half-open intervals of positions) when the captured
positions are contiguous.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.assignments import Assignment, valuation_from_assignment
from repro.automata.wva import WVA
from repro.core.enumerator import WordRuntime, _warn_deprecated
from repro.spanners.compile import regex_to_wva

__all__ = ["Spanner"]


class Spanner:
    """A compiled document spanner (regex with capture variables)."""

    def __init__(self, pattern: str, alphabet: Sequence[str], name: Optional[str] = None):
        self.pattern = pattern
        self.alphabet = list(dict.fromkeys(alphabet))
        self.wva: WVA = regex_to_wva(pattern, self.alphabet)
        self.name = name if name is not None else pattern

    # ------------------------------------------------------------------ api
    def variables(self) -> frozenset:
        """The capture variables of the pattern."""
        return self.wva.variables

    def matches(self, document: Sequence[str]) -> Set[Assignment]:
        """Materialize all matches on a document (brute-force; small documents only)."""
        return self.wva.satisfying_assignments(list(document))

    def enumerator(self, document: Sequence[str], relation_backend: Optional[str] = None) -> WordRuntime:
        """An update-aware enumerator over the document (Theorem 8.5).

        Deprecated: pass the spanner (or its pattern) to the engine instead —
        ``Engine().add_word(document, spanner)`` — which serves the same
        runtime through the unified API.
        """
        _warn_deprecated("Spanner.enumerator", "repro.Engine().add_word(document, spanner)")
        return WordRuntime(list(document), self.wva, relation_backend=relation_backend)

    @staticmethod
    def spans(assignment: Assignment) -> Dict[object, Tuple[int, int]]:
        """Convert an assignment to per-variable ``(start, end)`` spans.

        Positions bound to a variable must be contiguous (which is the case
        for captures of contiguous sub-expressions); the span is half-open:
        ``(first position, last position + 1)``.
        """
        result: Dict[object, Tuple[int, int]] = {}
        for variable, positions in valuation_from_assignment_by_var(assignment).items():
            ordered = sorted(positions)
            result[variable] = (ordered[0], ordered[-1] + 1)
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return f"Spanner({self.pattern!r}, variables={sorted(map(str, self.variables()))})"


def valuation_from_assignment_by_var(assignment: Assignment) -> Dict[object, List[int]]:
    """Group an assignment's positions by variable (helper for span extraction)."""
    grouped: Dict[object, List[int]] = {}
    for variable, position in assignment:
        grouped.setdefault(variable, []).append(position)
    return grouped
