"""Assignments, singletons and valuations (Section 2).

The paper represents a query result as an *assignment*: a set of singletons
``⟨Z : n⟩`` pairing a (second-order) variable ``Z`` with a tree node ``n``.
An assignment is in bijection with a *valuation* mapping each node to the set
of variables it carries.  Throughout the library:

* a **singleton** is a ``(variable, node_id)`` pair (a plain tuple);
* an **assignment** is a ``frozenset`` of singletons;
* a **valuation** is a ``dict`` mapping node ids to ``frozenset`` of variables
  (nodes mapped to the empty set are omitted).

Keeping these as plain hashable Python values makes assignments directly
usable as set/dict members, which the tests and the duplicate-elimination
checks rely on heavily.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

__all__ = [
    "Singleton",
    "Assignment",
    "EMPTY_ASSIGNMENT",
    "make_singleton",
    "assignment_of",
    "assignment_from_valuation",
    "valuation_from_assignment",
    "assignment_size",
    "restrict_assignment",
    "format_assignment",
]

Singleton = Tuple[object, int]
Assignment = FrozenSet[Singleton]

#: The empty assignment (the answer corresponding to the empty valuation).
EMPTY_ASSIGNMENT: Assignment = frozenset()


def make_singleton(variable: object, node_id: int) -> Singleton:
    """Build the singleton ``⟨variable : node_id⟩``."""
    return (variable, node_id)


def assignment_of(*singletons: Singleton) -> Assignment:
    """Build an assignment from explicit singletons.

    >>> assignment_of(("x", 3), ("y", 5)) == frozenset({("x", 3), ("y", 5)})
    True
    """
    return frozenset(singletons)


def assignment_from_valuation(valuation: Mapping[int, Iterable[object]]) -> Assignment:
    """Convert a valuation (node id → variables) into an assignment."""
    return frozenset((var, node_id) for node_id, variables in valuation.items() for var in variables)


def valuation_from_assignment(assignment: Assignment) -> Dict[int, FrozenSet[object]]:
    """Convert an assignment into a valuation (node id → frozenset of variables)."""
    result: Dict[int, set] = {}
    for variable, node_id in assignment:
        result.setdefault(node_id, set()).add(variable)
    return {node_id: frozenset(variables) for node_id, variables in result.items()}


def assignment_size(assignment: Assignment) -> int:
    """Return ``|S|``, the number of singletons in the assignment."""
    return len(assignment)


def restrict_assignment(assignment: Assignment, variables: Iterable[object]) -> Assignment:
    """Keep only the singletons whose variable is in ``variables``."""
    keep = set(variables)
    return frozenset(s for s in assignment if s[0] in keep)


def format_assignment(assignment: Assignment) -> str:
    """Render an assignment as a compact, deterministic string for display."""
    parts = sorted((str(var), node_id) for var, node_id in assignment)
    return "{" + ", ".join(f"{var}:{node_id}" for var, node_id in parts) + "}"
