"""Cached single-level wire relations between a box and its children.

The relation ``R(child, B)`` restricted to single wires is the base case of
the index construction (Lemma 6.3) and is re-composed on every step of
Algorithm 3.  The wiring itself is recorded at construction time: boxes
built from a box plan (:mod:`repro.circuits.build`) reference the plan,
which carries the transposed masks (child slot → mask of box slots) and a
per-backend cache of the two wire :class:`~repro.enumeration.relations.Relation`
objects — every box built from the same plan shares them.  Boxes built
gate-by-gate fall back to transposing their per-slot input masks here, with
the result interned by content and cached on the box.  No cache ever goes
stale: gates are not rewired after a box is built — updates rebuild whole
boxes (Lemma 7.3) — and relations are immutable.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.circuits.gates import Box
from repro.enumeration.relations import Relation, get_default_backend

__all__ = ["wire_relation"]

#: content-interned wire relations (fallback path): keyed by
#: (n_lower, n_upper, masks, backend).  Within one circuit the number of
#: distinct wiring patterns is tiny compared to the number of boxes, but a
#: long-lived process building many distinct circuits would accumulate
#: entries forever, so the cache is capped (FIFO, like _COMPILED_QUERIES);
#: an evicted entry only costs a re-intern on the next miss.
_INTERNED: Dict[Tuple, Relation] = {}
_INTERNED_LIMIT = 1024


def wire_relation(box: Box, side: str, backend: Optional[str] = None) -> Relation:
    """The wire relation ``R(child, box)`` for the given side, cached per backend."""
    if backend is None:
        backend = get_default_backend()
    plan = box.wire_plan
    if plan is not None:
        rels = plan.wire_rels.get(backend)
        if rels is None:
            left_masks, right_masks = plan.wire_masks
            n_upper = len(plan.left_input_masks)
            rels = (
                Relation.from_masks(len(left_masks), n_upper, left_masks, backend=backend),
                Relation.from_masks(len(right_masks), n_upper, right_masks, backend=backend),
            )
            plan.wire_rels[backend] = rels
        return rels[0] if side == "left" else rels[1]

    key = (side, backend)
    cached = box.wire_cache.get(key)
    if cached is not None:
        return cached
    child = box.left_child if side == "left" else box.right_child
    upper_masks = box.left_input_masks if side == "left" else box.right_input_masks
    transposed = [0] * child.n_unions
    for box_slot, mask in enumerate(upper_masks):
        while mask:
            low = mask & -mask
            transposed[low.bit_length() - 1] |= 1 << box_slot
            mask ^= low
    masks = tuple(transposed)
    intern_key = (len(masks), box.n_unions, masks, backend)
    relation = _INTERNED.get(intern_key)
    if relation is None:
        relation = Relation.from_masks(len(masks), box.n_unions, masks, backend=backend)
        if len(_INTERNED) >= _INTERNED_LIMIT:
            _INTERNED.pop(next(iter(_INTERNED)))
        _INTERNED[intern_key] = relation
    box.wire_cache[key] = relation
    return relation
