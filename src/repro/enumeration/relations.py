"""∪-reachability relations between boxes (Sections 5–6).

A relation ``R(B', B)`` relates the ∪-gates of a lower box ``B'`` to the
∪-gates of an upper box ``B`` (or, during enumeration, to the positions of a
boxed set ``Γ``): ``(g', g) ∈ R`` iff there is a path of ∪-gates from ``g'``
to ``g``.  The enumeration algorithms only ever *compose* such relations,
project them to one side, or test them for emptiness; the index of Section 6
precomputes the relations needed so that all compositions at enumeration time
involve relations of size at most width².

Three composition backends are provided:

* ``"pairs"`` — the naive join over explicit pair sets, the ``O(w³)`` bound
  used in the body of the paper.  Every pair is a tuple object; composition
  builds a dict index of the upper relation and joins through it.  Simple,
  allocation-heavy, and the reference the other backends are tested against.
* ``"matrix"`` — Boolean matrix multiplication with numpy, the ``O(w^ω)``
  refinement discussed after Lemma 6.4 (Theorem 6.5).  Wins asymptotically,
  but each operation pays numpy call overhead, so it only beats the others
  once the width is large (tens of states and up).
* ``"bitset"`` — one Python-int bitmask per lower slot (bit ``u`` set iff
  ``(l, u) ∈ R``).  Composition, projection, emptiness, ``uppers_of`` and
  ``restrict_upper`` are word-parallel OR/AND loops with **zero per-pair
  object allocation**: composing through a mid slot is a single ``|=`` of a
  machine word (or a few words for widths beyond 64).  At the widths the
  circuits of Lemma 3.7 produce (width ≤ |Q|, usually well under 64) this is
  the fastest backend by a wide margin and is therefore the default.
* ``"numpy"`` — the packed, vectorized variant of ``bitset``: each relation
  stores a ``(n_lower, ⌈n_upper/64⌉)`` ``uint64`` ndarray of little-endian
  bit rows.  Emptiness, ``restrict_upper`` and equality stay packed bitwise
  ops; composition bridges once through Boolean matrices
  (``unpackbits → matmul → packbits``), so it is one vectorized call instead
  of a Python loop whose per-row OR cost grows with the Python-big-int width.
  For very wide automata (hundreds of states, i.e. many machine words per
  row) this stops paying big-int costs; at small widths plain ``bitset``
  still wins on constant factors, which is why it remains the default.

Complexity per composition of ``w×w`` relations with ``p`` pairs:
``pairs`` is ``O(p·w)`` with ``O(p)`` tuple allocations, ``matrix`` is
``O(w^ω)`` plus constant numpy overhead, ``bitset`` is ``O(w·⌈w/64⌉)`` word
operations with no allocation beyond the result masks, ``numpy`` is
``O(w^ω)`` vectorized with three numpy calls of overhead.

The backend is chosen per relation at creation time (and propagated through
compositions), with a module-level default that the benchmarks switch to
compare the backends (experiment E10).  Mixed-backend compositions resolve
to the "fastest" of the two operands' backends
(bitset > numpy > matrix > pairs).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import BackendError

__all__ = [
    "Relation",
    "set_default_backend",
    "get_default_backend",
    "validate_backend",
    "VALID_BACKENDS",
    "iter_bits",
    "mask_of",
]

_DEFAULT_BACKEND = "bitset"
_VALID_BACKENDS = ("pairs", "matrix", "bitset", "numpy")
#: the selectable composition backends, in documentation order
VALID_BACKENDS = _VALID_BACKENDS

#: interned identity relations, keyed by (n, backend) — see Relation.identity.
_IDENTITY_CACHE: Dict[Tuple[int, str], "Relation"] = {}


def validate_backend(backend: str) -> str:
    """Return ``backend`` unchanged if valid, else raise a helpful error.

    The error is a :class:`repro.errors.BackendError` (which is also a
    ``ValueError``, for callers that caught the historical type).  It lists
    the valid backends and, on a near-miss (``"bitsets"``, ``"matrx"``, ...),
    suggests the one probably meant.  Called everywhere a backend name enters
    the library (``relation_backend=`` keyword arguments,
    :func:`set_default_backend`, :class:`Relation` construction,
    ``Engine(backend=...)``) so typos fail fast with the same message instead
    of deep inside a build.
    """
    if backend in _VALID_BACKENDS:
        return backend
    message = (
        f"unknown relation backend {backend!r}; valid backends are "
        + ", ".join(repr(b) for b in _VALID_BACKENDS)
    )
    if isinstance(backend, str):
        import difflib

        close = difflib.get_close_matches(backend, _VALID_BACKENDS, n=1, cutoff=0.6)
        if close:
            message += f" (did you mean {close[0]!r}?)"
    raise BackendError(message)


def set_default_backend(backend: str) -> None:
    """Set the default composition backend (one of :data:`VALID_BACKENDS`)."""
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = validate_backend(backend)


def get_default_backend() -> str:
    """Return the current default composition backend."""
    return _DEFAULT_BACKEND


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of a mask, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(bits: Iterable[int]) -> int:
    """The bitmask with exactly the given bit positions set."""
    mask = 0
    for bit in bits:
        mask |= 1 << bit
    return mask


def _masks_from_matrix(matrix: np.ndarray) -> List[int]:
    """Per-row bitmasks of a Boolean matrix (row index = lower slot)."""
    if matrix.size == 0:
        return [0] * matrix.shape[0]
    packed = np.packbits(matrix, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def _np_words(n_upper: int) -> int:
    """Number of uint64 words per packed row for ``n_upper`` upper slots."""
    return (n_upper + 63) >> 6


def _np_zero_rows(n_lower: int, n_upper: int) -> np.ndarray:
    return np.zeros((n_lower, _np_words(n_upper)), dtype=np.uint64)


def _np_from_masks(masks: Sequence[int], n_upper: int) -> np.ndarray:
    """Pack per-lower Python-int bitmasks into a (n_lower, n_words) uint64 array."""
    n_words = _np_words(n_upper)
    rows = np.empty((len(masks), n_words), dtype=np.uint64)
    n_bytes = n_words * 8
    for i, mask in enumerate(masks):
        rows[i] = np.frombuffer(int(mask).to_bytes(n_bytes, "little"), dtype=np.uint64)
    return rows


def _masks_from_np(rows: np.ndarray) -> List[int]:
    """Per-lower Python-int bitmasks of a packed uint64 row array."""
    return [int.from_bytes(row.tobytes(), "little") for row in rows]


def _np_pack_bool(matrix: np.ndarray) -> np.ndarray:
    """Pack a Boolean (n_lower, n_upper) matrix into little-endian uint64 rows."""
    n_lower, n_upper = matrix.shape
    n_words = _np_words(n_upper)
    if n_lower == 0 or n_words == 0:
        return np.zeros((n_lower, n_words), dtype=np.uint64)
    packed = np.packbits(matrix, axis=1, bitorder="little")
    if packed.shape[1] != n_words * 8:
        padded = np.zeros((n_lower, n_words * 8), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


def _np_unpack_bool(rows: np.ndarray, n_upper: int) -> np.ndarray:
    """Unpack uint64 rows back into a Boolean (n_lower, n_upper) matrix."""
    n_lower = rows.shape[0]
    if n_lower == 0 or n_upper == 0:
        return np.zeros((n_lower, n_upper), dtype=bool)
    bits = np.unpackbits(
        np.ascontiguousarray(rows).view(np.uint8), axis=1, count=n_upper, bitorder="little"
    )
    return bits.astype(bool, copy=False)


class Relation:
    """A binary relation between ``n_lower`` lower slots and ``n_upper`` upper slots."""

    __slots__ = (
        "n_lower",
        "n_upper",
        "backend",
        "_pairs",
        "_matrix",
        "_masks",
        "_np",
        "_canonical",
    )

    def __init__(
        self,
        n_lower: int,
        n_upper: int,
        pairs: Iterable[Tuple[int, int]] = (),
        backend: Optional[str] = None,
    ):
        self.n_lower = n_lower
        self.n_upper = n_upper
        self.backend = validate_backend(backend) if backend is not None else _DEFAULT_BACKEND
        self._pairs: Optional[FrozenSet[Tuple[int, int]]] = None
        self._matrix: Optional[np.ndarray] = None
        self._masks: Optional[List[int]] = None
        self._np: Optional[np.ndarray] = None
        self._canonical: Optional[Tuple[int, ...]] = None
        if self.backend == "matrix":
            matrix = np.zeros((n_lower, n_upper), dtype=bool)
            pair_list = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
            if pair_list:
                arr = np.asarray(pair_list, dtype=np.intp)
                matrix[arr[:, 0], arr[:, 1]] = True
            self._matrix = matrix
        elif self.backend == "bitset":
            masks = [0] * n_lower
            for lower, upper in pairs:
                masks[lower] |= 1 << upper
            self._masks = masks
        elif self.backend == "numpy":
            rows = _np_zero_rows(n_lower, n_upper)
            for lower, upper in pairs:
                rows[lower, upper >> 6] |= np.uint64(1 << (upper & 63))
            self._np = rows
        else:
            self._pairs = frozenset(pairs)

    # ------------------------------------------------------------ constructors
    @classmethod
    def identity(cls, n: int, backend: Optional[str] = None) -> "Relation":
        """The identity relation on ``n`` slots (interned per size and backend).

        Relations are immutable, so the index construction — which needs one
        identity per box — shares a single object per (n, backend).
        """
        if backend is None:
            backend = _DEFAULT_BACKEND
        cached = _IDENTITY_CACHE.get((n, backend))
        if cached is not None:
            return cached
        rel = cls(n, n, (), backend=backend)
        if rel.backend == "bitset":
            rel._masks = [1 << i for i in range(n)]
        elif rel.backend == "matrix":
            rel._matrix = np.eye(n, dtype=bool)
        elif rel.backend == "numpy":
            rel._np = _np_pack_bool(np.eye(n, dtype=bool))
        else:
            rel._pairs = frozenset((i, i) for i in range(n))
        _IDENTITY_CACHE[(n, backend)] = rel
        return rel

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, backend: Optional[str] = None) -> "Relation":
        """Build a relation from a Boolean matrix (lower × upper)."""
        rel = cls(matrix.shape[0], matrix.shape[1], (), backend=backend)
        if rel.backend == "matrix":
            rel._matrix = matrix.astype(bool)
        elif rel.backend == "bitset":
            rel._masks = _masks_from_matrix(matrix.astype(bool))
        elif rel.backend == "numpy":
            rel._np = _np_pack_bool(matrix.astype(bool))
        else:
            lowers, uppers = np.nonzero(matrix)
            rel._pairs = frozenset(zip(lowers.tolist(), uppers.tolist()))
        return rel

    @classmethod
    def from_masks(
        cls, n_lower: int, n_upper: int, masks: Sequence[int], backend: Optional[str] = None
    ) -> "Relation":
        """Build a relation from per-lower-slot bitmasks of upper slots."""
        rel = cls(n_lower, n_upper, (), backend=backend)
        if rel.backend == "bitset":
            rel._masks = list(masks)
        elif rel.backend == "numpy":
            rel._np = _np_from_masks(masks, n_upper)
        elif rel.backend == "matrix":
            matrix = np.zeros((n_lower, n_upper), dtype=bool)
            for lower, mask in enumerate(masks):
                for upper in iter_bits(mask):
                    matrix[lower, upper] = True
            rel._matrix = matrix
        else:
            rel._pairs = frozenset(
                (lower, upper) for lower, mask in enumerate(masks) for upper in iter_bits(mask)
            )
        return rel

    # ----------------------------------------------------------------- access
    def pairs(self) -> FrozenSet[Tuple[int, int]]:
        """Return the relation as a frozenset of (lower, upper) pairs."""
        if self._pairs is None:
            if self._masks is None and self._matrix is not None:
                lowers, uppers = np.nonzero(self._matrix)
                self._pairs = frozenset(zip(lowers.tolist(), uppers.tolist()))
            else:
                self._pairs = frozenset(
                    (lower, upper)
                    for lower, mask in enumerate(self._masks_ref())
                    for upper in iter_bits(mask)
                )
        return self._pairs

    def matrix(self) -> np.ndarray:
        """Return the relation as a Boolean matrix (lower × upper)."""
        if self._matrix is None:
            if self._np is not None:
                self._matrix = _np_unpack_bool(self._np, self.n_upper)
                return self._matrix
            matrix = np.zeros((self.n_lower, self.n_upper), dtype=bool)
            if self._masks is not None:
                for lower, mask in enumerate(self._masks):
                    for upper in iter_bits(mask):
                        matrix[lower, upper] = True
            else:
                for lower, upper in self._pairs:
                    matrix[lower, upper] = True
            self._matrix = matrix
        return self._matrix

    def _masks_ref(self) -> List[int]:
        """The cached per-lower-slot bitmask list (internal: NOT to be mutated).

        Relations are aggressively shared (interned identities and wire
        relations, plan-level caches), so internal hot paths read this shared
        list while the public :meth:`masks` hands out a copy.
        """
        if self._masks is None:
            if self._pairs is not None:
                masks = [0] * self.n_lower
                for lower, upper in self._pairs:
                    masks[lower] |= 1 << upper
                self._masks = masks
            elif self._np is not None:
                self._masks = _masks_from_np(self._np)
            else:
                self._masks = _masks_from_matrix(self._matrix)
        return self._masks

    def _np_ref(self) -> np.ndarray:
        """The cached packed uint64 row array (internal: NOT to be mutated)."""
        if self._np is None:
            if self._matrix is not None and self._masks is None:
                self._np = _np_pack_bool(self._matrix)
            else:
                self._np = _np_from_masks(self._masks_ref(), self.n_upper)
        return self._np

    def masks(self) -> List[int]:
        """Return the relation as per-lower-slot bitmasks of upper slots."""
        return list(self._masks_ref())

    def masks_view(self) -> List[int]:
        """Return the per-lower-slot bitmask list *without copying*.

        The returned list is the relation's internal cache and MUST be
        treated as read-only — relations are immutable and aggressively
        shared (interned identities, plan-level wire relations, stored index
        relations).  This is the accessor the mask-native enumeration of
        Algorithm 2 uses to thread Γ-position masks through compositions with
        zero per-call allocation; it works for every backend (``pairs`` and
        ``matrix`` relations convert once and cache the mask form).
        """
        return self._masks_ref()

    def is_empty(self) -> bool:
        """Return ``True`` if the relation contains no pair."""
        if self._masks is not None:
            return not any(self._masks)
        if self._pairs is not None:
            return not self._pairs
        if self._np is not None:
            return not self._np.any()
        return not self._matrix.any()

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __len__(self) -> int:
        if self._masks is not None:
            return sum(mask.bit_count() for mask in self._masks)
        if self._pairs is not None:
            return len(self._pairs)
        if self._np is not None:
            return int(np.bitwise_count(self._np).sum())
        return int(self._matrix.sum())

    def _canonical_masks(self) -> Tuple[int, ...]:
        """A cached, backend-independent canonical form (per-lower bitmasks)."""
        if self._canonical is None:
            self._canonical = tuple(self._masks_ref())
        return self._canonical

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Relation):
            return NotImplemented
        if self.n_lower != other.n_lower or self.n_upper != other.n_upper:
            return False
        return self._canonical_masks() == other._canonical_masks()

    def __hash__(self) -> int:
        return hash((self.n_lower, self.n_upper, self._canonical_masks()))

    def lower_slots(self) -> FrozenSet[int]:
        """Return ``π₁(R)``: the lower slots related to at least one upper slot."""
        if self._masks is not None:
            return frozenset(lower for lower, mask in enumerate(self._masks) if mask)
        if self.backend == "matrix" and self._matrix is not None:
            return frozenset(np.nonzero(self._matrix.any(axis=1))[0].tolist())
        return frozenset(lower for lower, _upper in self.pairs())

    def lower_mask(self) -> int:
        """Return ``π₁(R)`` as a bitmask over lower slots."""
        if self._masks is not None:
            mask = 0
            for lower, row in enumerate(self._masks):
                if row:
                    mask |= 1 << lower
            return mask
        if self._np is not None:
            mask = 0
            for lower in np.nonzero(self._np.any(axis=1))[0].tolist():
                mask |= 1 << lower
            return mask
        return mask_of(self.lower_slots())

    def upper_slots(self) -> FrozenSet[int]:
        """Return ``π₂(R)``: the upper slots related to at least one lower slot."""
        if self._masks is not None:
            combined = 0
            for mask in self._masks:
                combined |= mask
            return frozenset(iter_bits(combined))
        if self.backend == "matrix" and self._matrix is not None:
            return frozenset(np.nonzero(self._matrix.any(axis=0))[0].tolist())
        return frozenset(upper for _lower, upper in self.pairs())

    def uppers_of(self, lower: int) -> FrozenSet[int]:
        """Return the upper slots related to the given lower slot."""
        if self._masks is not None:
            return frozenset(iter_bits(self._masks[lower]))
        if self.backend == "matrix" and self._matrix is not None:
            return frozenset(np.nonzero(self._matrix[lower])[0].tolist())
        return frozenset(u for l, u in self.pairs() if l == lower)

    def uppers_by_lower(self) -> Dict[int, FrozenSet[int]]:
        """Return the relation as a mapping lower slot → set of upper slots."""
        if self._masks is not None:
            return {
                lower: frozenset(iter_bits(mask))
                for lower, mask in enumerate(self._masks)
                if mask
            }
        if self.backend == "matrix" and self._matrix is not None:
            lowers, uppers = np.nonzero(self._matrix)
            grouped: Dict[int, List[int]] = {}
            for lower, upper in zip(lowers.tolist(), uppers.tolist()):
                grouped.setdefault(lower, []).append(upper)
            return {lower: frozenset(ups) for lower, ups in grouped.items()}
        mapping: Dict[int, Set[int]] = {}
        for lower, upper in self.pairs():
            mapping.setdefault(lower, set()).add(upper)
        return {lower: frozenset(uppers) for lower, uppers in mapping.items()}

    # ------------------------------------------------------------- composition
    def compose(self, upper_relation: "Relation") -> "Relation":
        """Compose ``self : lower × mid`` with ``upper_relation : mid × upper``.

        The result relates ``lower`` to ``upper``; this is the operation
        written ``R(B, B') ∘ R`` in Algorithm 3 and in Lemma 6.3.  The result
        backend is the "fastest" of the operands'
        (bitset > numpy > matrix > pairs).
        """
        if self.n_upper != upper_relation.n_lower:
            raise ValueError(
                f"cannot compose relations: mid dimensions differ "
                f"({self.n_upper} vs {upper_relation.n_lower})"
            )
        if self.backend == "bitset" or upper_relation.backend == "bitset":
            upper_masks = upper_relation._masks_ref()
            out: List[int] = []
            for mid_mask in self._masks_ref():
                acc = 0
                while mid_mask:
                    low = mid_mask & -mid_mask
                    acc |= upper_masks[low.bit_length() - 1]
                    mid_mask ^= low
                out.append(acc)
            return Relation.from_masks(self.n_lower, upper_relation.n_upper, out, backend="bitset")
        if self.backend == "numpy" or upper_relation.backend == "numpy":
            # Bridge once through Boolean matrices: unpack → matmul → repack.
            # Boolean matmul is OR-of-ANDs, exactly relational composition.
            sel = _np_unpack_bool(self._np_ref(), self.n_upper)
            ups = _np_unpack_bool(upper_relation._np_ref(), upper_relation.n_upper)
            result = Relation(self.n_lower, upper_relation.n_upper, (), backend="numpy")
            result._np = _np_pack_bool(np.matmul(sel, ups))
            return result
        if self.backend == "matrix" or upper_relation.backend == "matrix":
            matrix = np.matmul(self.matrix(), upper_relation.matrix())
            return Relation.from_matrix(matrix, backend="matrix")
        # Naive join on pair sets: index the upper relation by its lower side.
        by_mid: Dict[int, List[int]] = {}
        for mid, upper in upper_relation.pairs():
            by_mid.setdefault(mid, []).append(upper)
        joined: Set[Tuple[int, int]] = set()
        for lower, mid in self.pairs():
            for upper in by_mid.get(mid, ()):
                joined.add((lower, upper))
        return Relation(self.n_lower, upper_relation.n_upper, joined, backend="pairs")

    def restrict_upper(self, uppers: Iterable[int]) -> "Relation":
        """Keep only the pairs whose upper slot is in ``uppers``."""
        if self.backend == "bitset":
            keep_mask = mask_of(uppers)
            return Relation.from_masks(
                self.n_lower,
                self.n_upper,
                [mask & keep_mask for mask in self._masks_ref()],
                backend="bitset",
            )
        if self.backend == "numpy":
            keep_mask = mask_of(uppers)
            keep_row = np.frombuffer(
                keep_mask.to_bytes(_np_words(self.n_upper) * 8, "little"), dtype=np.uint64
            )
            result = Relation(self.n_lower, self.n_upper, (), backend="numpy")
            result._np = self._np_ref() & keep_row
            return result
        if self.backend == "matrix":
            keep_cols = np.zeros(self.n_upper, dtype=bool)
            for upper in uppers:
                keep_cols[upper] = True
            return Relation.from_matrix(self.matrix() & keep_cols, backend="matrix")
        keep = set(uppers)
        return Relation(
            self.n_lower,
            self.n_upper,
            (p for p in self.pairs() if p[1] in keep),
            backend=self.backend,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Relation({self.n_lower}x{self.n_upper}, {len(self)} pairs, {self.backend})"
