"""∪-reachability relations between boxes (Sections 5–6).

A relation ``R(B', B)`` relates the ∪-gates of a lower box ``B'`` to the
∪-gates of an upper box ``B`` (or, during enumeration, to the positions of a
boxed set ``Γ``): ``(g', g) ∈ R`` iff there is a path of ∪-gates from ``g'``
to ``g``.  The enumeration algorithms only ever *compose* such relations,
project them to one side, or test them for emptiness; the index of Section 6
precomputes the relations needed so that all compositions at enumeration time
involve relations of size at most width².

Two composition backends are provided:

* ``"pairs"`` — the naive join over explicit pair sets, the ``O(w³)`` bound
  used in the body of the paper;
* ``"matrix"`` — Boolean matrix multiplication with numpy, the ``O(w^ω)``
  refinement discussed after Lemma 6.4 (Theorem 6.5).

The backend is chosen per relation at creation time (and propagated through
compositions), with a module-level default that the benchmarks switch to
compare the two (experiment E10).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

__all__ = ["Relation", "set_default_backend", "get_default_backend"]

_DEFAULT_BACKEND = "pairs"
_VALID_BACKENDS = ("pairs", "matrix")


def set_default_backend(backend: str) -> None:
    """Set the default composition backend (``"pairs"`` or ``"matrix"``)."""
    global _DEFAULT_BACKEND
    if backend not in _VALID_BACKENDS:
        raise ValueError(f"unknown relation backend {backend!r}; expected one of {_VALID_BACKENDS}")
    _DEFAULT_BACKEND = backend


def get_default_backend() -> str:
    """Return the current default composition backend."""
    return _DEFAULT_BACKEND


class Relation:
    """A binary relation between ``n_lower`` lower slots and ``n_upper`` upper slots."""

    __slots__ = ("n_lower", "n_upper", "backend", "_pairs", "_matrix")

    def __init__(
        self,
        n_lower: int,
        n_upper: int,
        pairs: Iterable[Tuple[int, int]] = (),
        backend: Optional[str] = None,
    ):
        self.n_lower = n_lower
        self.n_upper = n_upper
        self.backend = backend if backend is not None else _DEFAULT_BACKEND
        if self.backend not in _VALID_BACKENDS:
            raise ValueError(f"unknown relation backend {self.backend!r}")
        self._pairs: Optional[FrozenSet[Tuple[int, int]]] = None
        self._matrix: Optional[np.ndarray] = None
        if self.backend == "matrix":
            matrix = np.zeros((n_lower, n_upper), dtype=bool)
            for lower, upper in pairs:
                matrix[lower, upper] = True
            self._matrix = matrix
        else:
            self._pairs = frozenset(pairs)

    # ------------------------------------------------------------ constructors
    @classmethod
    def identity(cls, n: int, backend: Optional[str] = None) -> "Relation":
        """The identity relation on ``n`` slots."""
        return cls(n, n, ((i, i) for i in range(n)), backend=backend)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, backend: Optional[str] = None) -> "Relation":
        """Build a relation from a Boolean matrix (lower × upper)."""
        rel = cls(matrix.shape[0], matrix.shape[1], (), backend=backend)
        if rel.backend == "matrix":
            rel._matrix = matrix.astype(bool)
        else:
            lowers, uppers = np.nonzero(matrix)
            rel._pairs = frozenset(zip(lowers.tolist(), uppers.tolist()))
        return rel

    # ----------------------------------------------------------------- access
    def pairs(self) -> FrozenSet[Tuple[int, int]]:
        """Return the relation as a frozenset of (lower, upper) pairs."""
        if self._pairs is None:
            lowers, uppers = np.nonzero(self._matrix)
            self._pairs = frozenset(zip(lowers.tolist(), uppers.tolist()))
        return self._pairs

    def matrix(self) -> np.ndarray:
        """Return the relation as a Boolean matrix (lower × upper)."""
        if self._matrix is None:
            matrix = np.zeros((self.n_lower, self.n_upper), dtype=bool)
            for lower, upper in self._pairs:
                matrix[lower, upper] = True
            self._matrix = matrix
        return self._matrix

    def is_empty(self) -> bool:
        """Return ``True`` if the relation contains no pair."""
        if self._pairs is not None:
            return not self._pairs
        return not self._matrix.any()

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __len__(self) -> int:
        return len(self.pairs())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.n_lower == other.n_lower
            and self.n_upper == other.n_upper
            and self.pairs() == other.pairs()
        )

    def __hash__(self) -> int:
        return hash((self.n_lower, self.n_upper, self.pairs()))

    def lower_slots(self) -> FrozenSet[int]:
        """Return ``π₁(R)``: the lower slots related to at least one upper slot."""
        if self.backend == "matrix" and self._matrix is not None:
            return frozenset(np.nonzero(self._matrix.any(axis=1))[0].tolist())
        return frozenset(lower for lower, _upper in self.pairs())

    def upper_slots(self) -> FrozenSet[int]:
        """Return ``π₂(R)``: the upper slots related to at least one lower slot."""
        if self.backend == "matrix" and self._matrix is not None:
            return frozenset(np.nonzero(self._matrix.any(axis=0))[0].tolist())
        return frozenset(upper for _lower, upper in self.pairs())

    def uppers_of(self, lower: int) -> FrozenSet[int]:
        """Return the upper slots related to the given lower slot."""
        if self.backend == "matrix" and self._matrix is not None:
            return frozenset(np.nonzero(self._matrix[lower])[0].tolist())
        return frozenset(u for l, u in self.pairs() if l == lower)

    def uppers_by_lower(self) -> Dict[int, FrozenSet[int]]:
        """Return the relation as a mapping lower slot → set of upper slots."""
        mapping: Dict[int, Set[int]] = {}
        for lower, upper in self.pairs():
            mapping.setdefault(lower, set()).add(upper)
        return {lower: frozenset(uppers) for lower, uppers in mapping.items()}

    # ------------------------------------------------------------- composition
    def compose(self, upper_relation: "Relation") -> "Relation":
        """Compose ``self : lower × mid`` with ``upper_relation : mid × upper``.

        The result relates ``lower`` to ``upper``; this is the operation
        written ``R(B, B') ∘ R`` in Algorithm 3 and in Lemma 6.3.
        """
        if self.n_upper != upper_relation.n_lower:
            raise ValueError(
                f"cannot compose relations: mid dimensions differ "
                f"({self.n_upper} vs {upper_relation.n_lower})"
            )
        if self.backend == "matrix" or upper_relation.backend == "matrix":
            matrix = np.matmul(self.matrix(), upper_relation.matrix())
            return Relation.from_matrix(matrix, backend="matrix")
        # Naive join on pair sets: index the upper relation by its lower side.
        by_mid: Dict[int, List[int]] = {}
        for mid, upper in upper_relation.pairs():
            by_mid.setdefault(mid, []).append(upper)
        out: Set[Tuple[int, int]] = set()
        for lower, mid in self.pairs():
            for upper in by_mid.get(mid, ()):
                out.add((lower, upper))
        return Relation(self.n_lower, upper_relation.n_upper, out, backend="pairs")

    def restrict_upper(self, uppers: Iterable[int]) -> "Relation":
        """Keep only the pairs whose upper slot is in ``uppers``."""
        keep = set(uppers)
        return Relation(
            self.n_lower,
            self.n_upper,
            (p for p in self.pairs() if p[1] in keep),
            backend=self.backend,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Relation({self.n_lower}x{self.n_upper}, {len(self.pairs())} pairs, {self.backend})"
