"""Top-level enumeration on an assignment circuit (Theorem 6.5).

``CircuitEnumerator`` bundles an assignment circuit, its index and the
duplicate-free enumeration of Sections 5–6 into the object the rest of the
library uses:

* preprocessing = building the index (:func:`repro.enumeration.index.build_index`),
* ``assignments()`` enumerates the satisfying assignments of the automaton on
  the tree the circuit was built for: the boxed set of the final states' root
  gates, plus the empty assignment when a final 0-state gate is ⊤,
* ``delay_probe()`` is a measurement helper used by the benchmarks: it
  reports the per-answer wall-clock delays.

The same class is reused unchanged by the incremental pipeline: after an
update rebuilds the trunk boxes and their index entries, a fresh
``CircuitEnumerator`` view over the (new) root box restarts enumeration, as
the paper's update model prescribes.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.assignments import EMPTY_ASSIGNMENT, Assignment
from repro.circuits.gates import BOTTOM, TOP, AssignmentCircuit, Box, UnionGate
from repro.enumeration.box_enum import indexed_box_enum, naive_box_enum
from repro.enumeration.duplicate_free import enumerate_boxed_masks, enumerate_boxed_set
from repro.enumeration.index import build_index
from repro.enumeration.relations import get_default_backend, validate_backend

__all__ = ["CircuitEnumerator", "root_boxed_set"]


def root_boxed_set(root_box: Box, final_states) -> Tuple[List[UnionGate], bool]:
    """The boxed set of final-state root gates and the empty-answer flag.

    The boxed set contains the gates ``γ(root, q)`` that are ∪-gates for
    final states ``q``; the flag is ``True`` when some final state's root
    gate is ⊤, i.e. when the empty assignment is an answer.  Shared by
    :class:`CircuitEnumerator` and the serving layer's cursors so the two
    can never diverge on empty-answer/dedup semantics.
    """
    gates: List[UnionGate] = []
    empty_answer = False
    seen = set()
    for state in final_states:
        gate = root_box.state_gate.get(state, BOTTOM)
        if gate is TOP:
            empty_answer = True
        elif gate is not BOTTOM and id(gate) not in seen:
            seen.add(id(gate))
            gates.append(gate)
    return gates, empty_answer


class CircuitEnumerator:
    """Enumerate the satisfying assignments captured by an assignment circuit."""

    def __init__(
        self,
        circuit: AssignmentCircuit,
        use_index: bool = True,
        relation_backend: Optional[str] = None,
        build: bool = True,
    ):
        self.circuit = circuit
        self.use_index = use_index
        if relation_backend is not None:
            validate_backend(relation_backend)
        self.relation_backend = relation_backend
        #: optional per-answer delay hook (seconds per produced answer); set
        #: by the serving layer's DelayMonitor.  ``None`` (default) leaves the
        #: enumeration loops untouched.
        self.on_delay: Optional[Callable[[float], None]] = None
        if use_index and build:
            self.preprocess()

    # ------------------------------------------------------------ preprocessing
    def preprocess(self) -> None:
        """Build the index of Definition 6.1 over the whole circuit (Lemma 6.3)."""
        build_index(self.circuit, relation_backend=self.relation_backend)

    # -------------------------------------------------------------- enumeration
    def _box_enum(self):
        """The box-enumeration procedure, bound to this enumerator's backend.

        Threading ``relation_backend`` into the initial Γ-relation keeps the
        *entire* enumeration-time composition chain on the requested backend
        (compose propagates the fastest operand backend, so a default-backend
        Γ would silently convert the chain).
        """
        procedure = indexed_box_enum if self.use_index else naive_box_enum
        if self.relation_backend is None:
            return procedure
        backend = self.relation_backend
        return lambda gamma: procedure(gamma, backend=backend)

    def _use_mask_path(self) -> bool:
        """True when enumeration should run the mask-native fast path.

        The mask path *is* the bitset composition chain (word-parallel
        Γ-position masks), so it is taken exactly when the indexed procedure
        would run on the ``bitset`` backend or its packed ``numpy`` variant
        (whose index relations hand out the same cached mask lists via
        ``masks_view``); ``pairs``/``matrix`` requests keep the generic
        relation-based chain so the backend ablation (experiment E10) still
        measures what it claims to.
        """
        if not self.use_index:
            return False
        backend = self.relation_backend or get_default_backend()
        return backend in ("bitset", "numpy")

    def root_boxed_set(self, final_states: Optional[Sequence[object]] = None) -> Tuple[List[UnionGate], bool]:
        """Return the boxed set of final-state root gates and the empty-answer flag.

        The boxed set contains the gates ``γ(root, q)`` that are ∪-gates for
        final states ``q``; the flag is ``True`` when some final state's root
        gate is ⊤, i.e. when the empty assignment is an answer.
        """
        states = self.circuit.automaton.final if final_states is None else final_states
        return root_boxed_set(self.circuit.root_box, states)

    def assignments(self, final_states: Optional[Sequence[object]] = None) -> Iterator[Assignment]:
        """Enumerate the satisfying assignments, without duplicates.

        The empty assignment (if it is an answer) is produced first, then the
        non-empty assignments with the delay guarantees of Theorem 6.5.
        """
        gates, empty_answer = self.root_boxed_set(final_states)
        if empty_answer:
            yield EMPTY_ASSIGNMENT
        if not gates:
            return
        on_delay = self.on_delay
        if self._use_mask_path():
            # Mask-native fast path: Assignment objects are materialized at
            # this boundary; the position-mask provenance is dropped unread
            # (never converted to a gate set).
            iterator = enumerate_boxed_masks(gates)
            if on_delay is not None:
                iterator.on_delay = on_delay
            for assignment, _mask in iterator:
                yield assignment
        elif on_delay is None:
            for assignment, _provenance in enumerate_boxed_set(gates, self._box_enum()):
                yield assignment
        else:
            source = iter(enumerate_boxed_set(gates, self._box_enum()))
            while True:
                start = time.perf_counter()
                try:
                    assignment, _provenance = next(source)
                except StopIteration:
                    return
                on_delay(time.perf_counter() - start)
                yield assignment

    def assignments_of_gate(self, gate: UnionGate) -> Iterator[Assignment]:
        """Enumerate ``S(gate)`` for an arbitrary ∪-gate of the circuit."""
        if self._use_mask_path():
            for assignment, _mask in enumerate_boxed_masks([gate]):
                yield assignment
            return
        for assignment, _provenance in enumerate_boxed_set([gate], self._box_enum()):
            yield assignment

    def count(self, limit: Optional[int] = None) -> int:
        """Count answers by enumeration (stops early at ``limit`` if given)."""
        total = 0
        for _ in self.assignments():
            total += 1
            if limit is not None and total >= limit:
                break
        return total

    def first(self, k: int) -> List[Assignment]:
        """Return the first ``k`` answers (useful for top-k style probing)."""
        result: List[Assignment] = []
        for assignment in self.assignments():
            result.append(assignment)
            if len(result) >= k:
                break
        return result

    # -------------------------------------------------------------- measurement
    def delay_probe(self, max_answers: Optional[int] = None) -> List[float]:
        """Return the wall-clock delay (seconds) before each produced answer.

        Index 0 is the time to the first answer; used by the delay benchmarks
        (experiment E3) to check that delays do not grow with the tree.
        """
        delays: List[float] = []
        last = time.perf_counter()
        for _ in self.assignments():
            now = time.perf_counter()
            delays.append(now - last)
            last = now
            if max_answers is not None and len(delays) >= max_answers:
                break
        return delays
