"""Algorithm 1: simple enumeration with duplicates (Section 4).

Given a ∪-gate ``g`` of a decomposable set circuit, enumerate the assignments
of ``S(g)``.  The algorithm follows Observation 4.1: walk down ∪-only paths
(``enum_dupes↓``) to reach var-gates and ×-gates, emit var-gate singletons
directly, and for ×-gates combine the enumerations of the two inputs.

As the paper points out, this algorithm has two deliberate flaws that the
following sections repair: the same assignment can be produced many times
(once per run of the automaton, essentially), and the delay is proportional
to the depth of the circuit.  It is kept in the library both for exposition
and because its multiset of outputs is a useful oracle in tests (each
assignment must appear at least once, and exactly once when the underlying
automaton is unambiguous).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.assignments import Assignment
from repro.circuits.gates import ProdGate, UnionGate, VarGate
from repro.errors import CircuitStructureError

__all__ = ["enumerate_with_duplicates", "iter_down_with_duplicates"]


def iter_down_with_duplicates(gate: UnionGate) -> Iterator[object]:
    """``enum_dupes↓(g)``: yield the var-/×-gates reachable by ∪-only paths.

    Gates are yielded once per witnessing path (hence possibly several
    times), by a preorder traversal of the ∪-wires below ``gate``.
    """
    stack: List[object] = [gate]
    while stack:
        current = stack.pop()
        if isinstance(current, UnionGate):
            # Push inputs in reverse so they are visited left to right.
            for inp in reversed(current.inputs):
                stack.append(inp)
        elif isinstance(current, (VarGate, ProdGate)):
            yield current
        else:
            raise CircuitStructureError(f"unexpected gate {current!r} below a ∪-gate")


def enumerate_with_duplicates(gate: UnionGate) -> Iterator[Assignment]:
    """Algorithm 1: enumerate ``S(gate)`` (with duplicates).

    The delay between outputs is ``O(depth(C) × |S|)`` as in Proposition 4.2;
    Python generators provide the paused-thread semantics the paper assumes
    for the recursive sub-enumerations.
    """
    for lower in iter_down_with_duplicates(gate):
        if isinstance(lower, VarGate):
            yield lower.assignment
        else:
            for left_assignment in enumerate_with_duplicates(lower.left):
                for right_assignment in enumerate_with_duplicates(lower.right):
                    yield left_assignment | right_assignment
