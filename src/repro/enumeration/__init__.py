"""Enumeration algorithms on assignment circuits (Sections 4-6)."""

from repro.enumeration.relations import Relation, set_default_backend, get_default_backend
from repro.enumeration.simple import enumerate_with_duplicates
from repro.enumeration.duplicate_free import enumerate_boxed_masks, enumerate_boxed_set
from repro.enumeration.index import BoxIndex, build_index, build_box_index
from repro.enumeration.box_enum import indexed_box_enum, naive_box_enum
from repro.enumeration.assignment_iter import CircuitEnumerator

__all__ = [
    "Relation",
    "set_default_backend",
    "get_default_backend",
    "enumerate_with_duplicates",
    "enumerate_boxed_set",
    "enumerate_boxed_masks",
    "BoxIndex",
    "build_index",
    "build_box_index",
    "naive_box_enum",
    "indexed_box_enum",
    "CircuitEnumerator",
]
