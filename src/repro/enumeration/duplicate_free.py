"""Algorithm 2: duplicate-free enumeration of a boxed set (Section 5).

``enumerate_boxed_set(Γ)`` enumerates the assignments of ``S(Γ)`` — the union
of the sets captured by the ∪-gates of the boxed set ``Γ`` — without
duplicates, and returns with every assignment its *provenance*
``Prov(S, Γ) = {g ∈ Γ | S ∈ S(g)}`` (the provenance is what the recursive
calls need to stay duplicate-free across the two sides of ×-gates).

The duplicate-freeness argument (Theorem 5.3) rests on Lemma 5.1: in a
complete structured DNNF, the box of a var-/×-gate capturing an assignment
``S`` is *determined* by ``S`` (it is the lca of the leaf boxes of the
variables of ``S``), so enumerating box-wise — one interesting box at a time,
via ``box-enum`` — partitions the assignments, and inside one box the v-tree
splits each assignment uniquely into a left and a right part.

The ``box_enum`` argument selects the box-enumeration procedure: the naive
walk of Section 5 or the index-accelerated Algorithm 3; the delay of the
overall enumeration is ``O(|S| · (Δ + w³))`` where ``Δ`` is the delay of the
chosen box enumeration.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.assignments import Assignment
from repro.circuits.gates import Box, ProdGate, UnionGate, VarGate
from repro.enumeration.box_enum import indexed_box_enum
from repro.enumeration.relations import Relation

__all__ = ["enumerate_boxed_set"]

BoxEnumFn = Callable[[Sequence[UnionGate]], Iterator[Tuple[Box, Relation]]]


def enumerate_boxed_set(
    gamma: Sequence[UnionGate],
    box_enum: BoxEnumFn = indexed_box_enum,
) -> Iterator[Tuple[Assignment, FrozenSet[UnionGate]]]:
    """Enumerate ``S(Γ)`` without duplicates, with provenance (Algorithm 2).

    Parameters
    ----------
    gamma:
        The boxed set ``Γ``: a non-empty sequence of ∪-gates of one box.
    box_enum:
        The box-enumeration procedure (:func:`indexed_box_enum` by default,
        :func:`~repro.enumeration.box_enum.naive_box_enum` for the
        depth-dependent variant of Section 5).

    Yields
    ------
    (assignment, provenance):
        Each assignment of ``S(Γ)`` exactly once, together with the subset of
        ``Γ`` capturing it.
    """
    gamma = list(gamma)
    if not gamma:
        return

    for interesting_box, relation in box_enum(gamma):
        yield from _enumerate_in_box(gamma, interesting_box, relation, box_enum)


def _enumerate_in_box(
    gamma: List[UnionGate],
    box: Box,
    relation: Relation,
    box_enum: BoxEnumFn,
) -> Iterator[Tuple[Assignment, FrozenSet[UnionGate]]]:
    """Handle one interesting box ``B'`` with its relation ``R(B', Γ)``.

    This is the body of the outer loop of Algorithm 2 (lines 4-16).
    """
    uppers_by_lower = relation.uppers_by_lower()

    # W ∘ R(B', Γ): for every var-/×-gate input h of a related ∪-gate, the set
    # of Γ positions it can reach.
    provenance_of: Dict[int, Set[int]] = {}
    gate_by_id: Dict[int, object] = {}
    local_mask = box.local_mask
    for slot, positions in uppers_by_lower.items():
        if not (local_mask >> slot) & 1:
            continue
        union_gate = box.union_gates[slot]
        for inp in union_gate.inputs:
            if isinstance(inp, (VarGate, ProdGate)):
                gate_by_id[id(inp)] = inp
                provenance_of.setdefault(id(inp), set()).update(positions)

    def provenance_gates(positions: Set[int]) -> FrozenSet[UnionGate]:
        return frozenset(gamma[pos] for pos in positions)

    # ---- assignments using a single var-gate (line 7)
    prod_gates: List[ProdGate] = []
    for gate_id, positions in provenance_of.items():
        gate = gate_by_id[gate_id]
        if isinstance(gate, VarGate):
            yield (gate.assignment, provenance_gates(positions))
        else:
            prod_gates.append(gate)

    if not prod_gates:
        return

    # ---- assignments combining a left and a right part through ×-gates (lines 8-16)
    gamma_left: List[UnionGate] = []
    seen_left = set()
    for gate in prod_gates:
        if id(gate.left) not in seen_left:
            seen_left.add(id(gate.left))
            gamma_left.append(gate.left)

    for left_assignment, left_provenance in enumerate_boxed_set(gamma_left, box_enum):
        left_ids = {id(g) for g in left_provenance}
        matching = [gate for gate in prod_gates if id(gate.left) in left_ids]
        if not matching:
            continue
        gamma_right: List[UnionGate] = []
        seen_right = set()
        for gate in matching:
            if id(gate.right) not in seen_right:
                seen_right.add(id(gate.right))
                gamma_right.append(gate.right)
        for right_assignment, right_provenance in enumerate_boxed_set(gamma_right, box_enum):
            right_ids = {id(g) for g in right_provenance}
            final_gates = [gate for gate in matching if id(gate.right) in right_ids]
            positions: Set[int] = set()
            for gate in final_gates:
                positions |= provenance_of[id(gate)]
            yield (left_assignment | right_assignment, provenance_gates(positions))
