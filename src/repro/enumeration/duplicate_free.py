"""Algorithm 2: duplicate-free enumeration of a boxed set (Section 5).

``enumerate_boxed_set(Γ)`` enumerates the assignments of ``S(Γ)`` — the union
of the sets captured by the ∪-gates of the boxed set ``Γ`` — without
duplicates, and returns with every assignment its *provenance*
``Prov(S, Γ) = {g ∈ Γ | S ∈ S(g)}`` (the provenance is what the recursive
calls need to stay duplicate-free across the two sides of ×-gates).

The duplicate-freeness argument (Theorem 5.3) rests on Lemma 5.1: in a
complete structured DNNF, the box of a var-/×-gate capturing an assignment
``S`` is *determined* by ``S`` (it is the lca of the leaf boxes of the
variables of ``S``), so enumerating box-wise — one interesting box at a time,
via ``box-enum`` — partitions the assignments, and inside one box the v-tree
splits each assignment uniquely into a left and a right part.

Mask-based provenance (the fast constant-delay path)
----------------------------------------------------
Two implementations coexist:

* The **mask-native path** (:func:`enumerate_boxed_masks`, the default when
  the ``bitset`` relation backend is in effect and the index is built)
  represents everything position-wise as Python-int bitmasks, mirroring the
  bitset relation backend:

  - a boxed set ``Γ`` is a list ``g`` of per-slot masks with bit ``p`` set on
    ``g[slot]`` iff position ``p`` of ``Γ`` reaches that ∪-slot — i.e. the
    ∪-reachability relation itself, so ``uppers_by_lower`` is a list read,
    not a dict build;
  - the provenance of a var-/×-gate is one machine word (a mask over Γ
    positions), accumulated with ``|=`` from the per-slot masks through the
    per-box gate tables stamped at construction time
    (:attr:`repro.circuits.gates.Box.enum_tables`) — no ``isinstance``, no
    walk of ``union_gate.inputs``, no ``frozenset`` of gates;
  - the ×-gate left/right matching is word-parallel: a left (right) part's
    provenance mask is translated to a mask over live ×-gates by OR-ing the
    precomputed per-position gate masks, and the final provenance is the OR
    of the matched gates' position masks.

  The whole algorithm — box enumeration (Algorithm 3) included — runs on an
  **explicit stack of frames**, one frame per active sub-boxed-set, so a
  single ``next()`` performs a bounded number of width-dependent word
  operations instead of resuming a generator chain proportional to the
  recursion depth.  Assignments are carried as nested 2-tuples of var-gate
  assignments and only materialized (one ``frozenset`` union) when an answer
  leaves the iterator; ``Prov`` stays a position mask until the public
  boundary converts it back to a set of ∪-gates.

  Delay accounting: with ``w`` the circuit width, the per-interesting-box
  work is ``O(w²)`` word operations (the fbb pair scan dominates; relation
  composition is ``O(w·⌈w/64⌉)`` words), and the per-answer provenance
  bookkeeping is ``O(k)`` word-ORs for an answer combining ``k`` ×-gate
  levels — compared to the ``O(w³)`` set joins and ``O(k·w)`` set unions of
  the frozenset representation.  The overall delay is ``O(|S|·(Δ + w²))``
  with ``Δ`` the box-enumeration delay of Algorithm 3.

* The **generic path** keeps the paper-shaped recursive formulation over
  :class:`~repro.enumeration.relations.Relation` objects and frozenset
  provenance.  It accepts any ``box_enum`` procedure (including
  :func:`~repro.enumeration.box_enum.naive_box_enum`) and any relation
  backend, and serves as the reference the mask-native path is tested
  against (``tests/test_fuzz_differential.py`` pins the equivalence).

The ``box_enum`` argument selects the box-enumeration procedure: the naive
walk of Section 5 or the index-accelerated Algorithm 3; the delay of the
overall enumeration is ``O(|S| · (Δ + w³))`` on the generic path where ``Δ``
is the delay of the chosen box enumeration.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.assignments import Assignment
from repro.circuits.gates import Box, ProdGate, UnionGate, VarGate
from repro.enumeration.box_enum import indexed_box_enum
from repro.enumeration.index import fbb_of_mask, fib_of_mask
from repro.enumeration.relations import Relation, get_default_backend, iter_bits
from repro.enumeration.wiring import wire_relation
from repro.errors import CircuitStructureError, IndexError_

__all__ = ["enumerate_boxed_set", "enumerate_boxed_masks", "MaskStackEnumeration"]

BoxEnumFn = Callable[[Sequence[UnionGate]], Iterator[Tuple[Box, Relation]]]

# Frame roles: whose consumer a frame's answers feed.
_ROOT, _LEFT, _RIGHT = 0, 1, 2


def enumerate_boxed_set(
    gamma: Sequence[UnionGate],
    box_enum: BoxEnumFn = indexed_box_enum,
) -> Iterator[Tuple[Assignment, FrozenSet[UnionGate]]]:
    """Enumerate ``S(Γ)`` without duplicates, with provenance (Algorithm 2).

    Parameters
    ----------
    gamma:
        The boxed set ``Γ``: a non-empty sequence of ∪-gates of one box.
    box_enum:
        The box-enumeration procedure (:func:`indexed_box_enum` by default,
        :func:`~repro.enumeration.box_enum.naive_box_enum` for the
        depth-dependent variant of Section 5).

    Yields
    ------
    (assignment, provenance):
        Each assignment of ``S(Γ)`` exactly once, together with the subset of
        ``Γ`` capturing it.

    When called with the default (indexed) box enumeration, an already-built
    index and the ``bitset`` default backend, this dispatches to the
    mask-native fast path and converts its position masks back to gate sets
    at this boundary; otherwise the generic relation-based path runs.
    """
    gamma = list(gamma)
    if not gamma:
        return
    if (
        box_enum is indexed_box_enum
        and gamma[0].box.index is not None
        and get_default_backend() in ("bitset", "numpy")
    ):
        for assignment, prov_mask in enumerate_boxed_masks(gamma):
            yield assignment, frozenset(gamma[p] for p in iter_bits(prov_mask))
        return

    for interesting_box, relation in box_enum(gamma):
        yield from _enumerate_in_box(gamma, interesting_box, relation, box_enum)


# =========================================================================== mask-native path
class _Frame:
    """One active sub-boxed-set of the explicit-stack enumeration.

    A frame owns the box-enumeration step stack of its boxed set and, while
    an interesting box is being processed, the mask-typed per-gate state of
    Algorithm 2: var-/×-gate provenance masks and the ×-gate grouping tables
    used for word-parallel left/right matching.
    """

    __slots__ = (
        "role",
        "parent",
        "steps",
        "emitting",
        "box",
        "prod_slot_mask",
        "var_prov",
        "var_assignments",
        "var_pos",
        "prod_prov",
        "prod_lefts",
        "prod_rights",
        "pbl",
        "pbr",
        "right_slots",
        "n_right",
        "right_box",
        "match_mask",
        "left_part",
        "left_frame",
        "right_frame",
    )

    def __init__(self, role: int, parent: Optional["_Frame"], steps: List[Tuple]):
        self.role = role
        self.parent = parent
        self.steps = steps
        self.emitting = False
        self.box = None
        #: mask over ``box`` slots whose ∪-gates fed live ×-gate provenance
        #: at the last activation: the exact part of ``box`` the in-flight
        #: ×-recursion can still read (see dependency_masks)
        self.prod_slot_mask = 0
        self.var_prov = ()
        self.var_assignments = ()
        self.var_pos = 0
        self.prod_prov = None
        self.prod_lefts = ()
        self.prod_rights = ()
        self.pbl = None
        self.pbr = None
        self.right_slots = None
        self.n_right = 0
        self.right_box = None
        self.match_mask = 0
        self.left_part = None
        #: cached child frames, reused across interesting boxes / left parts
        #: (a child frame is always fully exhausted — popped with an empty
        #: step stack — before its slot is reused, so no state can leak).
        self.left_frame = None
        self.right_frame = None


def _compose_masks(stored: Sequence[int], g: Sequence[int]) -> List[int]:
    """``stored ∘ g``: per-lower-slot OR of the Γ-position masks of the mids."""
    out = []
    append = out.append
    for row in stored:
        acc = 0
        while row:
            low = row & -row
            acc |= g[low.bit_length() - 1]
            row ^= low
        append(acc)
    return out


def _compose_masks_lm(stored: Sequence[int], g: Sequence[int]) -> Tuple[List[int], int]:
    """Like :func:`_compose_masks`, also returning the result's lower mask.

    Fusing the lower-mask projection into the composition pass saves a
    separate emptiness scan and a per-step π₁ recomputation on the hot path.
    """
    out = []
    append = out.append
    lower_mask = 0
    bit = 1
    for row in stored:
        acc = 0
        while row:
            low = row & -row
            acc |= g[low.bit_length() - 1]
            row ^= low
        append(acc)
        if acc:
            lower_mask |= bit
        bit <<= 1
    return out, lower_mask


def _wire_masks(box: Box, left: bool) -> Sequence[int]:
    """Transposed ∪-wire masks (child slot → mask of box slots) for one side."""
    plan = box.wire_plan
    if plan is not None:
        masks = plan.wire_masks
        return masks[0] if left else masks[1]
    return wire_relation(box, "left" if left else "right", "bitset").masks_view()


def _materialize(part) -> Assignment:
    """Union the var-gate assignments of a nested 2-tuple part tree."""
    if type(part) is not tuple:
        return part
    leaves = []
    stack = [part]
    while stack:
        p = stack.pop()
        if type(p) is tuple:
            stack.append(p[0])
            stack.append(p[1])
        else:
            leaves.append(p)
    return leaves[0].union(*leaves[1:])


def enumerate_boxed_masks(gamma: Sequence[UnionGate]) -> Iterator[Tuple[Assignment, int]]:
    """Mask-native Algorithm 2: yield ``(assignment, provenance mask)`` pairs.

    The provenance mask has bit ``p`` set iff ``gamma[p]`` captures the
    assignment.  Requires the index of Section 6 to be built on the circuit
    (:func:`repro.enumeration.index.build_index`); the composition chain runs
    on raw per-slot masks regardless of the backend the stored relations use.

    Returns a :class:`MaskStackEnumeration` — a plain iterator whose frame
    stack is checkpointable: pausing between ``next()`` calls freezes the
    whole enumeration state, and :meth:`MaskStackEnumeration.dependency_masks`
    reports exactly which slots of which boxes the remaining enumeration can
    still read (what the serving layer's edit-stable cursors are built on).
    """
    return MaskStackEnumeration(gamma)


class MaskStackEnumeration:
    """The explicit-stack mask-native Algorithm 2 as a checkpointable iterator.

    Equivalent to the generator formulation (``next()`` yields the same
    ``(assignment, provenance mask)`` stream in the same order), but the
    state lives in an inspectable attribute (``_stack`` of :class:`_Frame`)
    instead of suspended generator frames.  That buys two things the serving
    layer needs:

    * **checkpointing** — between two ``next()`` calls the enumeration is a
      passive value; a cursor can hold it across requests (and across edits
      of *other* regions of the document) and resume where it left off;
    * **dependency reporting** — :meth:`dependency_masks` maps each box the
      frozen frames still reference to the mask of ∪-slots the remaining
      stream can actually read (pending-step lower masks plus the live
      ×-provenance slots of in-flight activations).  Because the dirty sets
      of Lemma 7.3 are upward closed (a rebuilt box's ancestors are all
      rebuilt), a box absent from an edit's trunk roots an entirely
      untouched subtree; and for a box that *was* rebuilt, the remaining
      stream is unchanged as long as the per-slot fingerprints of the read
      slots are — the slot-mask trunk test behind cursor
      resume-or-invalidate decisions (:meth:`referenced_boxes` is the
      whole-box projection).  On survival :meth:`rebind` re-points the
      frames at the rebuilt boxes so the next batch can be judged the same
      way.
    """

    __slots__ = ("_stack", "on_delay")

    def __init__(self, gamma: Sequence[UnionGate]):
        #: optional per-answer delay sampling hook (the SLO layer's
        #: :class:`repro.obs.slo.DelayMonitor` plugs in here): when set to a
        #: callable, every ``next()`` reports the seconds it spent producing
        #: its answer.  ``None`` (the default) keeps ``__next__`` a single
        #: attribute check away from the raw enumeration loop.
        self.on_delay = None
        gamma = list(gamma)
        if not gamma:
            self._stack: List[_Frame] = []
            return
        box = gamma[0].box
        for gate in gamma:
            if gate.box is not box:
                raise CircuitStructureError("a boxed set must contain gates of a single box")
        if box.index is None:
            raise IndexError_(
                "mask-native enumeration requires the index to be built (build_index)"
            )
        gmasks = [0] * box.n_unions
        for position, gate in enumerate(gamma):
            gmasks[gate.slot] |= 1 << position
        root_lower = 0
        bit = 1
        for row in gmasks:
            if row:
                root_lower |= bit
            bit <<= 1
        self._stack = [_Frame(_ROOT, None, [(False, box, gmasks, root_lower)])]

    def __iter__(self) -> "MaskStackEnumeration":
        return self

    def referenced_boxes(self) -> List[Box]:
        """The boxes the remaining enumeration can still read (whole-box view).

        The coarse projection of :meth:`dependency_masks` — every box that
        appears with a nonzero read mask, plus the pending right-child box of
        an in-flight ×-gate combination.  Kept for capacity planning
        (``LocalStore.would_invalidate``) and introspection; the cursor
        resume-or-invalidate decision uses the per-slot masks instead.
        """
        boxes: List[Box] = []
        seen = set()
        for fr in self._stack:
            for candidate in (fr.box, fr.right_box):
                if candidate is not None and candidate.serial not in seen:
                    seen.add(candidate.serial)
                    boxes.append(candidate)
            for step in fr.steps:
                candidate = step[1]
                if candidate.serial not in seen:
                    seen.add(candidate.serial)
                    boxes.append(candidate)
        return boxes

    def dependency_masks(self) -> Dict[int, Tuple[Box, int]]:
        """Per-box slot masks the remaining enumeration can still read.

        Returns ``{box.serial: (box, slot_mask)}`` collected from the live
        frames:

        * every pending box-enumeration step ``(is_walk, box, g, lower)``
          contributes ``lower`` — the walk/descend of Algorithm 3 only ever
          queries ``box``'s index (fib/fbb/targets/ranks/relations) masked by
          the step's live lower slots, and those answers are determined by
          the ∪-wiring reachable from them;
        * a frame with an in-flight activation contributes its interesting
          box at :attr:`_Frame.prod_slot_mask` — the slots whose ∪-gates fed
          live ×-gate provenance.  The pending reads of the ×-recursion (the
          box's child pointers, the right-child slots of not-yet-pushed right
          frames) all lie inside the sub-DAG reachable from those slots, so
          the mask subsumes them; remaining var-gate emission is frame-local
          (the assignments were copied at activation) and reads no box at
          all.

        The point of the per-slot form: an edit that rebuilds a referenced
        box but leaves the content reachable from every *read* slot
        unchanged (equal slot fingerprints, see
        ``repro.incremental.maintainer.BoxDelta``) cannot change the
        remaining stream, so a cursor intersecting these masks with the
        edit's changed-slot masks invalidates only on a true overlap.
        """
        deps: Dict[int, Tuple[Box, int]] = {}
        for fr in self._stack:
            box = fr.box
            if box is not None and fr.prod_slot_mask:
                held = deps.get(box.serial)
                deps[box.serial] = (
                    box,
                    fr.prod_slot_mask | (held[1] if held is not None else 0),
                )
            for step in fr.steps:
                box = step[1]
                held = deps.get(box.serial)
                deps[box.serial] = (
                    box,
                    step[3] | (held[1] if held is not None else 0),
                )
        return deps

    def rebind(self, replacements: Dict[int, Box]) -> None:
        """Swap frame box references for their rebuilt equivalents, by serial.

        Called by a surviving cursor after an edit batch whose changed-slot
        masks missed every dependency mask: the replaced boxes are equivalent
        to their replacements *restricted to the slots this enumeration can
        still read*, so swapping the references continues the byte-identical
        stream while keeping the frames pointed at the live document — which
        is what lets the *next* batch's deltas (keyed by the current boxes'
        serials) be compared against this enumeration at all.

        Only on-stack frames are touched: a cached off-stack child frame has
        an empty step stack and every box-valued field it holds is
        overwritten at its next activation before being read.
        """
        for fr in self._stack:
            box = fr.box
            if box is not None:
                new = replacements.get(box.serial)
                if new is not None:
                    fr.box = new
            box = fr.right_box
            if box is not None:
                new = replacements.get(box.serial)
                if new is not None:
                    fr.right_box = new
            steps = fr.steps
            for i, step in enumerate(steps):
                new = replacements.get(step[1].serial)
                if new is not None:
                    steps[i] = (step[0], new, step[2], step[3])

    def __next__(self) -> Tuple[Assignment, int]:
        on_delay = self.on_delay
        if on_delay is None:
            return self._advance()
        start = perf_counter()
        result = self._advance()  # StopIteration ends the stream unsampled
        on_delay(perf_counter() - start)
        return result

    def _advance(self) -> Tuple[Assignment, int]:
        stack = self._stack
        while stack:
            fr = stack[-1]

            # ------------------------------------------- emit answers of the current box
            if fr.emitting:
                part = None
                prov = 0
                vp = fr.var_prov
                i = fr.var_pos
                n = len(vp)
                while i < n:
                    mask = vp[i]
                    if mask:
                        part = fr.var_assignments[i]
                        prov = mask
                        fr.var_pos = i + 1
                        break
                    i += 1
                if part is None:
                    # var answers done: set up the ×-gate recursion (lines 8-16)
                    fr.emitting = False
                    pp = fr.prod_prov
                    if pp is None or not any(pp):
                        continue
                    cur_box = fr.box
                    left_box = cur_box.left_child
                    right_box = cur_box.right_child
                    prod_lefts = fr.prod_lefts
                    prod_rights = fr.prod_rights
                    lpos = [-1] * left_box.n_unions
                    lmasks = [0] * left_box.n_unions
                    left_lower = 0
                    pbl: List[int] = []
                    rpos = [-1] * right_box.n_unions
                    right_slots: List[int] = []
                    pbr: List[int] = []
                    for j in range(len(pp)):
                        if not pp[j]:
                            continue
                        jbit = 1 << j
                        s = prod_lefts[j]
                        p = lpos[s]
                        if p < 0:
                            lpos[s] = len(pbl)
                            lmasks[s] = 1 << len(pbl)
                            left_lower |= 1 << s
                            pbl.append(jbit)
                        else:
                            pbl[p] |= jbit
                        r = prod_rights[j]
                        p = rpos[r]
                        if p < 0:
                            rpos[r] = len(pbr)
                            right_slots.append(r)
                            pbr.append(jbit)
                        else:
                            pbr[p] |= jbit
                    fr.pbl = pbl
                    fr.pbr = pbr
                    fr.right_slots = right_slots
                    fr.n_right = right_box.n_unions
                    fr.right_box = right_box
                    child = fr.left_frame
                    if child is None:
                        child = _Frame(_LEFT, fr, [(False, left_box, lmasks, left_lower)])
                        fr.left_frame = child
                    else:
                        child.steps.append((False, left_box, lmasks, left_lower))
                    stack.append(child)
                    continue
            else:
                # --------------------------------------------- advance the box enumeration
                steps = fr.steps
                if not steps:
                    stack.pop()
                    continue
                is_walk, cur_box, g, lower_mask = steps.pop()
                index = cur_box.index

                if is_walk:
                    # one iteration of the bidirectional-box walk (Algorithm 3)
                    if not index.fbb_ranks:
                        continue
                    best = fbb_of_mask(index, lower_mask)
                    if best is None:
                        continue
                    first = fib_of_mask(index, lower_mask)
                    if best is first:
                        continue
                    best_rank = index.targets[best].rank
                    prefix = len(best_rank) - 1
                    if best_rank[:prefix] != index.targets[first].rank[:prefix]:
                        continue
                    rel_bid = _compose_masks(index.targets[best].relation.masks_view(), g)
                    plan = best.wire_plan
                    if plan is not None:
                        wire_left, wire_right = plan.wire_masks
                    else:
                        wire_left = _wire_masks(best, True)
                        wire_right = _wire_masks(best, False)
                    rel_left, lm_left = _compose_masks_lm(wire_left, rel_bid)
                    rel_right, lm_right = _compose_masks_lm(wire_right, rel_bid)
                    if lm_left:
                        steps.append((True, best.left_child, rel_left, lm_left))
                    if lm_right:
                        steps.append((False, best.right_child, rel_right, lm_right))
                    continue

                # descend to the first interesting box (Algorithm 3, lines 4-10)
                first = fib_of_mask(index, lower_mask)
                if first is cur_box:
                    rel_first = g
                    rf_lower = lower_mask
                else:
                    rel_first, rf_lower = _compose_masks_lm(
                        index.targets[first].relation.masks_view(), g
                    )
                if index.fbb_ranks:
                    steps.append((True, cur_box, g, lower_mask))
                if first.left_child is not None:
                    plan = first.wire_plan
                    if plan is not None:
                        wire_left, wire_right = plan.wire_masks
                    else:
                        wire_left = _wire_masks(first, True)
                        wire_right = _wire_masks(first, False)
                    rel_l, lm_l = _compose_masks_lm(wire_left, rel_first)
                    rel_r, lm_r = _compose_masks_lm(wire_right, rel_first)
                    if lm_r:
                        steps.append((False, first.right_child, rel_r, lm_r))
                    if lm_l:
                        steps.append((False, first.left_child, rel_l, lm_l))

                # ---- interesting box found: accumulate gate provenance masks (lines 5-7)
                tables = first.enum_tables
                if tables is None:
                    tables = first.enumeration_tables()
                var_assignments, slot_var_masks, prod_lefts, prod_rights, slot_prod_masks = tables
                n_vars = len(var_assignments)
                n_prods = len(prod_lefts)
                var_prov = [0] * n_vars
                prod_prov = [0] * n_prods if n_prods else None
                prod_slot_mask = 0
                lm = first.local_mask & rf_lower
                while lm:
                    low = lm & -lm
                    s = low.bit_length() - 1
                    lm ^= low
                    pm = rel_first[s]
                    if n_vars:
                        vm = slot_var_masks[s]
                        while vm:
                            lowv = vm & -vm
                            var_prov[lowv.bit_length() - 1] |= pm
                            vm ^= lowv
                    if n_prods:
                        qm = slot_prod_masks[s]
                        if qm and pm:
                            prod_slot_mask |= low
                        while qm:
                            lowq = qm & -qm
                            prod_prov[lowq.bit_length() - 1] |= pm
                            qm ^= lowq
                fr.box = first
                fr.prod_slot_mask = prod_slot_mask
                fr.var_prov = var_prov
                fr.var_assignments = var_assignments
                fr.var_pos = 0
                fr.prod_prov = prod_prov
                fr.prod_lefts = prod_lefts
                fr.prod_rights = prod_rights
                fr.emitting = True
                continue

            # ----------------------------------------------------- propagate one answer
            while True:
                role = fr.role
                if role == _ROOT:
                    return (part if type(part) is not tuple else _materialize(part)), prov
                parent = fr.parent
                if role == _LEFT:
                    # translate the left provenance to the matching ×-gates
                    matched = 0
                    pbl = parent.pbl
                    pp = prov
                    while pp:
                        low = pp & -pp
                        matched |= pbl[low.bit_length() - 1]
                        pp ^= low
                    if not matched:
                        break
                    parent.match_mask = matched
                    parent.left_part = part
                    rmasks = [0] * parent.n_right
                    right_lower = 0
                    right_slots = parent.right_slots
                    for p, prods_p in enumerate(parent.pbr):
                        if prods_p & matched:
                            s = right_slots[p]
                            rmasks[s] = 1 << p
                            right_lower |= 1 << s
                    child = parent.right_frame
                    if child is None:
                        child = _Frame(_RIGHT, parent, [(False, parent.right_box, rmasks, right_lower)])
                        parent.right_frame = child
                    else:
                        child.steps.append((False, parent.right_box, rmasks, right_lower))
                    stack.append(child)
                    break
                # role == _RIGHT: combine with the stored left part (line 16)
                final = 0
                pbr = parent.pbr
                pp = prov
                while pp:
                    low = pp & -pp
                    final |= pbr[low.bit_length() - 1]
                    pp ^= low
                final &= parent.match_mask
                if not final:
                    break
                positions = 0
                prod_prov = parent.prod_prov
                while final:
                    low = final & -final
                    positions |= prod_prov[low.bit_length() - 1]
                    final ^= low
                part = (parent.left_part, part)
                prov = positions
                fr = parent
        raise StopIteration


# =========================================================================== generic path
def _enumerate_in_box(
    gamma: List[UnionGate],
    box: Box,
    relation: Relation,
    box_enum: BoxEnumFn,
) -> Iterator[Tuple[Assignment, FrozenSet[UnionGate]]]:
    """Handle one interesting box ``B'`` with its relation ``R(B', Γ)``.

    This is the body of the outer loop of Algorithm 2 (lines 4-16) in its
    paper-shaped, relation/frozenset-based formulation (the reference the
    mask-native path is tested against).
    """
    uppers_by_lower = relation.uppers_by_lower()

    # W ∘ R(B', Γ): for every var-/×-gate input h of a related ∪-gate, the set
    # of Γ positions it can reach.
    provenance_of: Dict[int, Set[int]] = {}
    gate_by_id: Dict[int, object] = {}
    local_mask = box.local_mask
    for slot, positions in uppers_by_lower.items():
        if not (local_mask >> slot) & 1:
            continue
        union_gate = box.union_gates[slot]
        for inp in union_gate.inputs:
            if isinstance(inp, (VarGate, ProdGate)):
                gate_by_id[id(inp)] = inp
                provenance_of.setdefault(id(inp), set()).update(positions)

    def provenance_gates(positions: Set[int]) -> FrozenSet[UnionGate]:
        return frozenset(gamma[pos] for pos in positions)

    # ---- assignments using a single var-gate (line 7)
    prod_gates: List[ProdGate] = []
    for gate_id, positions in provenance_of.items():
        gate = gate_by_id[gate_id]
        if isinstance(gate, VarGate):
            yield (gate.assignment, provenance_gates(positions))
        else:
            prod_gates.append(gate)

    if not prod_gates:
        return

    # ---- assignments combining a left and a right part through ×-gates (lines 8-16)
    gamma_left: List[UnionGate] = []
    seen_left = set()
    for gate in prod_gates:
        if id(gate.left) not in seen_left:
            seen_left.add(id(gate.left))
            gamma_left.append(gate.left)

    for left_assignment, left_provenance in _enumerate_generic(gamma_left, box_enum):
        left_ids = {id(g) for g in left_provenance}
        matching = [gate for gate in prod_gates if id(gate.left) in left_ids]
        if not matching:
            continue
        gamma_right: List[UnionGate] = []
        seen_right = set()
        for gate in matching:
            if id(gate.right) not in seen_right:
                seen_right.add(id(gate.right))
                gamma_right.append(gate.right)
        for right_assignment, right_provenance in _enumerate_generic(gamma_right, box_enum):
            right_ids = {id(g) for g in right_provenance}
            final_gates = [gate for gate in matching if id(gate.right) in right_ids]
            positions: Set[int] = set()
            for gate in final_gates:
                positions |= provenance_of[id(gate)]
            yield (left_assignment | right_assignment, provenance_gates(positions))


def _enumerate_generic(
    gamma: List[UnionGate], box_enum: BoxEnumFn
) -> Iterator[Tuple[Assignment, FrozenSet[UnionGate]]]:
    """The recursive generic path (no fast-path dispatch on recursion)."""
    if not gamma:
        return
    for interesting_box, relation in box_enum(gamma):
        yield from _enumerate_in_box(gamma, interesting_box, relation, box_enum)
