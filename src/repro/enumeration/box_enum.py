"""Box enumeration: naive (Section 5) and index-accelerated (Algorithm 3, Section 6).

Both procedures take a *boxed set* ``Γ`` (a list of ∪-gates of one box) and
yield, for every **interesting box** ``B'`` (a box containing a var- or
×-gate ∪-reachable from ``Γ``), the pair ``(B', R(B', Γ))`` where
``R(B', Γ)`` is the ∪-reachability relation, encoded as a
:class:`~repro.enumeration.relations.Relation` between the slots of ``B'``
and the positions of ``Γ``.  Every interesting box is produced exactly once.

* :func:`naive_box_enum` walks the tree of boxes downward, maintaining the
  relation; its delay is proportional to the depth of the circuit (the
  behaviour Section 5 starts from).
* :func:`indexed_box_enum` is Algorithm 3: it uses the per-box index
  (first interesting box, first bidirectional box, stored relations) to jump
  directly between interesting boxes, so the work between two outputs only
  depends on the circuit width — this is what makes the final delay
  independent of the input tree (Lemma 6.4, Theorem 6.5).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gates import Box, UnionGate
from repro.enumeration.index import BoxIndex, fbb_of_mask, fib_of_mask
from repro.enumeration.relations import Relation
from repro.enumeration.wiring import wire_relation
from repro.errors import CircuitStructureError, IndexError_

__all__ = ["naive_box_enum", "indexed_box_enum", "gamma_relation"]


def gamma_relation(gamma: Sequence[UnionGate], backend: Optional[str] = None) -> Relation:
    """The initial relation ``{(g, g) | g ∈ Γ}`` between box slots and Γ positions."""
    if not gamma:
        raise ValueError("the boxed set Γ must be non-empty")
    box = gamma[0].box
    for gate in gamma:
        if gate.box is not box:
            raise CircuitStructureError("a boxed set must contain gates of a single box")
    return Relation(
        box.n_unions,
        len(gamma),
        ((gate.slot, position) for position, gate in enumerate(gamma)),
        backend=backend,
    )


def _is_interesting(box: Box, relation: Relation) -> bool:
    """True iff some ∪-gate of ``box`` related by ``relation`` has a var/×-gate input.

    A single word-AND against the box's ``local_mask`` (recorded at
    construction time) replaces the per-gate ``isinstance`` scan.
    """
    return bool(relation.lower_mask() & box.local_mask)


# --------------------------------------------------------------------------- naive version
def naive_box_enum(
    gamma: Sequence[UnionGate], backend: Optional[str] = None
) -> Iterator[Tuple[Box, Relation]]:
    """Enumerate interesting boxes by walking the circuit downward (Section 5).

    Correct but with delay ``O(depth(C) · poly(w))``; used as the reference
    implementation that Algorithm 3 is tested against.
    """
    gamma = list(gamma)
    box = gamma[0].box
    relation = gamma_relation(gamma, backend=backend)
    stack: List[Tuple[Box, Relation]] = [(box, relation)]
    while stack:
        current, rel = stack.pop()
        if _is_interesting(current, rel):
            yield (current, rel)
        if current.is_leaf_box():
            continue
        for side in ("right", "left"):  # pushed right first so left is handled first
            wire = wire_relation(current, side, rel.backend)
            child_rel = wire.compose(rel)
            if child_rel:
                child = current.left_child if side == "left" else current.right_child
                stack.append((child, child_rel))


# --------------------------------------------------------------------------- Algorithm 3
def indexed_box_enum(
    gamma: Sequence[UnionGate], backend: Optional[str] = None
) -> Iterator[Tuple[Box, Relation]]:
    """Algorithm 3: enumerate interesting boxes using the index.

    The boxes of the circuit must carry their :class:`BoxIndex` (built by
    :func:`repro.enumeration.index.build_index`).  The enumeration order is
    the one sketched in Figure 1 of the paper: first the subtree of the first
    interesting box, then the right subtrees of the bidirectional boxes on
    the path from the current box down to it.

    The recursion of the paper's presentation is run on an explicit stack of
    ``(kind, box, relation)`` steps — a *descend* step is the body of B-Enum,
    a *walk* step is one iteration of the bidirectional-box walk — so that a
    single ``next()`` performs a bounded number of width-dependent
    operations, with no generator chain proportional to the circuit depth.
    """
    gamma = list(gamma)
    relation = gamma_relation(gamma, backend=backend)
    box = gamma[0].box
    if box.index is None:
        raise IndexError_("indexed_box_enum requires the index to be built (build_index)")
    #: stack items: (is_walk, box, relation); pushed in reverse of the
    #: paper's order so that popping reproduces it.
    stack: List[Tuple[bool, Box, Relation]] = [(False, box, relation)]
    while stack:
        is_walk, box, relation = stack.pop()
        index: BoxIndex = box.index
        if index is None:
            raise IndexError_("indexed_box_enum requires the index to be built (build_index)")
        slot_mask = relation.lower_mask()
        if not slot_mask:
            continue
        backend = relation.backend

        if is_walk:
            # One iteration of the walk over the bidirectional boxes on the
            # path from ``box`` down to its first interesting box (lines 11-16).
            bidirectional = fbb_of_mask(index, slot_mask)
            if bidirectional is None:
                continue
            local_first = fib_of_mask(index, slot_mask)
            if bidirectional is local_first:
                continue
            if not index.is_ancestor(bidirectional, local_first):
                continue
            rel_bidirectional = index.relation_to(bidirectional).compose(relation)
            rel_right = wire_relation(bidirectional, "right", backend).compose(rel_bidirectional)
            rel_left = wire_relation(bidirectional, "left", backend).compose(rel_bidirectional)
            # Continue the walk from the left child; enumerate the right
            # subtree first (popped before the walk continuation).
            if rel_left:
                stack.append((True, bidirectional.left_child, rel_left))
            if rel_right:
                stack.append((False, bidirectional.right_child, rel_right))
            continue

        # ---- first interesting box (lines 4-6)
        first_interesting = fib_of_mask(index, slot_mask)
        if first_interesting is box:
            rel_first = relation
        else:
            rel_first = index.relation_to(first_interesting).compose(relation)
        # after the subtree of the first interesting box, walk the
        # bidirectional boxes from ``box`` (popped last)
        stack.append((True, box, relation))
        # ---- everything below the first interesting box (lines 7-10)
        if not first_interesting.is_leaf_box():
            rel_r = wire_relation(first_interesting, "right", backend).compose(rel_first)
            rel_l = wire_relation(first_interesting, "left", backend).compose(rel_first)
            if rel_r:
                stack.append((False, first_interesting.right_child, rel_r))
            if rel_l:
                stack.append((False, first_interesting.left_child, rel_l))
        yield (first_interesting, rel_first)
