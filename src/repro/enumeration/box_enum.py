"""Box enumeration: naive (Section 5) and index-accelerated (Algorithm 3, Section 6).

Both procedures take a *boxed set* ``Γ`` (a list of ∪-gates of one box) and
yield, for every **interesting box** ``B'`` (a box containing a var- or
×-gate ∪-reachable from ``Γ``), the pair ``(B', R(B', Γ))`` where
``R(B', Γ)`` is the ∪-reachability relation, encoded as a
:class:`~repro.enumeration.relations.Relation` between the slots of ``B'``
and the positions of ``Γ``.  Every interesting box is produced exactly once.

* :func:`naive_box_enum` walks the tree of boxes downward, maintaining the
  relation; its delay is proportional to the depth of the circuit (the
  behaviour Section 5 starts from).
* :func:`indexed_box_enum` is Algorithm 3: it uses the per-box index
  (first interesting box, first bidirectional box, stored relations) to jump
  directly between interesting boxes, so the work between two outputs only
  depends on the circuit width — this is what makes the final delay
  independent of the input tree (Lemma 6.4, Theorem 6.5).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gates import Box, UnionGate
from repro.enumeration.index import BoxIndex, fbb_of_slots, fib_of_slots
from repro.enumeration.relations import Relation
from repro.enumeration.wiring import wire_relation
from repro.errors import CircuitStructureError, IndexError_

__all__ = ["naive_box_enum", "indexed_box_enum", "gamma_relation"]


def gamma_relation(gamma: Sequence[UnionGate], backend: Optional[str] = None) -> Relation:
    """The initial relation ``{(g, g) | g ∈ Γ}`` between box slots and Γ positions."""
    if not gamma:
        raise ValueError("the boxed set Γ must be non-empty")
    box = gamma[0].box
    for gate in gamma:
        if gate.box is not box:
            raise CircuitStructureError("a boxed set must contain gates of a single box")
    return Relation(
        len(box.union_gates),
        len(gamma),
        ((gate.slot, position) for position, gate in enumerate(gamma)),
        backend=backend,
    )


def _is_interesting(box: Box, relation: Relation) -> bool:
    """True iff some ∪-gate of ``box`` related by ``relation`` has a var/×-gate input.

    A single word-AND against the box's ``local_mask`` (recorded at
    construction time) replaces the per-gate ``isinstance`` scan.
    """
    return bool(relation.lower_mask() & box.local_mask)


# --------------------------------------------------------------------------- naive version
def naive_box_enum(
    gamma: Sequence[UnionGate], backend: Optional[str] = None
) -> Iterator[Tuple[Box, Relation]]:
    """Enumerate interesting boxes by walking the circuit downward (Section 5).

    Correct but with delay ``O(depth(C) · poly(w))``; used as the reference
    implementation that Algorithm 3 is tested against.
    """
    gamma = list(gamma)
    box = gamma[0].box
    relation = gamma_relation(gamma, backend=backend)
    stack: List[Tuple[Box, Relation]] = [(box, relation)]
    while stack:
        current, rel = stack.pop()
        if _is_interesting(current, rel):
            yield (current, rel)
        if current.is_leaf_box():
            continue
        for side in ("right", "left"):  # pushed right first so left is handled first
            wire = wire_relation(current, side, rel.backend)
            child_rel = wire.compose(rel)
            if child_rel:
                child = current.left_child if side == "left" else current.right_child
                stack.append((child, child_rel))


# --------------------------------------------------------------------------- Algorithm 3
def indexed_box_enum(
    gamma: Sequence[UnionGate], backend: Optional[str] = None
) -> Iterator[Tuple[Box, Relation]]:
    """Algorithm 3: enumerate interesting boxes using the index.

    The boxes of the circuit must carry their :class:`BoxIndex` (built by
    :func:`repro.enumeration.index.build_index`).  The enumeration order is
    the one sketched in Figure 1 of the paper: first the subtree of the first
    interesting box, then the right subtrees of the bidirectional boxes on
    the path from the current box down to it.
    """
    gamma = list(gamma)
    relation = gamma_relation(gamma, backend=backend)
    yield from _b_enum(gamma[0].box, relation)


def _b_enum(box: Box, relation: Relation) -> Iterator[Tuple[Box, Relation]]:
    index: BoxIndex = box.index
    if index is None:
        raise IndexError_("indexed_box_enum requires the index to be built (build_index)")
    n_gamma = relation.n_upper
    backend = relation.backend
    slots = relation.lower_slots()
    if not slots:
        return

    # ---- first interesting box (lines 4-6)
    first_interesting = fib_of_slots(index, slots)
    rel_first = index.relation_to(first_interesting).compose(relation)
    yield (first_interesting, rel_first)

    # ---- everything below the first interesting box (lines 7-10)
    if not first_interesting.is_leaf_box():
        for side in ("left", "right"):
            wire = wire_relation(first_interesting, side, backend)
            child_rel = wire.compose(rel_first)
            if child_rel:
                child = (
                    first_interesting.left_child if side == "left" else first_interesting.right_child
                )
                yield from _b_enum(child, child_rel)

    # ---- walk the bidirectional boxes on the path to the first interesting box
    current_box = box
    current_rel = relation
    while True:
        current_index: BoxIndex = current_box.index
        current_slots = current_rel.lower_slots()
        if not current_slots:
            break
        bidirectional = fbb_of_slots(current_index, current_slots)
        if bidirectional is None:
            break
        # The first interesting box of the current subtree is still the global
        # first interesting box as long as we are on the path above it.
        local_first = fib_of_slots(current_index, current_slots)
        if bidirectional is local_first:
            break
        if not current_index.is_ancestor(bidirectional, local_first):
            break
        rel_bidirectional = current_index.relation_to(bidirectional).compose(current_rel)
        # Right subtree of the bidirectional box: enumerate it (line 15).
        wire_right = wire_relation(bidirectional, "right", backend)
        rel_right = wire_right.compose(rel_bidirectional)
        if rel_right:
            yield from _b_enum(bidirectional.right_child, rel_right)
        # Descend into the left child and look for the next bidirectional box.
        wire_left = wire_relation(bidirectional, "left", backend)
        current_rel = wire_left.compose(rel_bidirectional)
        current_box = bidirectional.left_child
        if not current_rel:
            break
