"""The enumeration index (Definition 6.1, Lemma 6.3).

For every box ``B`` of the circuit the index stores:

* for every ∪-gate ``g`` of ``B``, its **first interesting box** ``fib(g)``:
  the first box (in the preorder of ``B``'s subtree) containing a var- or
  ×-gate ∪-reachable from ``g``;
* for every boxed set ``Γ ⊆ B`` with ``1 ≤ |Γ| ≤ 2``, its **first
  bidirectional box** ``fbb(Γ)``: the first box whose two subtrees both
  contain gates ∪-reachable from ``Γ``;
* the ∪-reachability relation ``R(X, B)`` for every *target box* ``X``
  (every fib/fbb value, the children of ``B``, and the closure of these under
  least common ancestors), together with the preorder ranks and pairwise lca
  of the target boxes.

Everything is computed bottom-up, per box, from the children's index entries
(equations (3)–(5) of the appendix), which is exactly what makes the index
incrementally maintainable: when an update rebuilds the boxes on a trunk
(Lemma 7.3), recomputing the index entries of those boxes reuses the
untouched entries of the reused subtrees.

Preorder ranks are stored as *path tuples* relative to the box owning the
index ((0,) for the box itself, (1, …) for targets in the left subtree,
(2, …) for targets in the right subtree); comparing tuples lexicographically
compares preorder positions without any global numbering — global numberings
would be invalidated by updates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.circuits.gates import AssignmentCircuit, Box, ProdGate, UnionGate, VarGate, child_wire_pairs
from repro.enumeration.relations import Relation
from repro.errors import CircuitStructureError, IndexError_

__all__ = [
    "TargetInfo",
    "BoxIndex",
    "build_box_index",
    "build_index",
    "fib_of_slots",
    "fbb_of_slots",
]

SIDE_SELF = "self"
SIDE_LEFT = "left"
SIDE_RIGHT = "right"


class TargetInfo:
    """Index entry for one target box ``X`` of a box ``B``.

    Holds the ∪-reachability relation ``R(X, B)``, which side of ``B`` the
    target lies on, and its preorder rank (a path tuple, see module docs).
    """

    __slots__ = ("box", "relation", "side", "rank")

    def __init__(self, box: Box, relation: Relation, side: str, rank: Tuple[int, ...]):
        self.box = box
        self.relation = relation
        self.side = side
        self.rank = rank

    def __repr__(self) -> str:  # pragma: no cover
        return f"TargetInfo(side={self.side}, rank={self.rank}, rel={len(self.relation.pairs())})"


class BoxIndex:
    """The per-box part of the index structure ``I(C)`` of Definition 6.1."""

    __slots__ = ("box", "fib", "fib_side", "fbb_pair", "targets", "lca")

    def __init__(self, box: Box):
        self.box = box
        #: per ∪-gate slot: the first interesting box
        self.fib: List[Box] = []
        self.fib_side: List[str] = []
        #: per pair of slots (i ≤ j): the first bidirectional box (or None)
        self.fbb_pair: Dict[Tuple[int, int], Optional[Box]] = {}
        #: target box -> TargetInfo (relation, side, rank)
        self.targets: Dict[Box, TargetInfo] = {}
        #: (target, target) -> least common ancestor (also a target)
        self.lca: Dict[Tuple[Box, Box], Box] = {}

    # ------------------------------------------------------------------ api
    def rank_of(self, box: Box) -> Tuple[int, ...]:
        """Return the preorder rank of a target box."""
        try:
            return self.targets[box].rank
        except KeyError:
            raise IndexError_("box is not a target of this index entry") from None

    def relation_to(self, box: Box) -> Relation:
        """Return the stored relation ``R(box, B)``."""
        try:
            return self.targets[box].relation
        except KeyError:
            raise IndexError_("no stored reachability relation for this target box") from None

    def lca_of(self, first: Box, second: Box) -> Box:
        """Return the least common ancestor of two target boxes."""
        try:
            return self.lca[(first, second)]
        except KeyError:
            raise IndexError_("lca of a non-target pair requested") from None

    def is_ancestor(self, ancestor: Box, descendant: Box) -> bool:
        """Return True if ``ancestor`` is an ancestor of (or equal to) ``descendant``."""
        return self.lca_of(ancestor, descendant) is ancestor

    def __repr__(self) -> str:  # pragma: no cover
        return f"BoxIndex(targets={len(self.targets)}, width={len(self.fib)})"


# --------------------------------------------------------------------------- set-level helpers
def fib_of_slots(index: BoxIndex, slots: Iterable[int]) -> Box:
    """``fib(Γ)`` for a boxed set given by its slots (equation (1))."""
    best: Optional[Box] = None
    best_rank: Optional[Tuple[int, ...]] = None
    for slot in slots:
        candidate = index.fib[slot]
        rank = index.rank_of(candidate)
        if best_rank is None or rank < best_rank:
            best, best_rank = candidate, rank
    if best is None:
        raise IndexError_("fib of an empty boxed set requested")
    return best


def fbb_of_slots(index: BoxIndex, slots: Iterable[int]) -> Optional[Box]:
    """``fbb(Γ)`` for a boxed set given by its slots.

    Following Definition 6.1 and Observation 6.2, the first bidirectional box
    of a larger set is the preorder-minimum of the stored values for the
    pairs (and singletons) included in the set.
    """
    slot_list = sorted(set(slots))
    best: Optional[Box] = None
    best_rank: Optional[Tuple[int, ...]] = None
    for i, a in enumerate(slot_list):
        for b in slot_list[i:]:
            candidate = index.fbb_pair.get((a, b))
            if candidate is None:
                continue
            rank = index.rank_of(candidate)
            if best_rank is None or rank < best_rank:
                best, best_rank = candidate, rank
    return best


# --------------------------------------------------------------------------- construction
def build_box_index(box: Box, relation_backend: Optional[str] = None) -> BoxIndex:
    """Build the index entry of a single box from its children's entries.

    For internal boxes, both children must already carry a ``BoxIndex`` (the
    construction is bottom-up).  The freshly built index is also stored on
    ``box.index`` for convenience.
    """
    index = BoxIndex(box)
    n = len(box.union_gates)
    left_box = box.left_child
    right_box = box.right_child
    left_index: Optional[BoxIndex] = None
    right_index: Optional[BoxIndex] = None
    if not box.is_leaf_box():
        left_index = left_box.index
        right_index = right_box.index
        if left_index is None or right_index is None:
            raise IndexError_("children must be indexed before their parent (bottom-up order)")

    # ----------------------------------------------------- input classification
    local_input: List[bool] = []
    left_inputs: List[FrozenSet[int]] = []
    right_inputs: List[FrozenSet[int]] = []
    for gate in box.union_gates:
        has_local = False
        lefts: set = set()
        rights: set = set()
        for inp in gate.inputs:
            if isinstance(inp, (VarGate, ProdGate)):
                has_local = True
            elif isinstance(inp, UnionGate):
                if inp.box is left_box:
                    lefts.add(inp.slot)
                elif inp.box is right_box:
                    rights.add(inp.slot)
                else:
                    raise CircuitStructureError("∪-gate input from a non-child box")
            else:
                raise CircuitStructureError(f"unexpected input gate {inp!r}")
        local_input.append(has_local)
        left_inputs.append(frozenset(lefts))
        right_inputs.append(frozenset(rights))

    # -------------------------------------------------------------- base targets
    index.targets[box] = TargetInfo(box, Relation.identity(n, backend=relation_backend), SIDE_SELF, (0,))
    child_relation: Dict[str, Relation] = {}
    if not box.is_leaf_box():
        for side, child in ((SIDE_LEFT, left_box), (SIDE_RIGHT, right_box)):
            rel = Relation(
                len(child.union_gates), n, child_wire_pairs(box, side), backend=relation_backend
            )
            child_relation[side] = rel
            prefix = 1 if side == SIDE_LEFT else 2
            child_index = left_index if side == SIDE_LEFT else right_index
            rank = (prefix,) + child_index.targets[child].rank
            index.targets[child] = TargetInfo(child, rel, side, rank)

    def ensure_target(target: Box, side: str) -> None:
        if target in index.targets:
            return
        if side == SIDE_SELF:
            raise IndexError_("the box itself must already be a target")
        child = left_box if side == SIDE_LEFT else right_box
        child_index = left_index if side == SIDE_LEFT else right_index
        info = child_index.targets.get(target)
        if info is None:
            raise IndexError_("target box is not indexed in the child entry")
        relation = info.relation.compose(child_relation[side])
        prefix = 1 if side == SIDE_LEFT else 2
        index.targets[target] = TargetInfo(target, relation, side, (prefix,) + info.rank)

    # ------------------------------------------------------------------- fib
    for slot in range(n):
        if local_input[slot]:
            index.fib.append(box)
            index.fib_side.append(SIDE_SELF)
            continue
        if left_inputs[slot]:
            side = SIDE_LEFT
            child_index = left_index
            child_slots = left_inputs[slot]
        elif right_inputs[slot]:
            side = SIDE_RIGHT
            child_index = right_index
            child_slots = right_inputs[slot]
        else:
            raise CircuitStructureError("∪-gate with no inputs during index construction")
        best = fib_of_slots(child_index, child_slots)
        index.fib.append(best)
        index.fib_side.append(side)
        ensure_target(best, side)

    # ------------------------------------------------------------------- fbb
    for i in range(n):
        for j in range(i, n):
            lefts = left_inputs[i] | left_inputs[j]
            rights = right_inputs[i] | right_inputs[j]
            if lefts and rights:
                value: Optional[Box] = box
                side = SIDE_SELF
            elif lefts:
                value = fbb_of_slots(left_index, lefts)
                side = SIDE_LEFT
            elif rights:
                value = fbb_of_slots(right_index, rights)
                side = SIDE_RIGHT
            else:
                value = None
                side = SIDE_SELF
            index.fbb_pair[(i, j)] = value
            if value is not None and value is not box:
                ensure_target(value, side)

    # ----------------------------------------------------------- lca closure
    def compute_lca(first: Box, second: Box) -> Tuple[Box, str]:
        if first is second:
            return first, index.targets[first].side
        info_first = index.targets[first]
        info_second = index.targets[second]
        if first is box or second is box or info_first.side != info_second.side:
            return box, SIDE_SELF
        side = info_first.side
        child = left_box if side == SIDE_LEFT else right_box
        child_index = left_index if side == SIDE_LEFT else right_index
        if first is child or second is child:
            return child, side
        return child_index.lca_of(first, second), side

    changed = True
    while changed:
        changed = False
        current = list(index.targets.keys())
        for first in current:
            for second in current:
                key = (first, second)
                if key in index.lca:
                    continue
                ancestor, side = compute_lca(first, second)
                if ancestor not in index.targets:
                    ensure_target(ancestor, side)
                    changed = True
                index.lca[(first, second)] = ancestor
                index.lca[(second, first)] = ancestor

    box.index = index
    return index


def build_index(circuit: AssignmentCircuit, relation_backend: Optional[str] = None) -> None:
    """Build the full index ``I(C)`` bottom-up over all boxes (Lemma 6.3)."""
    # Post-order traversal of the tree of boxes.
    order: List[Box] = []
    stack: List[Tuple[Box, bool]] = [(circuit.root_box, False)]
    while stack:
        current, visited = stack.pop()
        if visited or current.is_leaf_box():
            order.append(current)
        else:
            stack.append((current, True))
            stack.append((current.right_child, False))
            stack.append((current.left_child, False))
    for current in order:
        build_box_index(current, relation_backend=relation_backend)
