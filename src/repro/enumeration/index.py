"""The enumeration index (Definition 6.1, Lemma 6.3).

For every box ``B`` of the circuit the index stores:

* for every ∪-gate ``g`` of ``B``, its **first interesting box** ``fib(g)``:
  the first box (in the preorder of ``B``'s subtree) containing a var- or
  ×-gate ∪-reachable from ``g``;
* for every boxed set ``Γ ⊆ B`` with ``1 ≤ |Γ| ≤ 2``, its **first
  bidirectional box** ``fbb(Γ)``: the first box whose two subtrees both
  contain gates ∪-reachable from ``Γ``;
* the ∪-reachability relation ``R(X, B)`` for every *target box* ``X``
  (every fib/fbb value and the children of ``B``), together with the
  preorder ranks of the target boxes.

Everything is computed bottom-up, per box, from the children's index entries
(equations (3)–(5) of the appendix), which is exactly what makes the index
incrementally maintainable: when an update rebuilds the boxes on a trunk
(Lemma 7.3), recomputing the index entries of those boxes reuses the
untouched entries of the reused subtrees.

Preorder ranks are stored as *path tuples* relative to the box owning the
index ((0,) for the box itself, (1, …) for targets in the left subtree,
(2, …) for targets in the right subtree); comparing tuples lexicographically
compares preorder positions without any global numbering — global numberings
would be invalidated by updates.  Because a rank is the literal box-tree path
to the target, the lca queries of Definition 6.1 reduce to rank-prefix
arithmetic: ``X`` is an ancestor of ``Y`` iff ``rank(X)`` minus its trailing
0 is a prefix of ``rank(Y)``, and the lca of two targets is the box at their
ranks' longest common prefix.  The index therefore stores no lca table at
all — the quadratic fixed-point closure the paper's presentation suggests is
replaced by O(1)-per-pair arithmetic on material the index already carries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.circuits.gates import AssignmentCircuit, Box
from repro.enumeration.relations import Relation, iter_bits
from repro.enumeration.wiring import wire_relation
from repro.errors import CircuitStructureError, IndexError_

__all__ = [
    "TargetInfo",
    "BoxIndex",
    "build_box_index",
    "build_index",
    "fib_of_slots",
    "fbb_of_slots",
    "fib_of_mask",
    "fbb_of_mask",
]

SIDE_SELF = "self"
SIDE_LEFT = "left"
SIDE_RIGHT = "right"


class TargetInfo:
    """Index entry for one target box ``X`` of a box ``B``.

    Holds the ∪-reachability relation ``R(X, B)``, which side of ``B`` the
    target lies on, and its preorder rank (a path tuple, see module docs).
    """

    __slots__ = ("box", "relation", "side", "rank")

    def __init__(self, box: Box, relation: Relation, side: str, rank: Tuple[int, ...]):
        self.box = box
        self.relation = relation
        self.side = side
        self.rank = rank

    def __repr__(self) -> str:  # pragma: no cover
        return f"TargetInfo(side={self.side}, rank={self.rank}, rel={len(self.relation)})"


class BoxIndex:
    """The per-box part of the index structure ``I(C)`` of Definition 6.1."""

    __slots__ = ("box", "fib", "fbb_pair", "targets", "by_rank", "fib_ranks", "fbb_ranks")

    def __init__(self, box: Box):
        self.box = box
        #: per ∪-gate slot: the first interesting box
        self.fib: List[Box] = []
        #: per pair of slots (i ≤ j): the first bidirectional box (missing = None)
        self.fbb_pair: Dict[Tuple[int, int], Box] = {}
        #: target box -> TargetInfo (relation, side, rank)
        self.targets: Dict[Box, TargetInfo] = {}
        #: rank -> target box (lets lca_of resolve a computed rank to a box)
        self.by_rank: Dict[Tuple[int, ...], Box] = {}
        #: per ∪-gate slot: rank of fib[slot] (parallel to fib; avoids a
        #: targets lookup per slot on the enumeration hot path)
        self.fib_ranks: List[Tuple[int, ...]] = []
        #: (i, j) -> (rank, box) for fbb_pair (precomputed rank for min-scans)
        self.fbb_ranks: Dict[Tuple[int, int], Tuple[Tuple[int, ...], Box]] = {}

    # ------------------------------------------------------------------ api
    def rank_of(self, box: Box) -> Tuple[int, ...]:
        """Return the preorder rank of a target box."""
        try:
            return self.targets[box].rank
        except KeyError:
            raise IndexError_("box is not a target of this index entry") from None

    def relation_to(self, box: Box) -> Relation:
        """Return the stored relation ``R(box, B)``."""
        try:
            return self.targets[box].relation
        except KeyError:
            raise IndexError_("no stored reachability relation for this target box") from None

    def lca_of(self, first: Box, second: Box) -> Box:
        """Return the least common ancestor of two target boxes.

        Computed from the rank path tuples: the lca sits at the longest
        common prefix of the two paths.  When that box is itself a target
        (always the case for the pairs Algorithm 3 queries) it is resolved
        through ``by_rank``; otherwise the path prefix is walked down the
        box tree, so the query still answers correctly — though only
        *targets* carry a stored reachability relation.
        """
        try:
            first_rank = self.targets[first].rank
            second_rank = self.targets[second].rank
        except KeyError:
            raise IndexError_("lca of a non-target pair requested") from None
        if first_rank == second_rank:
            return first
        common = 0
        for a, b in zip(first_rank, second_rank):
            if a != b:
                break
            common += 1
        ancestor = self.by_rank.get(first_rank[:common] + (0,))
        if ancestor is not None:
            return ancestor
        # The lca is not a stored target: its path prefix consists of 1/2
        # steps only (a terminating 0 would have hit by_rank above), so walk
        # it from the owning box.
        node = self.box
        for step in first_rank[:common]:
            node = node.left_child if step == 1 else node.right_child
        return node

    def is_ancestor(self, ancestor: Box, descendant: Box) -> bool:
        """Return True if ``ancestor`` is an ancestor of (or equal to) ``descendant``.

        A pure rank comparison: the ancestor's path (its rank minus the
        trailing 0) must be a prefix of the descendant's rank.
        """
        try:
            ancestor_rank = self.targets[ancestor].rank
            descendant_rank = self.targets[descendant].rank
        except KeyError:
            raise IndexError_("ancestor query on a non-target pair") from None
        prefix = len(ancestor_rank) - 1
        return ancestor_rank[:prefix] == descendant_rank[:prefix]

    def __repr__(self) -> str:  # pragma: no cover
        return f"BoxIndex(targets={len(self.targets)}, width={len(self.fib)})"


# --------------------------------------------------------------------------- set-level helpers
def fib_of_mask(index: BoxIndex, slot_mask: int) -> Box:
    """``fib(Γ)`` for a boxed set given as a bitmask over slots (equation (1)).

    Mask-native twin of :func:`fib_of_slots`: iterates the set bits and
    compares the precomputed ``fib_ranks``, with no set/sort allocation.
    """
    best: Optional[Box] = None
    best_rank: Optional[Tuple[int, ...]] = None
    fib = index.fib
    fib_ranks = index.fib_ranks
    while slot_mask:
        low = slot_mask & -slot_mask
        slot = low.bit_length() - 1
        slot_mask ^= low
        rank = fib_ranks[slot]
        if best_rank is None or rank < best_rank:
            best, best_rank = fib[slot], rank
    if best is None:
        raise IndexError_("fib of an empty boxed set requested")
    return best


def fbb_of_mask(index: BoxIndex, slot_mask: int) -> Optional[Box]:
    """``fbb(Γ)`` for a boxed set given as a bitmask over slots.

    Mask-native twin of :func:`fbb_of_slots`: scans the (i ≤ j) bit pairs of
    the mask against the precomputed ``fbb_ranks`` table.
    """
    best: Optional[Box] = None
    best_rank: Optional[Tuple[int, ...]] = None
    fbb_ranks = index.fbb_ranks
    outer = slot_mask
    while outer:
        low_i = outer & -outer
        i = low_i.bit_length() - 1
        inner = outer  # pairs (i, j) with j >= i, including the singleton (i, i)
        outer ^= low_i
        while inner:
            low_j = inner & -inner
            j = low_j.bit_length() - 1
            inner ^= low_j
            entry = fbb_ranks.get((i, j))
            if entry is None:
                continue
            rank, candidate = entry
            if best_rank is None or rank < best_rank:
                best, best_rank = candidate, rank
    return best


def fib_of_slots(index: BoxIndex, slots: Iterable[int]) -> Box:
    """``fib(Γ)`` for a boxed set given by its slots (equation (1))."""
    best: Optional[Box] = None
    best_rank: Optional[Tuple[int, ...]] = None
    targets = index.targets
    fib = index.fib
    for slot in slots:
        candidate = fib[slot]
        rank = targets[candidate].rank
        if best_rank is None or rank < best_rank:
            best, best_rank = candidate, rank
    if best is None:
        raise IndexError_("fib of an empty boxed set requested")
    return best


def fbb_of_slots(index: BoxIndex, slots: Iterable[int]) -> Optional[Box]:
    """``fbb(Γ)`` for a boxed set given by its slots.

    Following Definition 6.1 and Observation 6.2, the first bidirectional box
    of a larger set is the preorder-minimum of the stored values for the
    pairs (and singletons) included in the set.
    """
    slot_list = sorted(set(slots))
    best: Optional[Box] = None
    best_rank: Optional[Tuple[int, ...]] = None
    fbb_pair = index.fbb_pair
    targets = index.targets
    for i, a in enumerate(slot_list):
        for b in slot_list[i:]:
            candidate = fbb_pair.get((a, b))
            if candidate is None:
                continue
            rank = targets[candidate].rank
            if best_rank is None or rank < best_rank:
                best, best_rank = candidate, rank
    return best


# --------------------------------------------------------------------------- construction
def _finalize_ranks(index: BoxIndex) -> None:
    """Precompute the rank tables read by the mask-native lookups."""
    targets = index.targets
    index.fib_ranks = [targets[b].rank for b in index.fib]
    index.fbb_ranks = {key: (targets[b].rank, b) for key, b in index.fbb_pair.items()}


def build_box_index(box: Box, relation_backend: Optional[str] = None) -> BoxIndex:
    """Build the index entry of a single box from its children's entries.

    For internal boxes, both children must already carry a ``BoxIndex`` (the
    construction is bottom-up).  The freshly built index is also stored on
    ``box.index`` for convenience.
    """
    index = BoxIndex(box)
    n = box.n_unions
    targets = index.targets
    by_rank = index.by_rank
    identity = Relation.identity(n, backend=relation_backend)
    targets[box] = TargetInfo(box, identity, SIDE_SELF, (0,))
    by_rank[(0,)] = box

    if box.is_leaf_box():
        # Fast path: every slot of a leaf box has only var-gate inputs, so the
        # box is its own first interesting box for every slot, no pair has a
        # bidirectional box, and the only target is the box itself.
        index.fib = [box] * n
        _finalize_ranks(index)
        box.index = index
        return index

    left_box = box.left_child
    right_box = box.right_child
    left_index: BoxIndex = left_box.index
    right_index: BoxIndex = right_box.index
    if left_index is None or right_index is None:
        raise IndexError_("children must be indexed before their parent (bottom-up order)")

    # Input wiring, recorded once at circuit-construction time
    # (Box.add_union_gate / the box plans); no isinstance rescan of gate
    # inputs happens here.
    local_mask = box.local_mask
    left_inputs = box.left_input_masks
    right_inputs = box.right_input_masks

    left_relation = wire_relation(box, SIDE_LEFT, backend=relation_backend)
    right_relation = wire_relation(box, SIDE_RIGHT, backend=relation_backend)
    left_targets = left_index.targets
    right_targets = right_index.targets
    left_rank = (1,) + left_targets[left_box].rank
    right_rank = (2,) + right_targets[right_box].rank
    targets[left_box] = TargetInfo(left_box, left_relation, SIDE_LEFT, left_rank)
    by_rank[left_rank] = left_box
    targets[right_box] = TargetInfo(right_box, right_relation, SIDE_RIGHT, right_rank)
    by_rank[right_rank] = right_box

    fib = index.fib
    fbb_pair = index.fbb_pair

    if left_box.is_leaf_box() and right_box.is_leaf_box():
        # Cherry fast path (both children are leaves) — what the generic code
        # below computes, specialized: a leaf's fib is itself for every slot
        # and its fbb table is empty, so the only targets are the box and its
        # two children, every fib value is one of those, and a pair of slots
        # has a fbb iff it reaches both children (then the fbb is the box).
        for slot in range(n):
            if (local_mask >> slot) & 1:
                fib.append(box)
            elif left_inputs[slot]:
                fib.append(left_box)
            elif right_inputs[slot]:
                fib.append(right_box)
            else:
                raise CircuitStructureError("∪-gate with no inputs during index construction")
        for i in range(n):
            lefts_i = left_inputs[i]
            rights_i = right_inputs[i]
            for j in range(i, n):
                if (lefts_i | left_inputs[j]) and (rights_i | right_inputs[j]):
                    fbb_pair[(i, j)] = box
        _finalize_ranks(index)
        box.index = index
        return index

    def ensure_target(target: Box, side: str) -> None:
        if target in targets:
            return
        if side == SIDE_LEFT:
            info = left_targets.get(target)
            wire = left_relation
            prefix = 1
        else:
            info = right_targets.get(target)
            wire = right_relation
            prefix = 2
        if info is None:
            raise IndexError_("target box is not indexed in the child entry")
        rank = (prefix,) + info.rank
        targets[target] = TargetInfo(target, info.relation.compose(wire), side, rank)
        by_rank[rank] = target

    # ------------------------------------------------------------------- fib
    for slot in range(n):
        if (local_mask >> slot) & 1:
            fib.append(box)
            continue
        if left_inputs[slot]:
            side = SIDE_LEFT
            child_index = left_index
            child_slots = left_inputs[slot]
        elif right_inputs[slot]:
            side = SIDE_RIGHT
            child_index = right_index
            child_slots = right_inputs[slot]
        else:
            raise CircuitStructureError("∪-gate with no inputs during index construction")
        best = fib_of_slots(child_index, iter_bits(child_slots))
        fib.append(best)
        ensure_target(best, side)

    # ------------------------------------------------------------------- fbb
    for i in range(n):
        lefts_i = left_inputs[i]
        rights_i = right_inputs[i]
        for j in range(i, n):
            lefts = lefts_i | left_inputs[j]
            rights = rights_i | right_inputs[j]
            if lefts and rights:
                fbb_pair[(i, j)] = box
            elif lefts:
                value = fbb_of_slots(left_index, iter_bits(lefts))
                if value is not None:
                    fbb_pair[(i, j)] = value
                    ensure_target(value, SIDE_LEFT)
            elif rights:
                value = fbb_of_slots(right_index, iter_bits(rights))
                if value is not None:
                    fbb_pair[(i, j)] = value
                    ensure_target(value, SIDE_RIGHT)

    _finalize_ranks(index)
    box.index = index
    return index


def build_index(circuit: AssignmentCircuit, relation_backend: Optional[str] = None) -> None:
    """Build the full index ``I(C)`` bottom-up over all boxes (Lemma 6.3)."""
    # Post-order traversal of the tree of boxes.
    order: List[Box] = []
    stack: List[Tuple[Box, bool]] = [(circuit.root_box, False)]
    while stack:
        current, visited = stack.pop()
        if visited or current.is_leaf_box():
            order.append(current)
        else:
            stack.append((current, True))
            stack.append((current.right_child, False))
            stack.append((current.left_child, False))
    for current in order:
        build_box_index(current, relation_backend=relation_backend)
