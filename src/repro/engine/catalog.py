"""`QueryCatalog`: persistent storage of compiled standing queries.

The catalog packages the query-only half of the paper's preprocessing
pipeline — translate (Lemma 7.4 / Theorem 8.5), homogenize (Lemma 2.1) and
the memoized box plans of the circuit construction (Lemma 3.7) — behind a
content-addressed directory of JSON files, one per distinct query content
(:func:`repro.automata.serialize.query_digest`).

The serving workflow it enables:

* an **offline/compile process** builds the standing queries once and
  ``save()``\\ s them (ideally after building at least one document, so the
  plan cache is warm);
* each **serving process** ``get()``\\ s the compiled queries at startup —
  a JSON load, orders of magnitude cheaper than compilation — and then pays
  only the per-document ``O(|T| · poly|Q'|)`` build of Lemma 7.3 when
  documents arrive.

Files are written atomically (temp file + ``os.replace``), so a catalog
directory shared between processes never exposes half-written entries — this
is what lets the sharding workers of ``Engine(workers=N)`` share one catalog
directory.

Alongside the entries the catalog maintains a ``manifest.json``: the library
version that wrote the catalog plus per-digest metadata (kind, sizes, save
time).  Opening a catalog written by an incompatible library version raises
a precise :class:`~repro.errors.CatalogVersionError`; :meth:`QueryCatalog.gc`
garbage-collects entries whose digest is no longer referenced.  Entry files
remain the source of truth — the manifest is metadata, rebuilt on demand —
so catalogs written before the manifest existed keep loading.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
import uuid
from typing import Dict, Iterable, List, Optional, Set

from repro.automata.serialize import query_digest
from repro.automata.unranked_tva import UnrankedTVA
from repro.automata.wva import WVA
from repro.core.enumerator import compiled_automaton_for
from repro.errors import CatalogError, CatalogVersionError
from repro.engine.codec import CompiledQuery, compiled_query_from_json, compiled_query_to_json

__all__ = ["CatalogLease", "QueryCatalog", "MANIFEST_FORMAT", "MANIFEST_NAME", "LEASE_DIR"]

#: format number of ``manifest.json`` (bumped on incompatible layout changes)
MANIFEST_FORMAT = 1
MANIFEST_NAME = "manifest.json"

#: subdirectory of the catalog root holding the live-consumer lease files
LEASE_DIR = "leases"


class CatalogLease:
    """One live consumer's claim on a set of catalog digests.

    Every open :class:`repro.Engine` (and, through it, every
    :class:`repro.net.server.EngineServer`) holds one lease: a small JSON
    file under ``<catalog>/leases/`` naming the digests of the queries it
    has compiled, rewritten atomically as queries are added.  With leases on
    disk, :meth:`QueryCatalog.gc` needs no manual ``keep=`` list — the union
    of every live lease's digests *is* the keep set, computed safely across
    processes.  A lease whose recording process has died (same host, dead
    pid) is stale and reaped on the next :meth:`QueryCatalog.live_digests`;
    a lease from another host is conservatively assumed live.
    """

    def __init__(self, catalog: "QueryCatalog", path: str):
        self._catalog = catalog
        self.path = path
        self.released = False
        self._digests: Set[str] = set()
        self._created_unix = time.time()
        self._write()

    def _write(self) -> None:
        self._catalog._atomic_write(
            self.path,
            json.dumps(
                {
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "created_unix": self._created_unix,
                    "digests": sorted(self._digests),
                },
                sort_keys=True,
                indent=0,
            ),
        )

    def add(self, digest: str) -> None:
        """Record one digest as live (idempotent; a no-op once released)."""
        if self.released or digest in self._digests:
            return
        self._digests.add(digest)
        self._write()

    def digests(self) -> List[str]:
        return sorted(self._digests)

    def release(self) -> None:
        """Drop the claim (idempotent): the lease file is removed."""
        if self.released:
            return
        self.released = True
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def _pid_alive(pid: int) -> bool:
    """Whether a pid exists on this host (EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def _compatible_versions(wrote: str, reads: str) -> bool:
    """Same-major-version compatibility rule for persisted compiled queries."""
    return str(wrote).split(".")[0] == str(reads).split(".")[0]


def _kind_of(query) -> str:
    if isinstance(query, UnrankedTVA):
        return "tree"
    if isinstance(query, WVA):
        return "word"
    raise CatalogError(
        f"cannot catalog {type(query).__name__}; expected an UnrankedTVA or a WVA"
    )


class QueryCatalog:
    """A directory of persisted compiled queries, keyed by content digest."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        #: in-process cache of loaded entries (digest → CompiledQuery), so a
        #: store serving many documents of one query hits the disk once.
        self._loaded: Dict[str, CompiledQuery] = {}
        # Fail fast on a catalog written by an incompatible library version
        # (a missing manifest is a pre-manifest catalog and stays readable).
        self.read_manifest()

    # -------------------------------------------------------------- manifest
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def read_manifest(self) -> Optional[Dict]:
        """The parsed ``manifest.json``, or ``None`` if none was written yet.

        Raises :class:`~repro.errors.CatalogVersionError` when the manifest
        was written by an incompatible library major version or an unknown
        manifest format — naming both versions and the path, so a stale
        catalog is distinguishable from a corrupt one (which raises
        :class:`~repro.errors.CatalogError`).
        """
        from repro import __version__

        try:
            with open(self.manifest_path, encoding="utf8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return None
        except ValueError as exc:
            raise CatalogError(
                f"corrupt catalog manifest {self.manifest_path}: {exc}"
            ) from exc
        fmt = manifest.get("manifest_format")
        if fmt != MANIFEST_FORMAT:
            raise CatalogVersionError(
                f"catalog {self.root} has manifest format {fmt!r}; this library "
                f"reads format {MANIFEST_FORMAT}"
            )
        wrote = manifest.get("library_version", "0")
        if not _compatible_versions(wrote, __version__):
            raise CatalogVersionError(
                f"catalog {self.root} was written by library version {wrote}, "
                f"incompatible with this library version {__version__} "
                f"(major versions must match); re-save its queries or point "
                f"the engine at a fresh catalog directory"
            )
        return manifest

    def _write_manifest(self, manifest: Dict) -> None:
        from repro import __version__

        manifest = dict(manifest)
        manifest["manifest_format"] = MANIFEST_FORMAT
        manifest["library_version"] = __version__
        self._atomic_write(
            self.manifest_path, json.dumps(manifest, sort_keys=True, indent=0)
        )

    def _update_manifest(self, digest: str, meta: Optional[Dict]) -> None:
        """Record (``meta`` is a dict) or drop (``meta is None``) one entry.

        Concurrent writers race benignly: entry files are the source of
        truth, written atomically, and a lost manifest update only loses
        advisory metadata (:meth:`gc` works off the file listing).
        """
        manifest = self.read_manifest() or {"entries": {}}
        entries = manifest.setdefault("entries", {})
        if meta is None:
            entries.pop(digest, None)
        else:
            entries[digest] = meta
        self._write_manifest(manifest)

    def entry_meta(self, query_or_digest) -> Optional[Dict]:
        """The manifest metadata recorded for an entry (or ``None``)."""
        digest = (
            query_or_digest
            if isinstance(query_or_digest, str)
            else self.digest_of(query_or_digest)
        )
        manifest = self.read_manifest() or {}
        return (manifest.get("entries") or {}).get(digest)

    # ---------------------------------------------------------------- leases
    @property
    def leases_root(self) -> str:
        return os.path.join(self.root, LEASE_DIR)

    def acquire_lease(self) -> CatalogLease:
        """Open a :class:`CatalogLease` registering this process as live.

        Every open :class:`repro.Engine` acquires one automatically and
        records each digest it compiles, so :meth:`gc` with no ``keep=``
        list never collects a query an open engine (in this process or any
        other sharing the directory) still serves.  Release it (or close
        the engine) when done; leases of dead processes are reaped.
        """
        os.makedirs(self.leases_root, exist_ok=True)
        path = os.path.join(
            self.leases_root, f"lease-{os.getpid()}-{uuid.uuid4().hex}.json"
        )
        return CatalogLease(self, path)

    def live_digests(self) -> Set[str]:
        """The union of every live lease's digests (the implicit keep set).

        Stale leases — written by a process on this host that no longer
        exists, or unreadable despite the atomic lease writes — are removed
        while scanning.  Leases from other hosts cannot be liveness-probed
        and are conservatively counted as live.
        """
        live: Set[str] = set()
        try:
            names = os.listdir(self.leases_root)
        except FileNotFoundError:
            return live
        host = socket.gethostname()
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.leases_root, name)
            try:
                with open(path, encoding="utf8") as handle:
                    lease = json.load(handle)
            except FileNotFoundError:
                continue  # released between the listing and the read
            except (ValueError, OSError):
                # Lease writes are atomic, so an unreadable lease is real
                # corruption protecting nothing: reap it.
                self._unlink_lease(path)
                continue
            pid = lease.get("pid")
            if lease.get("host") == host and isinstance(pid, int) and not _pid_alive(pid):
                self._unlink_lease(path)
                continue
            digests = lease.get("digests")
            if isinstance(digests, list):
                live.update(d for d in digests if isinstance(d, str))
        return live

    @staticmethod
    def _unlink_lease(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def gc(self, keep: Optional[Iterable] = None) -> List[str]:
        """Delete every persisted entry whose digest is not in ``keep``.

        ``keep`` is an iterable of digests and/or query objects (digested
        here).  With ``keep=None`` (the default) the keep set is computed
        from the **live leases** (:meth:`live_digests`): every digest some
        open engine still serves survives, so an operator can run
        ``catalog.gc()`` as a cron job without coordinating a manual list.
        Works off the entry-file listing, so pre-manifest entries and
        entries saved by other processes are collected too; the manifest is
        pruned to the survivors.  Returns the sorted list of removed digests.
        """
        if keep is None:
            kept = self.live_digests()
        else:
            kept = {
                item if isinstance(item, str) else self.digest_of(item) for item in keep
            }
        removed = [digest for digest in self.digests() if digest not in kept]
        for digest in removed:
            self._loaded.pop(digest, None)
            try:
                os.unlink(self.path_of(digest))
            except FileNotFoundError:
                pass
        if removed:
            manifest = self.read_manifest() or {"entries": {}}
            entries = manifest.setdefault("entries", {})
            for digest in removed:
                entries.pop(digest, None)
            self._write_manifest(manifest)
        return sorted(removed)

    # --------------------------------------------------------------- low-level
    def _atomic_write(self, path: str, text: str) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=self.root, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf8") as handle:
                handle.write(text)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    # ------------------------------------------------------------------ keys
    def digest_of(self, query) -> str:
        """The content digest a query is stored under."""
        return query_digest(query)

    def path_of(self, digest: str) -> str:
        """The file path of a digest's entry (whether or not it exists)."""
        return os.path.join(self.root, digest + ".json")

    def __contains__(self, query_or_digest) -> bool:
        digest = (
            query_or_digest
            if isinstance(query_or_digest, str)
            else self.digest_of(query_or_digest)
        )
        return os.path.exists(self.path_of(digest))

    def digests(self) -> List[str]:
        """The digests of all persisted entries.

        Leftover atomic-write temp files (``.tmp-*.json``, possible after a
        crash between ``mkstemp`` and ``os.replace``) and the manifest are
        not entries.
        """
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
            and not name.startswith(".tmp-")
            and name != MANIFEST_NAME
        )

    def __len__(self) -> int:
        return len(self.digests())

    # ----------------------------------------------------------------- write
    def save(self, query, automaton=None) -> CompiledQuery:
        """Compile (or accept) and persist the compiled form of ``query``.

        ``automaton`` may pass a pre-compiled homogenized binary automaton
        (e.g. one whose plan cache was warmed by building documents); when
        omitted the query is compiled through the shared in-process cache.
        The write is atomic and idempotent: saving equal content twice
        rewrites the same file.
        """
        kind = _kind_of(query)
        if automaton is None:
            automaton = compiled_automaton_for(query)
        digest = self.digest_of(query)
        saved_unix = time.time()
        text = compiled_query_to_json(
            query, automaton, kind, extra_meta={"saved_unix": saved_unix}
        )
        self._atomic_write(self.path_of(digest), text)
        self._update_manifest(
            digest,
            {
                "kind": kind,
                "saved_unix": saved_unix,
                "automaton_states": len(automaton.states),
                "automaton_size": automaton.size(),
                "file_bytes": len(text.encode("utf8")),
            },
        )
        entry = CompiledQuery(kind=kind, digest=digest, automaton=automaton)
        self._loaded[digest] = entry
        return entry

    def remove(self, query_or_digest) -> None:
        """Delete a persisted entry (no error if it does not exist)."""
        digest = (
            query_or_digest
            if isinstance(query_or_digest, str)
            else self.digest_of(query_or_digest)
        )
        self._loaded.pop(digest, None)
        try:
            os.unlink(self.path_of(digest))
        except FileNotFoundError:
            pass
        if os.path.exists(self.manifest_path):
            self._update_manifest(digest, None)

    # ------------------------------------------------------------------ read
    def _load_if_present(self, digest: str) -> Optional[CompiledQuery]:
        """Load one entry from disk; ``None`` if its file does not exist.

        This is the single disk-read path, and it distinguishes the two
        failure modes a *shared* catalog can produce:

        * **the entry vanished** (e.g. another process ran :meth:`gc` after
          this one listed or probed it) — returns ``None``, letting callers
          decide between compiling and raising a precise missing-entry error;
        * **the entry is unreadable** (truncated file, invalid JSON, a
          payload that does not decode) — raises :class:`CatalogError`
          naming the path and digest, never a bare ``json`` / ``KeyError``
          crash.  Entry writes are atomic, so this means real corruption,
          not a concurrent writer.
        """
        path = self.path_of(digest)
        start = time.perf_counter()
        try:
            with open(path, encoding="utf8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        try:
            entry = compiled_query_from_json(text, expected_digest=digest)
        except CatalogError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise CatalogError(
                f"corrupt or truncated compiled-query entry {path} "
                f"(digest {digest!r}): {exc}"
            ) from exc
        entry.load_seconds = time.perf_counter() - start
        self._loaded[digest] = entry
        return entry

    def load(self, digest: str, use_cache: bool = True) -> CompiledQuery:
        """Load a persisted compiled query by digest.

        ``load_seconds`` on the result records the wall-clock cost of the
        disk read + payload reconstruction (the quantity the serving
        benchmark compares against compile time).  A digest with no entry
        file raises a precise :class:`CatalogError` (the entry may never
        have been saved — or may just have been garbage-collected by
        another process sharing the directory).
        """
        if use_cache:
            cached = self._loaded.get(digest)
            if cached is not None:
                return cached
        entry = self._load_if_present(digest)
        if entry is None:
            raise CatalogError(
                f"no compiled query with digest {digest!r} in {self.root} "
                f"(never saved, or removed by a concurrent gc())"
            )
        return entry

    def get(self, query) -> CompiledQuery:
        """The compiled form of ``query``: from disk if persisted, else compiled.

        Either way the result is attached to the query object
        (:meth:`CompiledQuery.attach`), so later enumerators for this query
        content skip compilation.  A cache miss does *not* implicitly write
        to disk — persisting is an explicit :meth:`save`.

        Safe against a concurrent :meth:`gc` in another process sharing the
        directory (e.g. the parent of a shard pool collecting a digest while
        a worker loads it): an entry that vanishes between the existence
        probe and the read is treated as never persisted and compiled
        in-process.  A *corrupt* entry still raises loudly — silently
        recompiling could mask a catalog that keeps serving damaged files.
        """
        digest = self.digest_of(query)
        cached = self._loaded.get(digest)
        if cached is not None:
            return cached.attach(query)
        entry = self._load_if_present(digest)
        if entry is not None:
            return entry.attach(query)
        entry = CompiledQuery(
            kind=_kind_of(query), digest=digest, automaton=compiled_automaton_for(query)
        )
        self._loaded[digest] = entry
        return entry.attach(query)
