"""Edit-stable cursors: resumable paginated enumeration with epochs.

The paper's model (Theorem 8.1 / Theorem 8.5) restarts enumeration after
every update — :class:`~repro.errors.StaleIteratorError` at the enumerator
layer.  A serving deployment paginates: a client fetches a page of answers,
edits arrive from other clients, the client comes back for the next page.
Restarting from scratch on every edit would make pagination quadratic and,
worse, *silently* re-deliver answers.  The cursor refines the restart model
with a precise resume-or-invalidate rule built on two facts:

* the mask-native Algorithm 2 runs on an explicit, checkpointable frame
  stack (:class:`repro.enumeration.duplicate_free.MaskStackEnumeration`),
  so "where the enumeration stopped" is a passive value whose remaining
  reads are confined to specific ∪-slots of specific boxes — the **slot-mask
  trunk** reported by
  :meth:`~repro.enumeration.duplicate_free.MaskStackEnumeration.dependency_masks`
  (pending-step lower masks plus the live ×-provenance slots of in-flight
  activations);
* the dirty sets of Lemma 7.3 are upward closed — an edit that rebuilds a
  box rebuilds all its ancestors — so a box *not* rebuilt by an edit roots a
  completely untouched subtree; and for a box that *was* rebuilt, the
  maintainer's :class:`~repro.incremental.maintainer.BoxDelta` records which
  of its ∪-slots root a changed sub-DAG (per-slot fingerprints over the
  union wiring stamped at build time).

Together these give the fine-grained trunk test.  After an edit batch, per
cursor, intersect each referenced box's *remaining-read* slot mask with the
batch's *changed-slot* mask for that box:

* **no overlap** — every slot the frozen enumeration can still read roots
  content-identical structure in the rebuilt circuit (upward closure covers
  the boxes the batch did not touch at all; equal slot fingerprints cover
  the rebuilt ones).  The cursor **resumes**: its frames are rebound from
  the old boxes to their rebuilt equivalents (safe precisely because the
  read slots are fingerprint-equal — and necessary so the *next* batch's
  deltas, keyed by the current boxes' build serials, can be compared against
  this cursor at all), and it continues the byte-identical duplicate-free
  stream of its base epoch with the delay guarantees of Theorem 6.5;
* **overlap** — the cursor is **deterministically invalidated**: the next
  fetch raises :class:`~repro.errors.CursorInvalidatedError` carrying a
  :class:`CursorInvalidation` report naming the overlapping regions (the
  document-node span of each hit box and the ∪-slot indices that overlap),
  and the client reopens a cursor on the updated document.

Boxes are named by their monotonic build ``serial`` everywhere in this
protocol (cursor dependency masks, maintainer deltas, the wire codec): an
``id()``-based comparison would alias a collected old box with a freshly
built one the allocator placed at the same address.  The store checks the
masks *eagerly* at edit time (while both sides of every delta are alive),
which is what makes the signal precise rather than heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.assignments import EMPTY_ASSIGNMENT, Assignment
from repro.circuits.gates import Box
from repro.enumeration.duplicate_free import MaskStackEnumeration
from repro.errors import CursorInvalidatedError, ServingError

__all__ = ["Cursor", "CursorPage", "CursorInvalidation"]

ACTIVE = "active"
EXHAUSTED = "exhausted"
INVALIDATED = "invalidated"
CLOSED = "closed"


def _leaf_span(box: Box) -> Tuple[object, object]:
    """The leftmost and rightmost document leaf ids under a box's subtree."""
    node = box
    while node.left_child is not None:
        node = node.left_child
    lo = node.leaf_payload
    node = box
    while node.right_child is not None:
        node = node.right_child
    return lo, node.leaf_payload


@dataclass(frozen=True)
class CursorInvalidation:
    """Why (and when) a cursor stopped being resumable.

    ``regions`` names the true overlaps between the edit batch's changed
    slots and the cursor's remaining reads, one entry per hit box:
    ``(box_label, first_leaf, last_leaf, slots)`` where the two leaf ids
    bound the document region the box covers and ``slots`` are the
    overlapping ∪-slot indices.  The tuple is plain strings/ints so the
    exact same report — text and all — crosses the wire to
    :class:`~repro.net.client.RemoteEngine` clients unchanged.
    """

    cursor_id: int
    document_id: object
    base_epoch: int
    invalidated_epoch: int
    answers_delivered: int
    edit: str
    boxes_hit: int
    regions: Tuple[Tuple[str, object, object, Tuple[int, ...]], ...] = field(
        default=()
    )

    def describe(self) -> str:
        text = (
            f"cursor {self.cursor_id} on document {self.document_id!r} "
            f"(opened at epoch {self.base_epoch}, {self.answers_delivered} answers delivered) "
            f"was invalidated at epoch {self.invalidated_epoch} by {self.edit}: "
            f"the edit changed {self.boxes_hit} box(es) the cursor's remaining "
            f"enumeration still reads"
        )
        if self.regions:
            parts = [
                f"{label!r} box over document nodes {lo}..{hi} at slot(s) "
                + ",".join(str(s) for s in slots)
                for label, lo, hi, slots in self.regions
            ]
            text += " (overlap: " + "; ".join(parts) + ")"
        return text


@dataclass(frozen=True)
class CursorPage:
    """One fetched page of answers."""

    answers: List[Assignment]
    offset: int  #: index of the first answer within the cursor's stream
    exhausted: bool  #: True when the stream ended within (or at) this page

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self):
        return iter(self.answers)


class Cursor:
    """A resumable, duplicate-free, paginated view of one document's answers.

    Created through :meth:`repro.engine.local.LocalDocument.open_cursor` /
    :meth:`repro.engine.Document.page`.  Pages are
    duplicate-free *across* pages because one underlying enumeration
    (Algorithm 2, Theorem 5.3) produces the whole stream; pagination only
    slices it.
    """

    def __init__(self, document, cursor_id: int, page_size: int):
        if page_size < 1:
            raise ServingError("cursor page_size must be >= 1")
        self.document = document
        self.cursor_id = cursor_id
        self.page_size = page_size
        self.base_epoch = document.epoch
        self.delivered = 0
        self.status = ACTIVE
        self.invalidation: Optional[CursorInvalidation] = None
        gates, self._pending_empty = document._root_boxed_set()
        self._enum: Optional[MaskStackEnumeration] = (
            MaskStackEnumeration(gates) if gates else None
        )

    # ------------------------------------------------------------ introspection
    def referenced_boxes(self) -> List[Box]:
        """The cursor's trunk: boxes its remaining enumeration can still read."""
        if self._enum is None:
            return []
        return self._enum.referenced_boxes()

    def dependency_masks(self):
        """Per-box remaining-read slot masks (``{serial: (box, mask)}``)."""
        if self._enum is None:
            return {}
        return self._enum.dependency_masks()

    def is_active(self) -> bool:
        return self.status == ACTIVE

    # -------------------------------------------------------------- edit hook
    def _note_edits(self, epoch: int, edit_description: str, deltas) -> bool:
        """Called by the owning document after an edit batch.

        ``deltas`` maps old-box serials to
        :class:`~repro.incremental.maintainer.BoxDelta` for every box the
        batch replaced (chained across the batch's edits).  Intersects each
        delta's changed-slot mask with the cursor's remaining-read mask for
        that box; on a true overlap the cursor flips to ``invalidated`` with
        a region-level report, otherwise its frames are rebound to the
        rebuilt boxes and it resumes.  Returns ``True`` on survival.
        """
        if self.status != ACTIVE:
            return False
        if self._enum is None:
            return True  # only the empty answer (or nothing) left: no trunk
        if not deltas:
            return True
        overlaps = []
        rebind = {}
        for serial, (box, read_mask) in self._enum.dependency_masks().items():
            delta = deltas.get(serial)
            if delta is None:
                continue  # not rebuilt: upward closure, untouched subtree
            hit = read_mask & delta.changed_mask
            if hit:
                overlaps.append((delta, hit))
            else:
                rebind[serial] = delta.new_box
        if not overlaps:
            if rebind:
                self._enum.rebind(rebind)
            return True
        regions = []
        for delta, hit in overlaps:
            lo, hi = _leaf_span(delta.old_box)
            slots = []
            while hit:
                low = hit & -hit
                slots.append(low.bit_length() - 1)
                hit ^= low
            regions.append((str(delta.old_box.label), lo, hi, tuple(slots)))
        regions.sort(key=repr)
        self.status = INVALIDATED
        self.invalidation = CursorInvalidation(
            cursor_id=self.cursor_id,
            document_id=self.document.doc_id,
            base_epoch=self.base_epoch,
            invalidated_epoch=epoch,
            answers_delivered=self.delivered,
            edit=edit_description,
            boxes_hit=len(overlaps),
            regions=tuple(regions),
        )
        self._enum = None  # drop the pinned snapshot state
        return False

    # ------------------------------------------------------------------ paging
    def fetch(self, limit: Optional[int] = None) -> CursorPage:
        """Fetch the next page (up to ``limit`` or the cursor's page size).

        Raises :class:`~repro.errors.CursorInvalidatedError` once an edit has
        hit the cursor's trunk, and :class:`~repro.errors.ServingError` on a
        closed cursor.  Fetching an exhausted cursor returns empty pages.
        """
        if self.status == INVALIDATED:
            raise CursorInvalidatedError(self.invalidation.describe(), self.invalidation)
        if self.status == CLOSED:
            raise ServingError(f"cursor {self.cursor_id} is closed")
        want = self.page_size if limit is None else min(limit, self.page_size)
        offset = self.delivered
        answers: List[Assignment] = []
        if self._pending_empty and len(answers) < want:
            answers.append(EMPTY_ASSIGNMENT)
            self._pending_empty = False
        enum = self._enum
        if enum is not None:
            while len(answers) < want:
                try:
                    assignment, _prov = next(enum)
                except StopIteration:
                    self._enum = None
                    break
                answers.append(assignment)
        self.delivered += len(answers)
        exhausted = self._enum is None and not self._pending_empty
        if exhausted and self.status == ACTIVE:
            self.status = EXHAUSTED
            self.document._forget_cursor(self)
        return CursorPage(answers=answers, offset=offset, exhausted=exhausted)

    def fetch_all(self) -> List[Assignment]:
        """Drain the cursor (page loop), returning all remaining answers."""
        out: List[Assignment] = []
        while True:
            page = self.fetch()
            out.extend(page.answers)
            if page.exhausted:
                return out

    def close(self) -> None:
        """Release the cursor's snapshot state (idempotent)."""
        if self.status in (ACTIVE, EXHAUSTED):
            self.status = CLOSED
        self._enum = None
        self.document._forget_cursor(self)
