"""Edit-stable cursors: resumable paginated enumeration with epochs.

The paper's model (Theorem 8.1 / Theorem 8.5) restarts enumeration after
every update — :class:`~repro.errors.StaleIteratorError` at the enumerator
layer.  A serving deployment paginates: a client fetches a page of answers,
edits arrive from other clients, the client comes back for the next page.
Restarting from scratch on every edit would make pagination quadratic and,
worse, *silently* re-deliver answers.  The cursor refines the restart model
with a precise resume-or-invalidate rule built on two facts:

* the mask-native Algorithm 2 runs on an explicit, checkpointable frame
  stack (:class:`repro.enumeration.duplicate_free.MaskStackEnumeration`),
  so "where the enumeration stopped" is a passive value whose remaining
  reads are confined to the subtrees of the boxes its frames reference
  (its **trunk**);
* the dirty sets of Lemma 7.3 are upward closed — an edit that rebuilds a
  box rebuilds all its ancestors — so a box *not* rebuilt by an edit roots a
  completely untouched subtree.

Hence, after an edit batch:

* if the batch's rebuilt trunk is **disjoint** from the cursor's trunk, the
  frozen enumeration state reads only untouched boxes and the cursor
  **resumes where it left off**, continuing the duplicate-free stream of its
  base epoch with the delay guarantees of Theorem 6.5;
* otherwise the cursor is **deterministically invalidated**: the next fetch
  raises :class:`~repro.errors.CursorInvalidatedError` carrying a
  :class:`CursorInvalidation` report (which epoch and edit batch hit it, and
  how many answers had been delivered), and the client reopens a cursor on
  the updated document.

A cursor's stream is the answer stream of the epoch it was opened at; the
store checks rebuilt-vs-referenced box identity *eagerly* at edit time
(while both sides are alive), which is what makes the signal precise rather
than heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.assignments import EMPTY_ASSIGNMENT, Assignment
from repro.circuits.gates import Box
from repro.enumeration.duplicate_free import MaskStackEnumeration
from repro.errors import CursorInvalidatedError, ServingError

__all__ = ["Cursor", "CursorPage", "CursorInvalidation"]

ACTIVE = "active"
EXHAUSTED = "exhausted"
INVALIDATED = "invalidated"
CLOSED = "closed"


@dataclass(frozen=True)
class CursorInvalidation:
    """Why (and when) a cursor stopped being resumable."""

    cursor_id: int
    document_id: object
    base_epoch: int
    invalidated_epoch: int
    answers_delivered: int
    edit: str
    boxes_hit: int

    def describe(self) -> str:
        return (
            f"cursor {self.cursor_id} on document {self.document_id!r} "
            f"(opened at epoch {self.base_epoch}, {self.answers_delivered} answers delivered) "
            f"was invalidated at epoch {self.invalidated_epoch} by {self.edit}: "
            f"the edit rebuilt {self.boxes_hit} box(es) of the cursor's trunk"
        )


@dataclass(frozen=True)
class CursorPage:
    """One fetched page of answers."""

    answers: List[Assignment]
    offset: int  #: index of the first answer within the cursor's stream
    exhausted: bool  #: True when the stream ended within (or at) this page

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self):
        return iter(self.answers)


class Cursor:
    """A resumable, duplicate-free, paginated view of one document's answers.

    Created through :meth:`repro.engine.local.LocalDocument.open_cursor` /
    :meth:`repro.engine.Document.page`.  Pages are
    duplicate-free *across* pages because one underlying enumeration
    (Algorithm 2, Theorem 5.3) produces the whole stream; pagination only
    slices it.
    """

    def __init__(self, document, cursor_id: int, page_size: int):
        if page_size < 1:
            raise ServingError("cursor page_size must be >= 1")
        self.document = document
        self.cursor_id = cursor_id
        self.page_size = page_size
        self.base_epoch = document.epoch
        self.delivered = 0
        self.status = ACTIVE
        self.invalidation: Optional[CursorInvalidation] = None
        gates, self._pending_empty = document._root_boxed_set()
        self._enum: Optional[MaskStackEnumeration] = (
            MaskStackEnumeration(gates) if gates else None
        )

    # ------------------------------------------------------------ introspection
    def referenced_boxes(self) -> List[Box]:
        """The cursor's trunk: boxes its remaining enumeration can still read."""
        if self._enum is None:
            return []
        return self._enum.referenced_boxes()

    def is_active(self) -> bool:
        return self.status == ACTIVE

    # -------------------------------------------------------------- edit hook
    def _note_edits(self, epoch: int, edit_description: str, replaced_boxes) -> bool:
        """Called by the owning document after an edit batch.

        Compares the batch's replaced boxes against the cursor's trunk by
        identity and flips the cursor to ``invalidated`` on overlap.  Returns
        ``True`` when the cursor survived (resumes).
        """
        if self.status != ACTIVE:
            return False
        if self._enum is None:
            return True  # only the empty answer (or nothing) left: no trunk
        referenced = {id(box) for box in self._enum.referenced_boxes()}
        hits = sum(1 for box in replaced_boxes if id(box) in referenced)
        if not hits:
            return True
        self.status = INVALIDATED
        self.invalidation = CursorInvalidation(
            cursor_id=self.cursor_id,
            document_id=self.document.doc_id,
            base_epoch=self.base_epoch,
            invalidated_epoch=epoch,
            answers_delivered=self.delivered,
            edit=edit_description,
            boxes_hit=hits,
        )
        self._enum = None  # drop the pinned snapshot state
        return False

    # ------------------------------------------------------------------ paging
    def fetch(self, limit: Optional[int] = None) -> CursorPage:
        """Fetch the next page (up to ``limit`` or the cursor's page size).

        Raises :class:`~repro.errors.CursorInvalidatedError` once an edit has
        hit the cursor's trunk, and :class:`~repro.errors.ServingError` on a
        closed cursor.  Fetching an exhausted cursor returns empty pages.
        """
        if self.status == INVALIDATED:
            raise CursorInvalidatedError(self.invalidation.describe(), self.invalidation)
        if self.status == CLOSED:
            raise ServingError(f"cursor {self.cursor_id} is closed")
        want = self.page_size if limit is None else min(limit, self.page_size)
        offset = self.delivered
        answers: List[Assignment] = []
        if self._pending_empty and len(answers) < want:
            answers.append(EMPTY_ASSIGNMENT)
            self._pending_empty = False
        enum = self._enum
        if enum is not None:
            while len(answers) < want:
                try:
                    assignment, _prov = next(enum)
                except StopIteration:
                    self._enum = None
                    break
                answers.append(assignment)
        self.delivered += len(answers)
        exhausted = self._enum is None and not self._pending_empty
        if exhausted and self.status == ACTIVE:
            self.status = EXHAUSTED
            self.document._forget_cursor(self)
        return CursorPage(answers=answers, offset=offset, exhausted=exhausted)

    def fetch_all(self) -> List[Assignment]:
        """Drain the cursor (page loop), returning all remaining answers."""
        out: List[Assignment] = []
        while True:
            page = self.fetch()
            out.extend(page.answers)
            if page.exhausted:
                return out

    def close(self) -> None:
        """Release the cursor's snapshot state (idempotent)."""
        if self.status in (ACTIVE, EXHAUSTED):
            self.status = CLOSED
        self._enum = None
        self.document._forget_cursor(self)
