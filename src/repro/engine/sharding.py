"""Sharded execution: a pipelined, request-id-tagged worker protocol.

``Engine(workers=N)`` routes every document to one of ``N`` worker
processes.  Each worker runs a plain single-process
:class:`~repro.engine.local.LocalStore`; all workers share **one catalog
directory** (the catalog's atomic temp-file + ``os.replace`` writes make it
multi-process safe), so a standing query is compiled once — by the parent —
and every worker *loads* its persisted form instead of compiling.

The protocol (PR 5) is pipelined rather than lockstep.  Every message the
parent sends is a tuple ``(request_id, op, *args)``; every message a worker
sends back is ``(request_id, status, *payload)``, so replies correlate to
requests by id and the parent may have **many requests in flight per
worker** at once:

* **batched ingest.**  ``("add_batch", items)`` ships one pickled batch of
  documents per worker; :meth:`ShardPool.submit` / :meth:`ShardPool.collect`
  let the engine issue the batches to *all* shards before collecting *any*
  reply, so the per-document builds (the dominant serving cost,
  ``doc_build_median_s``) overlap across worker processes instead of
  serializing behind one round trip per document.
* **streaming replies.**  ``("stream_open", doc_id, chunk_size, credit)``
  registers a push stream: the worker sends up to ``credit`` result chunks
  ``(request_id, "chunk", answers, exhausted)`` without waiting for the
  parent, and ``("stream_credit", n)`` replenishes the window as the parent
  consumes — bounded in-flight data, and a round trip per *credit grant*
  instead of one per page (counted by the ``stream_round_trips`` /
  ``stream_chunks`` stats).
* **demultiplexing.**  A worker handles messages strictly in arrival order,
  but chunks of concurrent streams and replies of concurrent requests
  interleave on the pipe; the parent buffers whatever it receives under the
  request id it belongs to, so out-of-order collection is safe.

Fault tolerance (PR 6) turns shard death from data loss into a recoverable
event:

* **bounded waits.**  Every blocking wait (:meth:`ShardPool.collect`,
  :meth:`ShardPool.stream_next_chunk`, and :meth:`ShardPool.ping`) honors a
  configurable ``deadline``: the parent waits on ``Connection.poll`` and, on
  expiry, kills the hung worker, marks it dead, and raises
  :class:`~repro.errors.ShardTimeoutError` naming the shard, the op and the
  elapsed time — a hang is promoted to a death instead of blocking the
  engine forever.
* **strict protocol validation.**  A reply that is not a well-formed
  ``(request_id, status, *payload)`` tuple with a known status is rejected
  on receipt with :class:`~repro.errors.ShardProtocolError` (naming the
  shard and the malformed message's shape) and the worker is killed:
  nothing on that pipe can be trusted after a framing violation.
* **respawn + restore.**  :meth:`ShardPool.respawn` replaces a dead worker
  with a fresh process at the same index (bumping its ``generation``); the
  ``restore`` op rebuilds a document on it from its original content by
  *replaying* the recorded edit batches, which reproduces node/position ids
  and answer order byte-identically (a fresh build of the edited tree could
  balance the forest-algebra term differently).  The replicated engine
  (:mod:`repro.engine.engine`) drives both to re-establish the replication
  factor after a death.
* **fault injection.**  Workers accept an optional
  :class:`~repro.engine.faults.FaultPlan` that deterministically injects
  crash-before-reply / hang / slow / garbage faults at named protocol
  points; the sharded fuzz harness uses it to prove the failover machinery
  keeps transcripts byte-identical to the single-process oracle.  Respawned
  workers (generation > 0) never inherit the plan — a repaired worker is a
  healthy worker, and re-arming one-shot rules in a fresh process would
  turn a single injected crash into a crash loop.

Design constraints kept from PR 4:

* **fork/spawn safety.**  The worker entry point
  (:func:`_shard_worker_main`) is a module-level function and receives only
  picklable arguments, so it works under every :mod:`multiprocessing` start
  method.  Documents, queries, edits and answers cross the pipe pickled;
  node / position ids, answer order and epochs are identical to a
  single-process store (pinned by the sharded fuzz harness).
* **original error types.**  A failure is answered with
  ``(request_id, "err", exception)`` — the exception object itself travels
  back and is re-raised in the caller, so sharded error behavior
  (``InvalidEditError``, ``CursorInvalidatedError`` with its report, ...)
  matches local behavior and correlates to the right request.
* **death detection.**  A broken pipe surfaces as
  :class:`~repro.errors.ShardDiedError` naming the shard (and, for a batch
  ingest, the document ids that were in flight), never a hang; the
  surviving shards stay usable.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from typing import Dict, List, Optional

from repro.errors import (
    EngineError,
    ShardDiedError,
    ShardProtocolError,
    ShardTimeoutError,
)

__all__ = ["AdaptiveCredit", "ShardPool", "ShardStream", "STREAM_CREDIT"]

#: starting credit window: chunks a producer may push ahead of consumption
#: (per stream).  The *live* window adapts around this value — see
#: :class:`AdaptiveCredit`.
STREAM_CREDIT = 4

#: reply statuses the parent accepts; anything else is a protocol violation
_VALID_STATUSES = ("ok", "err", "chunk")


class AdaptiveCredit:
    """Adaptive sizing of the stream credit window for one consumer.

    The PR-5 protocol fixed every stream's window at :data:`STREAM_CREDIT`.
    That is the wrong size in both directions: a *fast* consumer drains the
    buffer and stalls on the pipe (each stall is a wasted round trip the
    recorded ``stream_stall_seconds`` histogram measures), while a *slow*
    consumer — or many streams fanned out at once — keeps the full window
    buffered, holding answers in memory nobody is reading yet.

    One instance is shared by every stream of one consumer (a
    :class:`ShardPool`, or a :class:`repro.net.client.RemoteEngine`) and
    driven by the same signals the ``streaming`` stats already record:

    * :meth:`note_stall` — the consumer genuinely waited on the transport
      for the next chunk.  Two stalls in a row double the window (up to
      :data:`MAX_WINDOW`): the producer was allowed too little runway.
    * :meth:`note_buffered` — a chunk was already waiting, ``depth`` deep,
      in a stream whose outstanding credit is ``capacity``.  Two
      full-buffer observations in a row halve the window (down to
      :data:`MIN_WINDOW`): the producer is running ahead of a consumer
      that cannot keep up.
    * :meth:`initial_credit` — the opening grant of a new stream divides
      the window across the streams already open, so fan-out shrinks the
      per-stream runway instead of multiplying the buffered volume.

    The two-in-a-row hysteresis keeps one slow chunk (a worker busy
    building) or one burst from thrashing the window.  Growth and shrink
    totals — and the live window — surface as the
    ``stream_credit_window`` / ``stream_credit_grown_total`` /
    ``stream_credit_shrunk_total`` counters of ``Engine.metrics()`` and in
    the ``streaming`` block of ``Engine.stats()``.
    """

    MIN_WINDOW = 2
    MAX_WINDOW = 32

    def __init__(self, start: int = STREAM_CREDIT, metrics=None):
        if start < 1:
            raise EngineError(f"the starting credit window must be >= 1, got {start}")
        self.window = max(self.MIN_WINDOW, min(self.MAX_WINDOW, start))
        self.metrics = metrics
        self.grown_total = 0
        self.shrunk_total = 0
        self._stall_streak = 0
        self._full_streak = 0
        self._publish()

    def _publish(self) -> None:
        if self.metrics is not None:
            self.metrics.counters["stream_credit_window"] = self.window

    def initial_credit(self, open_streams: int = 0) -> int:
        """The opening grant of a new stream, given the streams already open."""
        return max(self.MIN_WINDOW, self.window // max(1, open_streams + 1))

    def note_stall(self) -> None:
        """The consumer blocked on the transport waiting for a chunk."""
        self._full_streak = 0
        self._stall_streak += 1
        if self._stall_streak >= 2 and self.window < self.MAX_WINDOW:
            self.window = min(self.MAX_WINDOW, self.window * 2)
            self.grown_total += 1
            self._stall_streak = 0
            if self.metrics is not None:
                self.metrics.inc("stream_credit_grown_total")
            self._publish()

    def note_buffered(self, depth: int, capacity: int) -> None:
        """A chunk was already buffered (``depth`` of ``capacity`` tokens)."""
        self._stall_streak = 0
        if depth < max(1, capacity):
            self._full_streak = 0
            return
        self._full_streak += 1
        if self._full_streak >= 2 and self.window > self.MIN_WINDOW:
            self.window = max(self.MIN_WINDOW, self.window // 2)
            self.shrunk_total += 1
            self._full_streak = 0
            if self.metrics is not None:
                self.metrics.inc("stream_credit_shrunk_total")
            self._publish()


# ============================================================== worker side
class _WorkerStream:
    """One push stream inside a worker: an answer iterator plus its credit."""

    __slots__ = ("iterator", "chunk_size", "credit")

    def __init__(self, iterator, chunk_size: int):
        self.iterator = iterator
        self.chunk_size = chunk_size
        self.credit = 0


def _handle_add_batch(store, queries_by_digest, items):
    """Add a batch of documents; report how far the batch got on failure.

    ``items`` is a list of ``(doc_id, kind, content, query_or_None, digest)``
    tuples.  The reply names the documents actually added plus — when an item
    failed — the failing document id and the original exception, so the
    parent can both register the successes and re-raise precisely.
    """
    added = []
    for doc_id, kind, content, query, digest in items:
        try:
            if query is None:
                query = queries_by_digest.get(digest)
                if query is None:
                    raise EngineError(
                        f"shard has no cached query for digest {digest[:12]}..."
                    )
            else:
                queries_by_digest[digest] = query
            if kind == "tree":
                document = store.add_tree(content, query, doc_id=doc_id)
            else:
                document = store.add_word(content, query, doc_id=doc_id)
        except BaseException as exc:  # noqa: BLE001 — reported, not swallowed
            return {"added": added, "failed_doc_id": doc_id, "error": exc}
        added.append(
            {"doc_id": document.doc_id, "kind": document.kind, "digest": document.digest}
        )
    return {"added": added, "failed_doc_id": None, "error": None}


def _handle_restore(store, queries_by_digest, args):
    """Rebuild one document from its original content plus its edit log.

    The engine's failover path re-migrates every document a dead shard held
    onto its respawned replacement.  The rebuild *replays* the recorded edit
    batches rather than shipping the edited tree: replaying reproduces the
    incremental forest-algebra term — and therefore node ids, position ids
    and enumeration order — byte-identically, where a fresh build of the
    final tree could balance differently.  Batches that failed originally
    fail identically on replay (including partial application), which is
    exactly what keeps the replica's state in lockstep; their errors are
    swallowed here because they were already reported to the caller once.
    ``next_cursor_id`` re-synchronizes the cursor-id counter so cursors
    opened *after* the restore get the same ids on every replica.
    """
    from repro.errors import ReproError

    doc_id, kind, content, query, digest, edit_batches, next_cursor_id = args
    if query is None:
        query = queries_by_digest.get(digest)
        if query is None:
            raise EngineError(f"shard has no cached query for digest {digest[:12]}...")
    else:
        queries_by_digest[digest] = query
    if kind == "tree":
        document = store.add_tree(content, query, doc_id=doc_id)
    else:
        document = store.add_word(content, query, doc_id=doc_id)
    for batch in edit_batches:
        try:
            document.apply_edits(batch)
        except ReproError:
            pass  # replayed failures re-apply their original partial effects
    document.sync_cursor_ids(next_cursor_id)
    return {"doc_id": doc_id, "epoch": document.epoch}


def _handle_request(store, queries_by_digest, op, args):
    """Execute one non-stream request against the worker's LocalStore."""
    if op == "add_batch":
        return _handle_add_batch(store, queries_by_digest, args[0])
    if op == "edits":
        doc_id, edits = args
        return store.document(doc_id).apply_edits(edits)
    if op == "page":
        doc_id, cursor_id, page_size = args
        document = store.document(doc_id)
        cursor, page = document.fetch_page(cursor_id, page_size)
        return {
            "cursor_id": cursor.cursor_id,
            "answers": tuple(page.answers),
            "offset": page.offset,
            "exhausted": page.exhausted,
            "epoch": document.epoch,
        }
    if op == "count":
        doc_id, limit = args
        return store.document(doc_id).count(limit=limit)
    if op == "epoch":
        return store.document(args[0]).epoch
    if op == "remove":
        store.remove(args[0])
        return None
    if op == "restore":
        return _handle_restore(store, queries_by_digest, args)
    if op == "ping":
        return "pong"
    if op == "stats":
        return store.stats()
    if op == "metrics":
        return store.metrics.to_wire()
    if op == "events":
        return store.events.snapshot()
    raise EngineError(f"unknown shard request {op!r}")


def _pump_stream(conn, streams: Dict[int, _WorkerStream], request_id: int, inject) -> None:
    """Push chunks of one stream while it has credit; drop it when done.

    The per-answer iterator is the runtime's own (`LocalDocument.answers`),
    so an edit that lands between chunks invalidates it exactly like the
    single-process ``stream()`` — the resulting ``StaleIteratorError``
    travels back as this stream's error reply.
    """
    stream = streams.get(request_id)
    while stream is not None and stream.credit > 0:
        answers = []
        exhausted = False
        try:
            for _ in range(stream.chunk_size):
                try:
                    answers.append(next(stream.iterator))
                except StopIteration:
                    exhausted = True
                    break
        except BaseException as exc:  # noqa: BLE001 — must travel back
            del streams[request_id]
            _send_err(conn, request_id, exc)
            return
        stream.credit -= 1
        if exhausted:
            del streams[request_id]
            stream = None
        conn.send(inject("stream_chunk", (request_id, "chunk", tuple(answers), exhausted)))


def _send_err(conn, request_id: int, exc: BaseException) -> None:
    try:
        conn.send((request_id, "err", exc))
    except Exception:
        # The exception itself didn't pickle; send a description instead.
        conn.send(
            (request_id, "err", EngineError(f"shard worker error ({type(exc).__name__}): {exc}"))
        )


def _shard_worker_main(
    conn,
    catalog_root: Optional[str],
    relation_backend: Optional[str],
    shard_index: int = 0,
    fault_plan=None,
    build_cache_size: Optional[int] = None,
    trace: bool = False,
    delay_budget: Optional[float] = None,
) -> None:
    """Entry point of one shard worker process.

    Module-level (importable) so it works under the ``spawn`` start method;
    receives only picklable arguments so it also works under ``fork`` and
    ``forkserver``.  Messages are handled strictly in arrival order; stream
    chunks are pushed eagerly up to each stream's credit.  When a
    ``fault_plan`` is given, every decoded request and every outgoing stream
    chunk is offered to it (see :mod:`repro.engine.faults`).

    Observability: with ``trace=True`` the worker runs its own
    :class:`~repro.obs.Tracer`; a fire-and-forget ``(-1, "trace_push", ctx)``
    message — sent by the parent immediately before a request, FIFO on the
    pipe — parents the *next* request's span under the parent-side span, and
    ``trace_drain`` ships finished worker spans back.  ``delay_budget``
    arms the store's per-answer :class:`~repro.obs.DelayMonitor`.
    """
    from repro.engine.faults import FaultPlan
    from repro.engine.local import LocalStore
    from repro.engine.catalog import QueryCatalog
    from repro.obs import Tracer

    catalog = QueryCatalog(catalog_root) if catalog_root else None
    store = LocalStore(
        catalog=catalog,
        relation_backend=relation_backend,
        build_cache_size=build_cache_size,
        delay_budget=delay_budget,
    )
    tracer = Tracer(enabled=trace, process=f"shard-{shard_index}")
    if fault_plan is not None:
        # Fault firings are operational events; surface them next to the
        # deaths and timeouts they will cause (drained via the "events" op).
        fault_plan.on_fire = lambda shard, op, action: store.events.emit(
            "fault_injected", shard=shard, op=op, action=action
        )
    queries_by_digest: Dict[str, object] = {}
    streams: Dict[int, _WorkerStream] = {}
    pending_ctx = None  #: trace context pushed for the next real request

    def inject(op: str, reply: tuple) -> tuple:
        """Offer one outgoing protocol send to the fault plan."""
        if fault_plan is None:
            return reply
        action = fault_plan.before(shard_index, op)
        return FaultPlan.apply_reply_action(action, reply)

    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        request_id, op = message[0], message[1]
        if op == "trace_push":
            # Handled before the fault hook: pushing trace context must not
            # advance the plan's nth counters (traced and untraced runs see
            # identical fault schedules).
            pending_ctx = message[2]
            continue
        if op == "trace_drain":
            # Monitoring op, likewise exempt from fault injection.
            conn.send((request_id, "ok", tracer.drain()))
            continue
        reply_action = fault_plan.before(shard_index, op) if fault_plan is not None else None
        if op == "close":
            try:
                conn.send((request_id, "ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        if op == "stream_open":
            doc_id, chunk_size, credit = message[2:]
            with tracer.span(op, parent=pending_ctx, doc_id=repr(doc_id)):
                pending_ctx = None
                try:
                    iterator = iter(store.document(doc_id).answers())
                except BaseException as exc:  # noqa: BLE001
                    _send_err(conn, request_id, exc)
                    continue
                stream = _WorkerStream(iterator, chunk_size)
                stream.credit = credit
                streams[request_id] = stream
                _pump_stream(conn, streams, request_id, inject)
        elif op == "stream_credit":
            stream = streams.get(request_id)
            if stream is not None:  # closed/errored streams ignore late credit
                stream.credit += message[2]
                _pump_stream(conn, streams, request_id, inject)
        elif op == "stream_close":
            streams.pop(request_id, None)  # no reply: close is fire-and-forget
        else:
            with tracer.span(op, parent=pending_ctx):
                pending_ctx = None
                try:
                    reply = (request_id, "ok", _handle_request(store, queries_by_digest, op, message[2:]))
                except BaseException as exc:  # noqa: BLE001 — every failure travels back
                    _send_err(conn, request_id, exc)
                    continue
            conn.send(FaultPlan.apply_reply_action(reply_action, reply))
    conn.close()


# ============================================================== parent side
class ShardStream:
    """Parent-side handle of one push stream (chunks buffered until read)."""

    __slots__ = (
        "shard",
        "request_id",
        "chunks",
        "error",
        "done",
        "closed",
        "to_grant",
        "window",
    )

    def __init__(self, shard: int, request_id: int):
        self.shard = shard
        self.request_id = request_id
        self.chunks: List[tuple] = []  #: received, not yet consumed (answers, exhausted)
        self.error: Optional[BaseException] = None
        self.done = False  #: the worker sent the exhausted chunk or an error
        self.closed = False  #: the parent abandoned the stream
        self.to_grant = 0  #: consumed chunks not yet returned as credit
        #: this stream's outstanding credit tokens: worker-held credit plus
        #: chunks in the pipe or buffered plus ``to_grant``.  Grants keep the
        #: invariant while steering toward the adaptive target window.
        self.window = STREAM_CREDIT


class _ShardState:
    """Parent-side bookkeeping of one worker: pipe, process, pending replies."""

    __slots__ = (
        "conn",
        "process",
        "generation",
        "pending",
        "inflight",
        "streams",
        "deferred_closes",
        "dead",
        "requests_sent",
        "replies_received",
        "stream_chunks",
        "stream_round_trips",
    )

    def __init__(self, conn, process, generation: int = 0):
        self.conn = conn
        self.process = process
        self.generation = generation  #: respawn count of this index (0 = original)
        self.pending: Dict[int, tuple] = {}  #: request_id → (status, payload)
        #: request_id → (op, monotonic send time) for requests awaiting reply
        self.inflight: Dict[int, tuple] = {}
        self.streams: Dict[int, ShardStream] = {}
        self.deferred_closes: List[int] = []
        self.dead = False
        self.requests_sent = 0
        self.replies_received = 0
        self.stream_chunks = 0
        self.stream_round_trips = 0


class ShardPool:
    """``N`` worker processes, each owning a LocalStore, addressed by index.

    The pool is a pure message router: :meth:`submit` sends a tagged request
    without waiting, :meth:`collect` blocks until *that* request's reply
    arrives (buffering everything else), and :meth:`request` is the
    synchronous composition of the two.  Streams are opened with
    :meth:`stream_open` and consumed chunk by chunk with
    :meth:`stream_next_chunk`, which replenishes the worker's credit window
    as chunks are consumed.

    Every blocking wait honors ``deadline`` (seconds, ``None`` = wait
    forever): on expiry the worker is killed, marked dead, and
    :class:`~repro.errors.ShardTimeoutError` is raised.  Dead workers can be
    replaced in place with :meth:`respawn`; the pool-level ``deaths_total``
    and ``timeouts_total`` counters make both observable.
    """

    def __init__(
        self,
        workers: int,
        catalog_root: Optional[str],
        relation_backend: Optional[str] = None,
        start_method: Optional[str] = None,
        deadline: Optional[float] = None,
        fault_plan=None,
        build_cache_size: Optional[int] = None,
        metrics=None,
        on_event=None,
        slow_op_seconds: Optional[float] = None,
        trace: bool = False,
        delay_budget: Optional[float] = None,
    ):
        if workers < 1:
            raise EngineError(f"a shard pool needs at least one worker, got {workers}")
        if deadline is not None and deadline <= 0:
            raise EngineError(f"the shard deadline must be positive, got {deadline}")
        self._context = multiprocessing.get_context(start_method)
        self.start_method = self._context.get_start_method()
        self._catalog_root = catalog_root
        self._relation_backend = relation_backend
        self._fault_plan = fault_plan
        self._build_cache_size = build_cache_size
        #: parent-side observability (all optional, see :mod:`repro.obs`):
        #: a MetricsRegistry for protocol round-trip / credit-stall
        #: histograms, an ``on_event(kind, **fields)`` callback for deaths /
        #: timeouts / protocol violations / slow ops, and a slow-op
        #: threshold in seconds (None disables slow-op events).
        self.metrics = metrics
        self._on_event = on_event
        self.slow_op_seconds = slow_op_seconds
        self._trace = trace
        self._delay_budget = delay_budget
        self.deadline = deadline
        self.deaths_total = 0
        self.timeouts_total = 0
        #: adaptive credit-window controller shared by every stream
        self.credit = AdaptiveCredit(STREAM_CREDIT, metrics=metrics)
        self._shards: List[_ShardState] = []
        self._request_ids = itertools.count()
        try:
            for index in range(workers):
                self._shards.append(self._spawn(index, generation=0))
        except BaseException:
            self.close()
            raise
        self._closed = False

    def _spawn(self, index: int, generation: int) -> _ShardState:
        """Start one worker process for shard ``index``.

        Only generation 0 receives the fault plan: a respawned worker is the
        *repair* of an injected fault, and re-arming the plan's one-shot
        rules in a fresh process would turn one injected crash into a crash
        loop that defeats the repair.
        """
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                self._catalog_root,
                self._relation_backend,
                index,
                self._fault_plan if generation == 0 else None,
                self._build_cache_size,
                self._trace,
                self._delay_budget,
            ),
            name=f"repro-shard-{index}" + (f".{generation}" if generation else ""),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _ShardState(parent_conn, process, generation)

    def __len__(self) -> int:
        return len(self._shards)

    def is_alive(self, shard: int) -> bool:
        """Whether a shard has not (yet) been observed dead.

        Death is detected on pipe failures, so a freshly killed worker may
        still read as alive until the next message to it fails.
        """
        return not self._shards[shard].dead

    def inflight(self, shard: int) -> int:
        """Requests awaiting a reply on a shard (the load-balancing signal)."""
        return len(self._shards[shard].inflight)

    def generation(self, shard: int) -> int:
        """How many times the worker at this index has been respawned."""
        return self._shards[shard].generation

    # ----------------------------------------------------------- plumbing
    def _emit(self, kind: str, **fields) -> None:
        """Report one operational event to the engine's log (best-effort)."""
        if self._on_event is not None:
            self._on_event(kind, **fields)

    def _death(self, shard: int, doing: str, cause: Optional[BaseException]) -> ShardDiedError:
        """Mark a shard dead and build the precise error for it."""
        state = self._shards[shard]
        if not state.dead:
            state.dead = True
            self.deaths_total += 1
            self._emit(
                "shard_death",
                shard=shard,
                generation=state.generation,
                doing=doing,
                exitcode=state.process.exitcode,
            )
            # In-flight requests can never be answered now; dropping them
            # keeps the queue-depth counters honest (already-received replies
            # stay collectable from ``pending``).  Deferred stream closes are
            # worker-side bookkeeping of a worker that no longer exists —
            # clearing them here is what lets a respawned worker at this
            # index start with no leaked stream ids.
            state.inflight.clear()
            state.deferred_closes.clear()
            for stream in state.streams.values():
                stream.done = True
                if stream.error is None:
                    stream.error = ShardDiedError(f"shard worker {shard} died mid-stream")
        process = state.process
        error = ShardDiedError(
            f"shard worker {shard} (pid {process.pid}, exitcode {process.exitcode}) "
            f"died while {doing}"
        )
        if cause is not None:
            error.__cause__ = cause
        return error

    def _kill(self, shard: int) -> None:
        """Forcibly terminate a worker process (hung or untrustworthy)."""
        process = self._shards[shard].process
        try:
            process.kill()
        except Exception:  # already gone
            pass

    def _timeout(self, shard: int, op: str, waited: float, deadline: float) -> ShardTimeoutError:
        """Promote a hung worker to a dead one and build the timeout error."""
        # Snapshot the shard's load *before* _death clears its bookkeeping:
        # the error message carries what the shard was doing when it hung.
        state = self._shards[shard]
        snapshot = (
            f"queued_replies={len(state.pending)}, "
            f"inflight_requests={len(state.inflight)}, "
            f"streams_open={len(state.streams)}"
        )
        self._kill(shard)
        self._death(shard, f"handling {op!r}", None)
        self.timeouts_total += 1
        self._emit("shard_timeout", shard=shard, op=op, waited=waited, deadline=deadline)
        return ShardTimeoutError(
            f"shard worker {shard} did not answer {op!r} within its deadline "
            f"({deadline:.3f}s, waited {waited:.3f}s); the worker was "
            f"killed and marked dead [shard {shard} at timeout: {snapshot}]",
            shard=shard,
            op=op,
            elapsed=waited,
            deadline=deadline,
        )

    def _protocol_error(self, shard: int, message) -> ShardProtocolError:
        """Reject a malformed reply: kill the worker, mark it dead, report."""
        shape = repr(message)
        if len(shape) > 160:
            shape = shape[:160] + "..."
        self._kill(shard)
        self._death(shard, "receiving a reply", None)
        self._emit("protocol_error", shard=shard, shape=shape)
        return ShardProtocolError(
            f"shard worker {shard} sent a malformed protocol message "
            f"({type(message).__name__}: {shape}); expected a tuple "
            f"(request_id, status, *payload) with status in {_VALID_STATUSES}; "
            f"the worker was killed and marked dead"
        )

    def _check_shard(self, shard: int) -> _ShardState:
        if getattr(self, "_closed", True):
            raise EngineError("the engine's worker pool is closed")
        state = self._shards[shard]
        if state.dead:
            raise ShardDiedError(
                f"shard worker {shard} (pid {state.process.pid}, exitcode "
                f"{state.process.exitcode}) is dead; its documents are unreachable"
            )
        return state

    def _send(self, shard: int, message: tuple, doing: str) -> None:
        state = self._check_shard(shard)
        if state.deferred_closes:
            closes, state.deferred_closes = state.deferred_closes, []
            for request_id in closes:
                try:
                    state.conn.send((request_id, "stream_close"))
                except (BrokenPipeError, OSError) as exc:
                    # The worker is gone: every deferred close (this one and
                    # the rest of ``closes``) dies with it — ``_death``
                    # already cleared the bookkeeping, nothing leaks.
                    raise self._death(shard, doing, exc) from exc
        try:
            state.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise self._death(shard, doing, exc) from exc

    def _recv_one(
        self,
        shard: int,
        doing: str,
        deadline_at: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> None:
        """Receive one message from a shard and file it where it belongs.

        With a ``deadline_at`` (monotonic timestamp, derived from
        ``deadline`` seconds), waits at most until then: a worker that has
        not produced a message by the deadline is killed and
        :class:`~repro.errors.ShardTimeoutError` raised.
        """
        state = self._shards[shard]
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            try:
                ready = remaining > 0 and state.conn.poll(remaining)
            except (EOFError, OSError) as exc:
                raise self._death(shard, doing, exc) from exc
            if not ready:
                waited = (deadline or 0.0) - max(0.0, deadline_at - time.monotonic())
                raise self._timeout(shard, doing, waited, deadline or 0.0)
        try:
            message = state.conn.recv()
        except (EOFError, OSError) as exc:
            raise self._death(shard, doing, exc) from exc
        if not (
            isinstance(message, tuple)
            and len(message) >= 2
            and message[1] in _VALID_STATUSES
        ):
            raise self._protocol_error(shard, message)
        request_id, status = message[0], message[1]
        if status == "chunk":
            if len(message) != 4:
                raise self._protocol_error(shard, message)
            stream = state.streams.get(request_id)
            state.stream_chunks += 1
            if stream is None or stream.closed:
                return  # chunk of an abandoned stream: drop
            _request_id, _status, answers, exhausted = message
            stream.chunks.append((answers, exhausted))
            if exhausted:
                stream.done = True
                state.streams.pop(request_id, None)
            return
        if status == "err" and not (len(message) > 2 and isinstance(message[2], BaseException)):
            raise self._protocol_error(shard, message)
        if request_id in state.streams:
            # an error reply addressed to a stream (StaleIteratorError, death
            # of the underlying document, ...): terminate the stream with it
            stream = state.streams.pop(request_id)
            stream.error = message[2] if status == "err" else EngineError(
                f"protocol error: stream {request_id} got a {status!r} reply"
            )
            stream.done = True
            return
        state.replies_received += 1
        entry = state.inflight.pop(request_id, None)
        if entry is not None:
            elapsed = time.monotonic() - entry[1]
            if self.metrics is not None:
                self.metrics.observe("protocol_round_trip_seconds", elapsed)
            if self.slow_op_seconds is not None and elapsed > self.slow_op_seconds:
                self._emit("slow_op", shard=shard, op=entry[0], seconds=elapsed)
        state.pending[request_id] = (status, message[2] if len(message) > 2 else None)

    # ------------------------------------------------------------- requests
    def submit(self, shard: int, op: str, *args, trace_ctx=None) -> int:
        """Send one tagged request without waiting; returns its request id.

        ``trace_ctx`` (a parent-side span's ``(trace_id, span_id)``) is
        pushed to the worker as a fire-and-forget ``trace_push`` message
        immediately before the request — the pipe is FIFO, so the worker
        parents exactly this request's span under it.
        """
        state = self._check_shard(shard)
        if trace_ctx is not None:
            self._send(shard, (-1, "trace_push", trace_ctx), f"receiving {op!r}")
        request_id = next(self._request_ids)
        self._send(shard, (request_id, op, *args), f"receiving {op!r}")
        state.inflight[request_id] = (op, time.monotonic())
        state.requests_sent += 1
        return request_id

    def collect(self, shard: int, request_id: int, deadline: Optional[float] = -1.0):
        """Block until the reply with ``request_id`` arrives; return or raise it.

        ``deadline`` overrides the pool deadline for this wait (``-1.0``, the
        default, means "use the pool's"; ``None`` means wait forever).
        """
        if deadline == -1.0:
            deadline = self.deadline
        state = self._shards[shard]
        entry = state.inflight.get(request_id)  # before a death clears it
        op = entry[0] if entry is not None else "?"
        deadline_at = time.monotonic() + deadline if deadline is not None else None
        while request_id not in state.pending:
            if state.dead:
                raise self._death(shard, f"handling {op!r}", None)
            self._recv_one(shard, f"handling {op!r}", deadline_at, deadline)
        status, payload = state.pending.pop(request_id)
        if status == "err":
            raise payload
        return payload

    def request(self, shard: int, op: str, *args):
        """Send one request and wait for its reply (the synchronous path)."""
        return self.collect(shard, self.submit(shard, op, *args))

    def poll_reply(self, shard: int, request_id: int) -> bool:
        """True when :meth:`collect` for this request would not block.

        Drains already-arrived messages without waiting; a dead shard (or
        one dying during the drain) reads as ready, because ``collect``
        would immediately raise for it rather than block.
        """
        state = self._shards[shard]
        while request_id not in state.pending:
            if state.dead:
                return True
            try:
                if not state.conn.poll(0):
                    return False
                self._recv_one(shard, "draining replies")
            except ShardDiedError:
                return True
        return True

    def wait_replies(
        self, waiting: Dict[int, int], deadline: Optional[float] = -1.0
    ) -> List[int]:
        """Block until at least one of several pending replies is ready.

        ``waiting`` maps shard index → request id.  Returns every shard
        whose :meth:`collect` would no longer block — its reply arrived, or
        it is dead (so ``collect`` raises immediately instead of hanging).
        This is what lets the engine process ingest batches in **arrival
        order**: fast shards are collected while a straggler is still
        building, instead of serializing behind dict order.

        A shard that produces nothing within the deadline is killed and
        marked dead (the regular timeout promotion), then reported ready so
        the caller's ``collect`` surfaces the precise
        :class:`~repro.errors.ShardTimeoutError`-shaped death.
        """
        if deadline == -1.0:
            deadline = self.deadline
        deadline_at = time.monotonic() + deadline if deadline is not None else None
        from multiprocessing.connection import wait as _connection_wait

        while True:
            ready = [
                shard
                for shard, request_id in waiting.items()
                if self._shards[shard].dead or request_id in self._shards[shard].pending
            ]
            if ready:
                return ready
            conns = {
                self._shards[shard].conn: shard
                for shard in waiting
                if not self._shards[shard].dead
            }
            if not conns:
                return list(waiting)
            timeout = None
            if deadline_at is not None:
                timeout = deadline_at - time.monotonic()
                if timeout <= 0:
                    # Every still-silent shard blew the deadline together.
                    for shard in list(conns.values()):
                        entry = self._shards[shard].inflight.get(waiting[shard])
                        op = entry[0] if entry is not None else "?"
                        self._timeout(shard, op, deadline or 0.0, deadline or 0.0)
                    return list(conns.values())
            for conn in _connection_wait(list(conns), timeout):
                shard = conns[conn]
                try:
                    self._recv_one(shard, "collecting a batch reply")
                except ShardDiedError:
                    pass  # dead counts as ready; collect() reports it precisely

    def ping(self, shard: int, deadline: Optional[float] = -1.0) -> bool:
        """Health probe: True iff the worker answers a ping within the deadline.

        A worker that is already dead, dies, or times out reads as unhealthy;
        the timeout path kills the hung process and marks it dead, so a
        failed ping leaves the shard in the same state a crash would.
        """
        try:
            return self.collect(shard, self.submit(shard, "ping"), deadline=deadline) == "pong"
        except ShardDiedError:
            return False

    def broadcast(self, op: str, *args, skip_dead: bool = False) -> List:
        """The same request to every shard, pipelined, answers in shard order.

        All requests are submitted before any reply is collected.  With
        ``skip_dead=True`` a dead shard — known dead at submit time, or dying
        before it replies — contributes ``None`` instead of raising, so a
        monitoring gather survives partial pool death; otherwise the first
        dead shard raises :class:`~repro.errors.ShardDiedError`.
        """
        request_ids: List[Optional[int]] = []
        for shard in range(len(self)):
            try:
                request_ids.append(self.submit(shard, op, *args))
            except ShardDiedError:
                if not skip_dead:
                    raise
                request_ids.append(None)
        results: List = []
        for shard, request_id in enumerate(request_ids):
            if request_id is None:
                results.append(None)
                continue
            try:
                results.append(self.collect(shard, request_id))
            except ShardDiedError:
                if not skip_dead:
                    raise
                results.append(None)
        return results

    # -------------------------------------------------------------- respawn
    def respawn(self, shard: int) -> None:
        """Replace a dead worker with a fresh process at the same index.

        The replacement starts empty (a new ``LocalStore``) with a bumped
        ``generation``; the engine re-migrates documents onto it with
        ``restore`` requests.  Respawning a live shard is refused — kill it
        (or let a deadline do so) first.
        """
        old = self._shards[shard]
        if not old.dead:
            raise EngineError(f"shard worker {shard} is alive; refusing to respawn over it")
        try:
            old.conn.close()
        except Exception:
            pass
        if old.process.is_alive():
            old.process.terminate()
            old.process.join(timeout=1.0)
        self._shards[shard] = self._spawn(shard, generation=old.generation + 1)

    # -------------------------------------------------------------- streams
    def stream_open(
        self,
        shard: int,
        doc_id,
        chunk_size: int,
        credit: Optional[int] = None,
        trace_ctx=None,
    ) -> ShardStream:
        """Open a push stream over a document's answers on its shard.

        The opening credit defaults to the adaptive controller's grant —
        the current window divided across the streams already open, so a
        fan-out of concurrent streams shares the buffered volume instead of
        multiplying it.  Pass an explicit ``credit`` to pin the window
        (tests, benchmarks).
        """
        state = self._check_shard(shard)
        if credit is None:
            open_streams = sum(len(entry.streams) for entry in self._shards)
            credit = self.credit.initial_credit(open_streams)
        if trace_ctx is not None:
            self._send(shard, (-1, "trace_push", trace_ctx), "opening a stream")
        request_id = next(self._request_ids)
        stream = ShardStream(shard, request_id)
        stream.window = credit
        state.streams[request_id] = stream
        self._send(shard, (request_id, "stream_open", doc_id, chunk_size, credit), "opening a stream")
        state.stream_round_trips += 1
        return stream

    def stream_next_chunk(self, stream: ShardStream):
        """The next ``(answers, exhausted)`` chunk of a stream (blocking).

        Returns ``None`` when the stream ended; raises the stream's error
        (with its original type) when the worker reported one.  Consuming a
        chunk replenishes the worker's credit window in half-window grants,
        steered by the adaptive controller: a grant tops the stream's
        outstanding tokens up to the *current* target window, so a grown
        window takes effect mid-stream and a shrunk one simply withholds
        credit (an effective shrink costs zero round trips).  The wait for
        each chunk is bounded by the pool deadline.
        """
        state = self._shards[stream.shard]
        deadline_at = time.monotonic() + self.deadline if self.deadline is not None else None
        stalled_at = None  #: set when the parent genuinely waited on the pipe
        if stream.chunks:
            # Buffered chunks plus not-yet-returned grants == the whole
            # outstanding window ⇒ the producer has nothing left in flight
            # and is purely waiting on this consumer.
            self.credit.note_buffered(
                len(stream.chunks) + stream.to_grant, stream.window
            )
        while not stream.chunks:
            if stream.error is not None:
                error, stream.error = stream.error, None
                stream.done = True
                raise error
            if stream.done:
                return None
            if state.dead:
                raise self._death(stream.shard, "streaming answers", None)
            if stalled_at is None:
                stalled_at = time.monotonic()
            self._recv_one(stream.shard, "streaming answers", deadline_at, self.deadline)
        if stalled_at is not None:
            self.credit.note_stall()
            if self.metrics is not None:
                # Time the consumer spent blocked on the credit window / worker.
                self.metrics.observe("stream_stall_seconds", time.monotonic() - stalled_at)
        chunk = stream.chunks.pop(0)
        stream.to_grant += 1
        _answers, exhausted = chunk
        target = self.credit.window
        if (
            not exhausted
            and not stream.done
            and stream.to_grant >= max(1, min(stream.window, target) // 2)
        ):
            # Token conservation: ``stream.window`` tokens are outstanding
            # (worker credit + chunks in flight/buffered + to_grant).  Grant
            # exactly what tops the stream up to the target window.
            grant = max(0, target - (stream.window - stream.to_grant))
            stream.window = stream.window - stream.to_grant + grant
            stream.to_grant = 0
            if grant > 0 and not state.dead:
                self._send(
                    stream.shard,
                    (stream.request_id, "stream_credit", grant),
                    "granting stream credit",
                )
                state.stream_round_trips += 1
        return chunk

    def stream_close(self, stream: ShardStream) -> None:
        """Abandon a stream.  Safe to call from generator finalizers.

        The actual ``stream_close`` message is *deferred* to the next send on
        the same shard (or to :meth:`close`): a finalizer may run at any
        point — including mid-send on the same pipe — so it must not write to
        the pipe itself.  Chunks still in flight are dropped on receipt.
        """
        if stream.closed:
            return
        stream.closed = True
        if self._closed or stream.shard >= len(self._shards):
            return
        state = self._shards[stream.shard]
        live = state.streams.pop(stream.request_id, None)
        if live is not None and not state.dead and not stream.done:
            state.deferred_closes.append(stream.request_id)

    # ---------------------------------------------------------------- stats
    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard protocol counters (queue depth, in-flight, streaming)."""
        return [
            {
                "alive": not state.dead and state.process.is_alive(),
                "generation": state.generation,
                "inflight_requests": len(state.inflight),
                "queued_replies": len(state.pending),
                "streams_open": len(state.streams),
                "requests_sent": state.requests_sent,
                "replies_received": state.replies_received,
                "stream_chunks": state.stream_chunks,
                "stream_round_trips": state.stream_round_trips,
            }
            for state in self._shards
        ]

    # ---------------------------------------------------------------- close
    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down (graceful close, then terminate stragglers)."""
        self._closed = True
        for state in self._shards:
            if state.dead:
                continue
            try:
                state.conn.send((next(self._request_ids), "close"))
            except (BrokenPipeError, OSError):
                pass
        for state in self._shards:
            state.process.join(timeout=timeout)
            if state.process.is_alive():  # pragma: no cover — stuck worker
                state.process.terminate()
                state.process.join(timeout=1.0)
        for state in self._shards:
            state.conn.close()
