"""Sharded execution: documents partitioned across worker processes.

``Engine(workers=N)`` routes every document to one of ``N`` worker
processes.  Each worker runs a plain single-process
:class:`~repro.engine.local.LocalStore`; all workers share **one catalog
directory** (the catalog's atomic temp-file + ``os.replace`` writes make it
multi-process safe), so a standing query is compiled once — by the parent —
and every worker *loads* its persisted form instead of compiling.

Design constraints:

* **fork/spawn safety.**  The worker entry point
  (:func:`_shard_worker_main`) is a module-level function and receives only
  picklable arguments (a pipe connection, the catalog path, the backend
  name), so it works under every :mod:`multiprocessing` start method.
  Documents, queries, edits and answers cross the pipe pickled; node /
  position ids, answer order and epochs are identical to a single-process
  store (pinned by the sharded-equivalence tests).
* **one in-flight request per worker.**  The engine is a synchronous façade;
  each request is a ``(op, ...)`` tuple answered by ``("ok", payload)`` or
  ``("err", exception)`` — the exception object itself travels back and is
  re-raised in the caller, so sharded error behavior (``InvalidEditError``,
  ``CursorInvalidatedError`` with its report, ...) matches local behavior.
* **death detection.**  A broken pipe surfaces as
  :class:`~repro.errors.EngineError` naming the shard, never a hang.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional

from repro.errors import EngineError

__all__ = ["ShardPool"]


def _handle_request(store, queries_by_digest, request):
    """Execute one request tuple against the worker's LocalStore."""
    op = request[0]
    if op == "add":
        # The parent sends each query's source automaton to a shard once
        # (it can be large); later adds of the same content carry only the
        # digest and resolve against this worker-side cache.
        _, doc_id, kind, content, query, digest = request
        if query is None:
            query = queries_by_digest.get(digest)
            if query is None:
                raise EngineError(
                    f"shard has no cached query for digest {digest[:12]}..."
                )
        else:
            queries_by_digest[digest] = query
        if kind == "tree":
            document = store.add_tree(content, query, doc_id=doc_id)
        else:
            document = store.add_word(content, query, doc_id=doc_id)
        return {"doc_id": document.doc_id, "kind": document.kind, "digest": document.digest}
    if op == "edits":
        _, doc_id, edits = request
        return store.document(doc_id).apply_edits(edits)
    if op == "page":
        _, doc_id, cursor_id, page_size = request
        document = store.document(doc_id)
        cursor, page = document.fetch_page(cursor_id, page_size)
        return {
            "cursor_id": cursor.cursor_id,
            "answers": tuple(page.answers),
            "offset": page.offset,
            "exhausted": page.exhausted,
            "epoch": document.epoch,
        }
    if op == "count":
        _, doc_id, limit = request
        return store.document(doc_id).count(limit=limit)
    if op == "epoch":
        _, doc_id = request
        return store.document(doc_id).epoch
    if op == "remove":
        _, doc_id = request
        store.remove(doc_id)
        return None
    if op == "stats":
        return store.stats()
    raise EngineError(f"unknown shard request {op!r}")


def _shard_worker_main(conn, catalog_root: Optional[str], relation_backend: Optional[str]) -> None:
    """Entry point of one shard worker process.

    Module-level (importable) so it works under the ``spawn`` start method;
    receives only picklable arguments so it also works under ``fork`` and
    ``forkserver``.
    """
    # Imports happen here (not at module top) only in the sense that a
    # spawned interpreter re-imports this module; keeping them top-level in
    # the package is what makes that re-import cheap and deterministic.
    from repro.engine.catalog import QueryCatalog
    from repro.engine.local import LocalStore

    catalog = QueryCatalog(catalog_root) if catalog_root else None
    store = LocalStore(catalog=catalog, relation_backend=relation_backend)
    queries_by_digest = {}
    while True:
        try:
            request = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if request[0] == "close":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            conn.send(("ok", _handle_request(store, queries_by_digest, request)))
        except BaseException as exc:  # noqa: BLE001 — every failure must travel back
            try:
                conn.send(("err", exc))
            except Exception:
                # The exception itself didn't pickle; send a description.
                conn.send(
                    ("err", EngineError(f"shard worker error ({type(exc).__name__}): {exc}"))
                )
    conn.close()


class ShardPool:
    """``N`` worker processes, each owning a LocalStore, addressed by index."""

    def __init__(
        self,
        workers: int,
        catalog_root: Optional[str],
        relation_backend: Optional[str] = None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise EngineError(f"a shard pool needs at least one worker, got {workers}")
        context = multiprocessing.get_context(start_method)
        self.start_method = context.get_start_method()
        self._conns = []
        self._procs: List[multiprocessing.Process] = []
        try:
            for index in range(workers):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_conn, catalog_root, relation_backend),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(process)
        except BaseException:
            self.close()
            raise
        self._closed = False

    def __len__(self) -> int:
        return len(self._procs)

    # ---------------------------------------------------------------- request
    def request(self, shard: int, *request):
        """Send one request tuple to a shard and return (or raise) its answer."""
        if getattr(self, "_closed", True):
            raise EngineError("the engine's worker pool is closed")
        conn = self._conns[shard]
        try:
            conn.send(request)
            status, payload = conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            process = self._procs[shard]
            raise EngineError(
                f"shard worker {shard} (pid {process.pid}, "
                f"exitcode {process.exitcode}) died while handling {request[0]!r}"
            ) from exc
        if status == "err":
            raise payload
        return payload

    def broadcast(self, *request) -> List:
        """The same request to every shard, answers in shard order."""
        return [self.request(shard, *request) for shard in range(len(self))]

    # ------------------------------------------------------------------ close
    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down (graceful close, then terminate stragglers)."""
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._procs:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover — stuck worker
                process.terminate()
                process.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
