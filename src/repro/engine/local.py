"""`LocalStore` / `LocalDocument`: one process's maintained documents.

This is the single-process execution layer behind :class:`repro.Engine` (and
behind each sharding worker of ``Engine(workers=N)``): a **standing query**,
compiled once (and persisted via :class:`~repro.engine.catalog.QueryCatalog`),
served over many **evolving documents**.  Each local document packages:

* the maintained balanced term and incremental circuit of Lemma 7.3 —
  wrapped as the library's :class:`~repro.core.enumerator.TreeRuntime` or
  :class:`~repro.core.enumerator.WordRuntime` (Theorem 8.1 / 8.5), so
  every document build and edit goes through the exact code path the tests
  and benchmarks pin;
* an **epoch counter** advanced once per applied edit batch;
* the set of open :class:`~repro.engine.cursor.Cursor`\\ s, which the
  document notifies after each edit batch with the maintainer's
  :class:`~repro.incremental.maintainer.BoxDelta` map (old-box serial →
  rebuilt box + changed-slot mask, chained across the batch), driving the
  cursors' fine-grained resume-or-invalidate decision.

All documents added for content-equal queries share one compiled automaton —
and therefore one box-plan cache — whether it came from the catalog or from
an in-process compile.

Word edits are specified as tuples (the word maintainer's operations have no
first-class edit objects): ``("replace", position_id, letter)``,
``("insert_after", position_id_or_None, letter)``, ``("delete",
position_id)``.

The historical public names live in :mod:`repro.serving`:
``DocumentStore`` is a deprecated shim subclass of :class:`LocalStore`, and
``ServedDocument`` is an alias of :class:`LocalDocument`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.automata.unranked_tva import UnrankedTVA
from repro.automata.wva import WVA
from repro.circuits.build import DEFAULT_BUILD_CACHE_SIZE, BuildCache
from repro.core.enumerator import TreeRuntime, WordRuntime, compiled_automaton_for
from repro.core.results import UpdateStats
from repro.errors import ServingError
from repro.engine.catalog import QueryCatalog
from repro.incremental.maintainer import BoxDelta
from repro.engine.codec import CompiledQuery
from repro.enumeration.assignment_iter import root_boxed_set
from repro.engine.cursor import Cursor, CursorPage
from repro.obs import DelayMonitor, EventLog, MetricsRegistry
from repro.trees.edits import EditOperation
from repro.trees.unranked import UnrankedTree

__all__ = ["LocalStore", "LocalDocument", "BatchUpdateReport"]


@dataclass
class BatchUpdateReport:
    """What one edit batch did to a served document."""

    document_id: object
    epoch: int  #: the document epoch after the batch
    stats: List[UpdateStats] = field(default_factory=list)
    boxes_rebuilt: int = 0
    cursors_resumed: int = 0
    cursors_invalidated: int = 0

    def trunk_total(self) -> int:
        return sum(s.trunk_size for s in self.stats)


class LocalDocument:
    """One maintained document bound to a compiled standing query."""

    def __init__(self, store: "LocalStore", doc_id, kind: str, enumerator, digest: str):
        self.store = store
        self.doc_id = doc_id
        self.kind = kind  #: "tree" or "word"
        self.enumerator = enumerator
        self.digest = digest
        self.epoch = 0
        #: cursors still eligible for edit notifications (pruned as they
        #: exhaust, invalidate or close, so long-lived documents don't
        #: accumulate dead cursor objects)
        self._cursors: List[Cursor] = []
        #: next cursor id to hand out.  A plain int (not itertools.count) so
        #: a restored replica can re-synchronize it (``sync_cursor_ids``):
        #: replicated engines mirror every cursor open to every replica, and
        #: ids must agree across replicas for failover to be transparent.
        self._next_cursor_id = 0
        #: cursors addressable by id for ``Engine``-style paging.  Bounded:
        #: an entry is evicted as soon as its stream can never produce
        #: another useful page — when a fetch exhausts it, or right after
        #: the one precise :class:`CursorInvalidatedError` is delivered —
        #: so a long-lived document retains only its live cursors.
        self._cursors_by_id: Dict[int, Cursor] = {}
        self.cursors_opened_total = 0
        self.cursors_invalidated_total = 0
        self.cursors_resumed_total = 0  #: cursor×edit-batch resume events

    # ------------------------------------------------------------------ views
    @property
    def maintainer(self):
        return self.enumerator.maintainer

    def _root_boxed_set(self):
        return root_boxed_set(
            self.maintainer.root_box, self.enumerator.binary_automaton.final
        )

    def answers(self):
        """Fresh full enumeration of the document's current answers."""
        return self.enumerator.assignments()

    def count(self, limit: Optional[int] = None) -> int:
        return self.enumerator.count(limit=limit)

    def open_cursors(self) -> List[Cursor]:
        """The currently resumable (active) cursors."""
        return [c for c in self._cursors if c.is_active()]

    def trunk_boxes(self, node_or_position_id: int) -> List:
        """The boxes a (non-rebalancing) edit at the given node would rebuild.

        The path of term nodes from the node's leaf to the term root — the
        trunk of the corresponding hollowing (Definition 7.2) — read off the
        maintained term.  Rebalancing can enlarge the actual trunk, so this
        is a lower bound; it is exact for relabel edits on a balanced term
        and is what tests and capacity planning use to predict cursor
        invalidation (``store.would_invalidate``).
        """
        term = self.enumerator.term
        leaf = term.leaf_of.get(node_or_position_id)
        if leaf is None:
            raise ServingError(
                f"document {self.doc_id!r} has no node/position {node_or_position_id!r}"
            )
        boxes = []
        node = leaf
        while node is not None:
            if node.box is not None:
                boxes.append(node.box)
            node = node.parent
        return boxes

    # ----------------------------------------------------------------- cursors
    def open_cursor(self, page_size: int = 50) -> Cursor:
        """Open a paginated cursor over the document's current answers."""
        cursor = Cursor(self, self._next_cursor_id, page_size)
        self._next_cursor_id += 1
        self._cursors.append(cursor)
        self._cursors_by_id[cursor.cursor_id] = cursor
        self.cursors_opened_total += 1
        return cursor

    def sync_cursor_ids(self, next_cursor_id: int) -> None:
        """Fast-forward the cursor-id counter (restore-after-failover only).

        A document rebuilt on a respawned shard starts with no cursors, but
        other replicas may already have handed out ids ``0..n-1``; syncing
        the counter keeps ids identical across replicas for every cursor
        opened from now on.  Rewinding is refused — reusing a live id would
        corrupt the replica's addressing.
        """
        if next_cursor_id < self._next_cursor_id:
            raise ServingError(
                f"cannot rewind cursor ids of document {self.doc_id!r} "
                f"({self._next_cursor_id} -> {next_cursor_id})"
            )
        self._next_cursor_id = next_cursor_id

    def cursor_by_id(self, cursor_id: int) -> Cursor:
        """The cursor with the given id, for paging by id (live cursors only)."""
        try:
            return self._cursors_by_id[cursor_id]
        except KeyError:
            raise ServingError(
                f"document {self.doc_id!r} has no cursor {cursor_id!r} "
                "(it may have been exhausted or invalidated and released)"
            ) from None

    def fetch_page(
        self, cursor_id: Optional[int] = None, page_size: int = 50
    ) -> Tuple[Cursor, CursorPage]:
        """One engine-style page request: open (or look up) a cursor, fetch.

        ``cursor_id=None`` opens a fresh cursor with ``page_size``; otherwise
        the existing cursor keeps the page size it was opened with.  Raises
        :class:`~repro.errors.CursorInvalidatedError` when an edit batch hit
        the cursor's trunk since the last page.  A cursor id is released once
        its stream ends (the page that exhausts it) or its invalidation has
        been reported — later requests for it raise
        :class:`~repro.errors.ServingError`.
        """
        if cursor_id is None:
            cursor = self.open_cursor(page_size=page_size)
        else:
            cursor = self.cursor_by_id(cursor_id)
        try:
            page = cursor.fetch()
        except BaseException:
            # One precise CursorInvalidatedError per cursor; then release it.
            self._cursors_by_id.pop(cursor.cursor_id, None)
            raise
        if page.exhausted:
            self._cursors_by_id.pop(cursor.cursor_id, None)
        return cursor, page

    def _forget_cursor(self, cursor: Cursor) -> None:
        """Drop a no-longer-notifiable cursor from the live list."""
        try:
            self._cursors.remove(cursor)
        except ValueError:
            pass

    def _notify_cursors(self, description: str, deltas) -> Tuple[int, int]:
        resumed = 0
        invalidated = 0
        survivors: List[Cursor] = []
        for cursor in self._cursors:
            if not cursor.is_active():
                continue  # pruned below
            if cursor._note_edits(self.epoch, description, deltas):
                resumed += 1
                survivors.append(cursor)
            else:
                invalidated += 1
        self._cursors = survivors
        self.cursors_resumed_total += resumed
        self.cursors_invalidated_total += invalidated
        return resumed, invalidated

    # ------------------------------------------------------------------ edits
    def apply_edits(self, edits: Iterable) -> BatchUpdateReport:
        """Apply one batch of edits; one epoch step for the whole batch.

        Tree documents take :class:`~repro.trees.edits.EditOperation` objects;
        word documents take ``("replace" | "insert_after" | "delete", ...)``
        tuples.  Each edit runs through the incremental maintainer
        (logarithmic trunk rebuild, Lemma 7.3); the union of the replaced
        trunk boxes is then checked against every open cursor.

        If an edit in the batch raises, the edits already applied are *not*
        rolled back (the document has genuinely changed); the epoch still
        advances and the cursors are still notified of the partial batch
        before the exception propagates — a cursor must never keep serving a
        stream whose trunk was rebuilt, however the batch ended.  A batch
        that fails before any edit applied leaves the epoch untouched.
        """
        edits = list(edits)
        report = BatchUpdateReport(document_id=self.doc_id, epoch=self.epoch)
        # Deltas for the whole batch, keyed by the serial of the box as the
        # *cursors* knew it (i.e. the pre-batch box).  An edit later in the
        # batch can replace a box an earlier edit just built; such links are
        # chained back to the pre-batch serial with the changed masks OR'd
        # (slot fingerprints compose: unchanged in both hops means unchanged
        # end to end).
        batch_deltas: Dict[int, BoxDelta] = {}
        origin: Dict[int, int] = {}  # new-box serial -> pre-batch serial
        descriptions: List[str] = []
        start = perf_counter()
        try:
            for edit in edits:
                stats = self._apply_one(edit)
                report.stats.append(stats)
                report.boxes_rebuilt += stats.trunk_size
                for serial, delta in self.maintainer.last_replaced_deltas.items():
                    root = origin.get(serial)
                    if root is not None:
                        prev = batch_deltas[root]
                        delta = BoxDelta(
                            old_serial=root,
                            old_box=prev.old_box,
                            new_box=delta.new_box,
                            changed_mask=prev.changed_mask | delta.changed_mask,
                        )
                        origin.pop(prev.new_box.serial, None)
                    else:
                        root = serial
                    batch_deltas[root] = delta
                    origin[delta.new_box.serial] = root
                descriptions.append(self._describe(edit))
        finally:
            if report.stats:
                self.epoch += 1
                report.epoch = self.epoch
                description = "edit batch [" + "; ".join(descriptions) + "]"
                resumed, invalidated = self._notify_cursors(description, batch_deltas)
                report.cursors_resumed = resumed
                report.cursors_invalidated = invalidated
                self.store.metrics.observe(
                    "update_batch_seconds", perf_counter() - start
                )
        return report

    def _apply_one(self, edit) -> UpdateStats:
        if self.kind == "tree":
            if not isinstance(edit, EditOperation):
                raise ServingError(
                    f"tree documents take EditOperation edits, got {edit!r}"
                )
            return self.enumerator.apply(edit)
        if not isinstance(edit, tuple) or not edit:
            raise ServingError(f"word documents take (op, ...) tuples, got {edit!r}")
        op = edit[0]
        if op == "replace":
            _, position_id, letter = edit
            return self.enumerator.replace(position_id, letter)
        if op == "insert_after":
            _, position_id, letter = edit
            return self.enumerator.insert_after(position_id, letter)
        if op == "delete":
            _, position_id = edit
            return self.enumerator.delete(position_id)
        raise ServingError(
            f"unknown word edit op {op!r}; expected replace/insert_after/delete"
        )

    @staticmethod
    def _describe(edit) -> str:
        if isinstance(edit, EditOperation):
            return edit.describe()
        return repr(edit)


class LocalStore:
    """Many served documents sharing persistently compiled standing queries.

    ``catalog`` (optional) is a :class:`~repro.engine.catalog.QueryCatalog`;
    when given, queries are resolved through it (disk hit → no compilation),
    otherwise through the in-process compiled-query cache.  All documents of
    content-equal queries share one compiled automaton either way.
    """

    def __init__(
        self,
        catalog: Optional[QueryCatalog] = None,
        relation_backend: Optional[str] = None,
        build_cache: Optional[BuildCache] = None,
        build_cache_size: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        delay_budget: Optional[float] = None,
        delay_strict: bool = False,
    ):
        if relation_backend is not None:
            from repro.enumeration.relations import validate_backend

            validate_backend(relation_backend)
        self.catalog = catalog
        self.relation_backend = relation_backend
        #: store-side observability: latency histograms/counters and the
        #: operational event ring (see :mod:`repro.obs`).  A sharded engine's
        #: workers each carry their own registry; the parent merges them.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        #: opt-in per-answer delay SLO; ``None`` keeps the enumeration hot
        #: path entirely hook-free (zero per-answer overhead).
        self.delay_monitor: Optional[DelayMonitor] = (
            None
            if delay_budget is None
            else DelayMonitor(
                delay_budget, self.metrics, events=self.events, strict=delay_strict
            )
        )
        #: cross-document build cache: subtrees with equal content (per
        #: compiled query) are built once and shared by every document in
        #: this store.  Pass ``build_cache_size=0`` to disable, or inject a
        #: prebuilt :class:`BuildCache` to share it across stores.
        if build_cache is not None:
            self.build_cache = build_cache
        else:
            self.build_cache = BuildCache(
                capacity=DEFAULT_BUILD_CACHE_SIZE if build_cache_size is None else build_cache_size
            )
        # Cache-hit latency feeds the build_cache_hit_seconds histogram.  For
        # an injected shared cache the last store wired wins, which is fine:
        # every store of one engine shares one registry.
        self.build_cache.on_hit_seconds = self.metrics.timer("build_cache_hit_seconds")
        self._documents: Dict[object, LocalDocument] = {}
        self._doc_ids = itertools.count()
        #: digest → CompiledQuery resolved so far (catalog or in-process)
        self._compiled: Dict[str, CompiledQuery] = {}

    # ----------------------------------------------------------------- queries
    def _resolve_query(self, query, expected_kind: str) -> CompiledQuery:
        if expected_kind == "tree" and not isinstance(query, UnrankedTVA):
            raise ServingError("tree documents take UnrankedTVA queries")
        if expected_kind == "word" and not isinstance(query, WVA):
            raise ServingError("word documents take WVA queries")
        if self.catalog is not None:
            entry = self.catalog.get(query)
        else:
            from repro.automata.serialize import query_digest

            digest = query_digest(query)
            entry = self._compiled.get(digest)
            if entry is None:
                entry = CompiledQuery(
                    kind=expected_kind,
                    digest=digest,
                    automaton=compiled_automaton_for(query),
                )
            entry.attach(query)
        self._compiled[entry.digest] = entry
        return entry

    # --------------------------------------------------------------- documents
    def add_tree(self, tree: UnrankedTree, query: UnrankedTVA, doc_id=None) -> LocalDocument:
        """Serve an unranked tree under a standing tree query (Theorem 8.1)."""
        entry = self._resolve_query(query, "tree")
        start = perf_counter()
        enumerator = TreeRuntime(
            tree, query, relation_backend=self.relation_backend, build_cache=self.build_cache
        )
        self.metrics.observe("ingest_build_seconds", perf_counter() - start)
        return self._register(enumerator, "tree", entry.digest, doc_id)

    def add_word(self, word: Sequence[object], query: WVA, doc_id=None) -> LocalDocument:
        """Serve a word under a standing spanner query (Theorem 8.5)."""
        entry = self._resolve_query(query, "word")
        start = perf_counter()
        enumerator = WordRuntime(
            word, query, relation_backend=self.relation_backend, build_cache=self.build_cache
        )
        self.metrics.observe("ingest_build_seconds", perf_counter() - start)
        return self._register(enumerator, "word", entry.digest, doc_id)

    def add_documents(
        self, contents, query=None, *, queries=None, doc_ids=None
    ) -> List[LocalDocument]:
        """Add many documents under standing queries (kind by content type).

        The single-process face of :meth:`repro.Engine.add_documents`:
        ``contents`` holds trees and/or words, ``query`` (shared) or
        ``queries`` (one per item) names the standing queries, ``doc_ids``
        optionally fixes ids.  Documents are added in order; the first
        failure propagates (earlier documents stay registered).
        """
        contents = list(contents)
        if queries is not None:
            queries = list(queries)
            if len(queries) != len(contents):
                raise ServingError(
                    f"queries ({len(queries)}) and contents ({len(contents)}) differ in length"
                )
        if doc_ids is not None:
            doc_ids = list(doc_ids)
            if len(doc_ids) != len(contents):
                raise ServingError(
                    f"doc_ids ({len(doc_ids)}) and contents ({len(contents)}) differ in length"
                )
        documents = []
        for index, content in enumerate(contents):
            item_query = queries[index] if queries is not None else query
            if item_query is None:
                raise ServingError(
                    "add_documents needs a query: pass query= (shared) or queries= (per item)"
                )
            doc_id = doc_ids[index] if doc_ids is not None else None
            if isinstance(content, UnrankedTree):
                documents.append(self.add_tree(content, item_query, doc_id=doc_id))
            else:
                documents.append(self.add_word(list(content), item_query, doc_id=doc_id))
        return documents

    def _register(self, enumerator, kind: str, digest: str, doc_id) -> LocalDocument:
        if doc_id is None:
            doc_id = next(self._doc_ids)
        if doc_id in self._documents:
            raise ServingError(f"document id {doc_id!r} already in use")
        document = LocalDocument(self, doc_id, kind, enumerator, digest)
        # Observability hooks ride on the maintainer: per-update trunk
        # rebuild latency always, per-answer delay only under an SLO monitor
        # (keeping the default enumeration hot path hook-free).
        maintainer = enumerator.maintainer
        maintainer.on_update_seconds = self.metrics.timer("update_apply_seconds")
        if self.delay_monitor is not None:
            maintainer.on_delay = self.delay_monitor.observe
        self._documents[doc_id] = document
        return document

    def document(self, doc_id) -> LocalDocument:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise ServingError(f"no document with id {doc_id!r}") from None

    def remove(self, doc_id) -> None:
        """Drop a document (its cursors are closed, live streams invalidated)."""
        document = self.document(doc_id)
        for cursor in list(document._cursors):  # close() prunes the live list
            cursor.close()
        # A stream over a removed document must fail at its next answer in
        # local mode exactly as it does in sharded mode (where the engine's
        # epoch mirror is dropped with the document).
        document.enumerator.invalidate_iterators()
        del self._documents[doc_id]

    def doc_ids(self) -> List[object]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    # ------------------------------------------------------------------ traffic
    def apply_edits(self, doc_id, edits: Iterable) -> BatchUpdateReport:
        """Apply a batch of edits to one document (one epoch step)."""
        return self.document(doc_id).apply_edits(edits)

    def open_cursor(self, doc_id, page_size: int = 50) -> Cursor:
        """Open a paginated cursor on one document."""
        return self.document(doc_id).open_cursor(page_size)

    def would_invalidate(self, doc_id, cursor: Cursor, node_or_position_id: int) -> bool:
        """Predict whether an edit at a node *could* hit a cursor.

        Compares the node's prospective trunk (:meth:`ServedDocument.trunk_boxes`)
        against the cursor's currently referenced boxes by build serial.  This
        is the coarse whole-box projection of the cursor's dependency set, so
        it is an upper bound: an actual edit whose rebuilt boxes are
        fingerprint-equal at every slot the cursor still reads will let the
        cursor resume even though this predicted a hit.  A predicted ``False``
        can only turn into an actual invalidation through rebalancing, which
        structural edits may additionally trigger.
        """
        document = self.document(doc_id)
        trunk = {box.serial for box in document.trunk_boxes(node_or_position_id)}
        return any(box.serial in trunk for box in cursor.referenced_boxes())

    # ------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, object]:
        """A snapshot of the store for monitoring."""
        documents = self._documents.values()
        return {
            "documents": len(self._documents),
            "compiled_queries": len(self._compiled),
            "cursors_open": sum(
                sum(1 for c in d._cursors if c.is_active()) for d in documents
            ),
            "cursors_opened_total": sum(d.cursors_opened_total for d in documents),
            "cursors_invalidated": sum(d.cursors_invalidated_total for d in documents),
            # resume *events* (cursor × edit batch): the measured side of the
            # ROADMAP's cursor-resume-rate open item
            "cursors_resumed_across_edit_batches": sum(
                d.cursors_resumed_total for d in documents
            ),
            "relation_backend": self.relation_backend,
            **self.build_cache.stats(),
        }
