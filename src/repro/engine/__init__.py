"""repro.engine — one unified Engine/Session API over trees, words and spanners.

The engine is the single front door to the paper's pipeline (Theorem 8.1 for
unranked-tree queries, Theorem 8.5 for word queries and document spanners):
four nouns cover every workload.

* :class:`Engine` owns a :class:`~repro.engine.catalog.QueryCatalog`,
  backend/config defaults and an optional pool of shard worker processes
  (``Engine(workers=N)`` partitions documents across ``N`` processes that
  share one catalog directory).
* :class:`~repro.engine.query.Query` is one polymorphic compiled-query
  handle — tree TVA, word VA or regex spanner — compiled and persisted
  through one content-addressed path.
* :class:`~repro.engine.document.Document` is a tree or word handle with
  ``apply_edits`` (Definition 7.1 / word edits), epochs, and ``stream()`` /
  ``page()`` enumeration.
* :class:`~repro.engine.document.ResultPage` is the one page type, backed by
  the edit-stable cursors of :mod:`repro.engine.cursor`.

Quickstart::

    from repro import Engine

    with Engine(catalog="catalog-dir") as engine:
        query = engine.compile(tva)            # or a WVA, Spanner, or regex
        doc = engine.add_tree(tree, query)
        for answer in doc.stream():            # duplicate-free, Theorem 6.5
            ...
        page = doc.page(page_size=100)         # edit-stable pagination
        doc.apply_edits([Relabel(node_id, "b")])
        page = doc.page(cursor=page)           # resumes — or a precise
                                               # CursorInvalidatedError

All errors derive from :class:`repro.errors.ReproError`.  The historical
entry points (``TreeEnumerator`` / ``WordEnumerator`` /
``repro.serving.DocumentStore``) remain as deprecated shims over the same
machinery.
"""

from repro.engine.catalog import QueryCatalog
from repro.engine.codec import CompiledQuery
from repro.engine.cursor import Cursor, CursorInvalidation, CursorPage
from repro.engine.document import Document, ResultPage
from repro.engine.engine import Engine
from repro.engine.local import BatchUpdateReport, LocalDocument, LocalStore
from repro.engine.query import Query

__all__ = [
    "Engine",
    "Query",
    "Document",
    "ResultPage",
    "QueryCatalog",
    "CompiledQuery",
    "Cursor",
    "CursorInvalidation",
    "CursorPage",
    "BatchUpdateReport",
    "LocalDocument",
    "LocalStore",
]
