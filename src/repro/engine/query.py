"""`Query`: one polymorphic compiled-query handle over trees, words and spanners.

The paper proves one pipeline twice — Theorem 8.1 for unranked-tree variable
automata and Theorem 8.5 for word variable automata (document spanners) —
and the engine exposes it once: a :class:`Query` wraps whichever source the
caller compiled (an :class:`~repro.automata.unranked_tva.UnrankedTVA`, a
:class:`~repro.automata.wva.WVA`, a :class:`~repro.spanners.Spanner`, or a
spanner regex string) behind one handle with one content digest.  The digest
(:func:`repro.automata.serialize.query_digest`) is the content address the
:class:`~repro.engine.catalog.QueryCatalog` persists the compiled form under
and the sharding workers load it back by.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.assignments import Assignment
from repro.automata.unranked_tva import UnrankedTVA
from repro.automata.wva import WVA
from repro.errors import EngineError

__all__ = ["Query", "normalize_query_source"]


def normalize_query_source(source, alphabet=None) -> Tuple[str, object, Optional[str]]:
    """Normalize anything :meth:`Engine.compile` accepts to ``(kind, automaton, pattern)``.

    ``kind`` is ``"tree"`` or ``"word"``; ``automaton`` is the source
    :class:`UnrankedTVA` or :class:`WVA`; ``pattern`` is the originating
    spanner regex when there was one (kept for display, not for keying —
    content addressing always digests the automaton).
    """
    if isinstance(source, UnrankedTVA):
        return "tree", source, None
    if isinstance(source, WVA):
        return "word", source, None
    if isinstance(source, str):
        if alphabet is None:
            raise EngineError(
                "compiling a spanner regex needs alphabet=: "
                "Engine.compile(pattern, alphabet=...)"
            )
        from repro.spanners.compile import regex_to_wva

        return "word", regex_to_wva(source, list(dict.fromkeys(alphabet))), source
    # A repro.spanners.Spanner (duck-typed to avoid importing the module for
    # the common automaton cases).
    wva = getattr(source, "wva", None)
    if isinstance(wva, WVA):
        return "word", wva, getattr(source, "pattern", None)
    raise EngineError(
        f"cannot compile {type(source).__name__}; expected an UnrankedTVA, a WVA, "
        "a Spanner, or a regex pattern string (with alphabet=)"
    )


class Query:
    """A compiled standing query: the one handle all three workloads share.

    Obtained from :meth:`repro.Engine.compile` (or implicitly by passing a
    raw source to ``Engine.add_tree`` / ``Engine.add_word``).  Attributes:

    ``kind``
        ``"tree"`` (Theorem 8.1) or ``"word"`` (Theorem 8.5 — word automata
        and spanners are both word queries).
    ``source``
        The source automaton (:class:`UnrankedTVA` or :class:`WVA`).
    ``digest``
        The cross-process content digest the compiled form is persisted
        under; equal content ⇒ equal digest ⇒ one compiled automaton.
    ``pattern``
        The spanner regex this query was compiled from, if any.
    """

    def __init__(self, kind: str, source, digest: str, pattern: Optional[str] = None, entry=None):
        self.kind = kind
        self.source = source
        self.digest = digest
        self.pattern = pattern
        #: the resolved :class:`~repro.engine.codec.CompiledQuery` (carries
        #: the homogenized binary automaton and its box-plan cache)
        self.entry = entry

    # ------------------------------------------------------------------ views
    @property
    def variables(self) -> frozenset:
        """The query's variables (capture variables, for spanners)."""
        return self.source.variables

    @property
    def automaton(self):
        """The compiled (translated + homogenized) binary automaton."""
        if self.entry is not None:
            return self.entry.automaton
        from repro.core.enumerator import compiled_automaton_for

        return compiled_automaton_for(self.source)

    def spans(self, assignment: Assignment) -> Dict[object, Tuple[int, int]]:
        """Per-variable half-open ``(start, end)`` spans of a word answer.

        Only meaningful for ``kind == "word"`` queries whose captures bind
        contiguous positions (the spanner case).
        """
        if self.kind != "word":
            raise EngineError("spans() is only defined for word (spanner) queries")
        from repro.spanners.spanner import Spanner

        return Spanner.spans(assignment)

    def __repr__(self) -> str:  # pragma: no cover
        shown = self.pattern if self.pattern is not None else type(self.source).__name__
        return f"Query(kind={self.kind!r}, {shown!r}, digest={self.digest[:12]}...)"
