"""`Engine`: the unified front door over trees, words and spanners.

One object owns the whole serving pipeline of the paper — translate
(Lemma 7.4 / Theorem 8.5) → homogenize (Lemma 2.1) → circuit + index
(Lemma 3.7 / 6.3) → duplicate-free enumeration (Theorem 6.5) → Lemma 7.3
updates — behind four nouns:

* :class:`Engine` — owns a :class:`~repro.engine.catalog.QueryCatalog`,
  backend/config defaults, and (optionally) a pool of shard worker
  processes;
* :class:`~repro.engine.query.Query` — one polymorphic compiled-query
  handle for unranked-tree TVA queries, word VAs and regex spanners,
  compiled and persisted through one content-addressed path;
* :class:`~repro.engine.document.Document` — a tree or word handle with
  ``apply_edits``, epochs, and ``stream()`` / ``page()`` enumeration;
* :class:`~repro.engine.document.ResultPage` — the one page type, backed by
  edit-stable cursors.

``Engine(workers=N)`` shards documents across ``N`` worker processes that
share the engine's catalog directory (compiled once by the parent, loaded by
every worker); edits and page fetches are routed by document id and
:meth:`Engine.stats` merges the per-shard statistics.  The worker protocol
is pipelined (request-id tagged, see :mod:`repro.engine.sharding`):
:meth:`Engine.add_documents` ships one document batch per shard with every
batch in flight at once, so per-document builds overlap across workers, and
sharded :meth:`~repro.engine.document.Document.stream` consumes result
chunks the worker pushes under a bounded credit window instead of paying one
round trip per page.

``Engine(workers=N, replicas=R)`` additionally makes the fleet fault
tolerant (PR 6):

* **replicated placement.**  Each document is placed on ``R`` shards,
  load-aware over the live in-flight/document counters instead of blind
  round-robin.  Writes (ingest, ``apply_edits``, cursor opens and page
  fetches — cursor state is deterministic, so mirroring keeps cursor ids
  and positions in lockstep) go to *every* live replica; plain reads
  (``stream``, ``count``, ``epoch``) go to the least-loaded live replica.
* **failover + rebuild.**  When a shard dies (crash, hang past the
  ``deadline``, or protocol violation — all surface as
  :class:`~repro.errors.ShardDiedError` subtypes), in-flight reads retry
  transparently on a surviving replica, a replacement worker is respawned
  in the background, and every under-replicated document is re-migrated
  onto it: the engine keeps each document's original content plus its edit
  log, and the replacement *replays* them, reproducing node/position ids,
  epochs and enumeration order byte-identically.
  :class:`~repro.errors.ShardDiedError` reaches the caller only when every
  replica of a document is gone.
* **observability.**  :meth:`Engine.stats` reports ``deaths_total``,
  ``timeouts_total``, ``failovers_total``, ``migrations_total``,
  ``repairs_pending`` and, per shard, ``generation`` and ``replica_of``.

With ``replicas=1`` (the default) none of this machinery engages: a dead
shard stays dead and its documents are precisely unreachable, exactly the
PR-4/5 behavior.
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import tempfile
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.catalog import QueryCatalog
from repro.engine.codec import CompiledQuery
from repro.engine.document import Document, ResultPage, STREAM_PAGE_SIZE
from repro.engine.local import BatchUpdateReport, LocalStore
from repro.engine.query import Query, normalize_query_source
from repro.engine.sharding import STREAM_CREDIT, ShardPool
from repro.errors import EngineError, ServingError, ShardDiedError, StaleIteratorError
from repro.obs import EventLog, MetricsRegistry, Tracer, render_prometheus
from repro.obs.tracing import trace_path_from_env
from repro.trees.unranked import UnrankedTree

__all__ = ["Engine"]


class Engine:
    """The unified enumeration engine (Theorems 8.1 + 8.5, one API).

    Parameters
    ----------
    catalog:
        ``None``, a directory path, or a :class:`QueryCatalog`.  With a
        catalog, :meth:`compile` persists every compiled query through the
        content-addressed path, so a fresh process (or a shard worker) loads
        instead of compiling.  A sharded engine *requires* a shared catalog
        directory; when none is given it creates a private temporary one
        (removed on :meth:`close`).
    backend:
        Default relation backend (``"pairs"`` / ``"matrix"`` / ``"bitset"``)
        for every document; ``None`` = the library default.
    workers:
        ``0`` (default) serves in-process; ``N >= 1`` partitions documents
        across ``N`` worker processes (load-aware placement, routed by
        document id afterwards).
    replicas:
        Copies of each document across distinct shards (default 1).  With
        ``replicas >= 2`` the engine survives any single shard death with
        zero document and zero in-flight-answer loss: reads fail over to a
        surviving replica and a replacement worker is respawned and
        re-populated in the background.  Requires ``replicas <= workers``.
    deadline:
        Seconds any single protocol wait (request reply, stream chunk) may
        block (default ``None`` = unbounded).  On expiry the hung worker is
        killed and the wait raises :class:`~repro.errors.ShardTimeoutError`
        — which, with replicas, fails over like a crash.
    fault_plan:
        A :class:`~repro.engine.faults.FaultPlan` (or spec string) injected
        into the workers for robustness testing; defaults to the
        ``REPRO_FAULTS`` environment variable.  See
        :mod:`repro.engine.faults`.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` = the platform default.
        The workers are safe under all of them.
    page_size:
        Default :meth:`Document.page` size.
    build_cache_size:
        Capacity (cached subtree roots) of the cross-document build cache
        each store keeps: documents sharing subtree content (per compiled
        query) build those subtrees once — boxes and enumeration index
        included.  ``None`` = the library default
        (:data:`repro.circuits.build.DEFAULT_BUILD_CACHE_SIZE`), ``0``
        disables caching.  Sharded engines give every worker its own cache
        of this capacity; hit/miss/eviction counters surface through
        :meth:`stats` as ``build_cache_hits`` / ``build_cache_misses`` /
        ``build_cache_evictions`` (summed across shards).
    trace:
        ``True`` enables request tracing: every engine call opens a span,
        shard workers parent their protocol spans under it, and
        :meth:`dump_trace` exports one coherent Chrome-trace JSON.  A
        prebuilt :class:`~repro.obs.Tracer` may be passed instead.  Setting
        the ``REPRO_TRACE`` environment variable to a directory enables
        tracing too and auto-dumps the trace there on :meth:`close`.
        Default off — the instrumentation left in the hot paths is a single
        attribute check (gated under 5% by the benchmark suite).
    delay_budget:
        Opt-in per-answer delay SLO (seconds).  Arms a
        :class:`~repro.obs.DelayMonitor` in every store/worker: each
        produced answer's delay is recorded into the
        ``answer_delay_seconds`` histogram (see :meth:`metrics`) and every
        budget breach logs a ``delay_violation`` event (never raises unless
        ``delay_strict``).  ``None`` (default) keeps the enumeration hot
        path entirely hook-free.
    delay_strict:
        With a ``delay_budget``, raise :class:`~repro.errors.EngineError`
        on the first breach instead of just recording it (in-process
        engines only; sharded workers always record).
    slow_op_seconds:
        Threshold above which a shard protocol round trip is logged as a
        ``slow_op`` event (default 1.0; ``None`` disables).
    """

    def __init__(
        self,
        catalog=None,
        *,
        backend: Optional[str] = None,
        workers: int = 0,
        replicas: int = 1,
        deadline: Optional[float] = None,
        fault_plan=None,
        start_method: Optional[str] = None,
        page_size: int = 50,
        build_cache_size: Optional[int] = None,
        trace=False,
        delay_budget: Optional[float] = None,
        delay_strict: bool = False,
        slow_op_seconds: Optional[float] = 1.0,
    ):
        if backend is not None:
            from repro.enumeration.relations import validate_backend

            validate_backend(backend)
        if page_size < 1:
            raise EngineError("page_size must be >= 1")
        if delay_budget is not None and delay_budget <= 0:
            raise EngineError(f"the delay budget must be positive, got {delay_budget}")
        if slow_op_seconds is not None and slow_op_seconds <= 0:
            raise EngineError(
                f"slow_op_seconds must be positive (None disables), got {slow_op_seconds}"
            )
        if workers < 0:
            raise EngineError(f"workers must be >= 0, got {workers}")
        if replicas < 1:
            raise EngineError(f"replicas must be >= 1, got {replicas}")
        if replicas > 1 and not workers:
            raise EngineError("replication requires a sharded engine (workers >= 1)")
        if workers and replicas > workers:
            raise EngineError(
                f"replicas={replicas} needs at least that many workers, got {workers}"
            )
        if build_cache_size is not None and build_cache_size < 0:
            raise EngineError(
                f"build_cache_size must be >= 0 (0 disables), got {build_cache_size}"
            )
        self.backend = backend
        self.build_cache_size = build_cache_size
        self.page_size = page_size
        self.replicas = replicas
        self.deadline = deadline
        # Observability (see :mod:`repro.obs`): parent-side tracer, metrics
        # registry and event ring.  REPRO_TRACE=dir enables tracing from the
        # environment (headless runs) and auto-dumps on close().
        if isinstance(trace, Tracer):
            self._tracer = trace
        else:
            self._tracer = Tracer(
                enabled=bool(trace) or trace_path_from_env() is not None,
                process="parent",
            )
        self._metrics = MetricsRegistry()
        self._events = EventLog()
        self._delay_budget = delay_budget
        # Everything close() touches exists before any step that can raise,
        # so a failed construction cleans up (and __del__ stays safe).
        self._closed = False
        self._pool: Optional[ShardPool] = None
        self._store: Optional[LocalStore] = None
        self._owned_catalog_dir: Optional[str] = None
        self._documents: Dict[object, Document] = {}
        #: live replica shards of each document, in placement order
        self._replicas_of: Dict[object, List[int]] = {}
        #: parent-side epoch mirror: every edit flows through this engine, so
        #: the mirror is exact without a per-read round trip; sharded streams
        #: use it for the stale-on-edit check at the answer boundary
        self._epochs: Dict[object, int] = {}
        #: (doc_id, cursor_id) → shards holding that cursor.  Cursor state is
        #: deterministic and page fetches are mirrored, so every holder's
        #: copy of a cursor stays in lockstep; a replica rebuilt *after* the
        #: cursor was opened never joins (it only holds cursors opened since
        #: its restore).
        self._cursor_holders: Dict[Tuple[object, int], Set[int]] = {}
        #: per document, the next cursor id the workers will assign (mirrors
        #: ``LocalDocument._next_cursor_id`` — shipped on restore so rebuilt
        #: replicas keep assigning the same ids as the survivors)
        self._next_cursor_ids: Dict[object, int] = {}
        #: doc_id → (kind, pickled original content, query digest); retained
        #: only under replication, it is the "move bytes" half of migration
        self._ingest_blobs: Dict[object, tuple] = {}
        #: doc_id → every edit batch ever attempted, the "replay" half
        self._edit_logs: Dict[object, List[list]] = {}
        #: in-flight restore requests: {shard, generation, doc_id, request_id}
        self._repairs: List[dict] = []
        #: documents placed per shard (replica-counted), for load-aware placement
        self._placed: Dict[int, int] = {}
        self.failovers_total = 0
        self.migrations_total = 0
        #: batches whose shard reply arrived more than twice as late as the
        #: batch's first reply (arrival-order ingest makes these visible —
        #: the fast shards were already collected while the straggler built)
        self.ingest_stragglers_total = 0
        #: catalog lease naming the digests this engine keeps live, so
        #: ``catalog.gc()`` without an explicit keep-list never collects them
        self._lease = None
        #: monotonic logical cursor counters, accumulated per edit batch at
        #: the parent.  Shard-side per-document totals reset when a failover
        #: rebuilds a replica, so summing them across shards undercounts
        #: (and replication over-counts by ~R); every edit batch flows
        #: through this engine, so these parent-side sums are exact.
        self.cursors_resumed_total = 0
        self.cursors_invalidated_total = 0
        self._queries: Dict[str, Query] = {}
        #: per shard, the query digests whose source was already shipped
        self._queries_sent: Dict[int, set] = {}
        self._doc_ids = itertools.count()

        if workers and fault_plan is None:
            from repro.engine.faults import plan_from_env

            fault_plan = plan_from_env()
        if isinstance(fault_plan, str):
            from repro.engine.faults import parse_fault_spec

            fault_plan = parse_fault_spec(fault_plan)

        if isinstance(catalog, QueryCatalog):
            self.catalog: Optional[QueryCatalog] = catalog
        elif catalog is not None:
            self.catalog = QueryCatalog(os.fspath(catalog))
        elif workers:
            # Sharding needs a directory the workers can share; own a
            # temporary one when the caller did not provide any.
            self._owned_catalog_dir = tempfile.mkdtemp(prefix="repro-engine-catalog-")
            self.catalog = QueryCatalog(self._owned_catalog_dir)
        else:
            self.catalog = None
        if self.catalog is not None:
            self._lease = self.catalog.acquire_lease()

        try:
            if workers:
                self._pool = ShardPool(
                    workers,
                    self.catalog.root,
                    relation_backend=backend,
                    start_method=start_method,
                    deadline=deadline,
                    fault_plan=fault_plan,
                    build_cache_size=build_cache_size,
                    metrics=self._metrics,
                    on_event=self._events.emit,
                    slow_op_seconds=slow_op_seconds,
                    trace=self._tracer.enabled,
                    delay_budget=delay_budget,
                )
            else:
                self._store = LocalStore(
                    catalog=self.catalog,
                    relation_backend=backend,
                    build_cache_size=build_cache_size,
                    metrics=self._metrics,
                    events=self._events,
                    delay_budget=delay_budget,
                    delay_strict=delay_strict,
                )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ state
    @property
    def workers(self) -> int:
        """Number of shard worker processes (0 = in-process engine)."""
        return len(self._pool) if self._pool is not None else 0

    @property
    def _shard_of(self) -> Dict[object, int]:
        """doc_id → primary (first-replica) shard, for introspection/tests."""
        return {
            doc_id: replicas[0]
            for doc_id, replicas in self._replicas_of.items()
            if replicas
        }

    def _check_open(self) -> None:
        # getattr, not attribute access: a constructor that raised during
        # parameter validation never assigned ``_closed``, and a monitoring
        # call on such a husk must get a precise EngineError, not an
        # AttributeError.
        closed = getattr(self, "_closed", None)
        if closed is None:
            raise EngineError(
                "this engine never finished construction (its constructor raised); "
                "create a new Engine"
            )
        if closed:
            raise EngineError("this engine is closed")

    # ---------------------------------------------------------------- queries
    def compile(self, source, alphabet=None) -> Query:
        """Compile (and, with a catalog, persist) a query of any kind.

        ``source`` may be an :class:`~repro.automata.unranked_tva.UnrankedTVA`
        (tree query), a :class:`~repro.automata.wva.WVA` (word query), a
        :class:`~repro.spanners.Spanner`, a spanner regex string (pass
        ``alphabet=``), or an already-compiled :class:`Query` (returned
        as-is).  Equal query *content* yields one shared compiled automaton —
        in-process through the content-keyed cache, cross-process through the
        catalog digest.
        """
        self._check_open()
        if isinstance(source, Query):
            return source
        kind, query_source, pattern = normalize_query_source(source, alphabet)
        from repro.automata.serialize import query_digest

        digest = query_digest(query_source)
        known = self._queries.get(digest)
        if known is not None:
            return known
        if self.catalog is not None:
            entry = self.catalog.get(query_source)
            if digest not in self.catalog:
                # One content-addressed path for all kinds: compile once,
                # persist, and every other process (shard workers included)
                # loads instead of compiling.
                self.catalog.save(query_source, automaton=entry.automaton)
        else:
            from repro.core.enumerator import compiled_automaton_for

            entry = CompiledQuery(
                kind=kind, digest=digest, automaton=compiled_automaton_for(query_source)
            )
            entry.attach(query_source)
        query = Query(kind=kind, source=query_source, digest=digest, pattern=pattern, entry=entry)
        self._queries[digest] = query
        if self._lease is not None:
            # Record the digest as live, so a concurrent `catalog.gc()`
            # (no keep-list) in any process never collects it from under us.
            self._lease.add(digest)
        return query

    # -------------------------------------------------------------- documents
    def add(self, content, query, doc_id=None, alphabet=None) -> Document:
        """Add a document of either kind (dispatch on ``content``'s type).

        :class:`~repro.trees.unranked.UnrankedTree` → tree document; any
        string / sequence of letters → word document.
        """
        if isinstance(content, UnrankedTree):
            return self.add_tree(content, query, doc_id=doc_id, alphabet=alphabet)
        return self.add_word(content, query, doc_id=doc_id, alphabet=alphabet)

    def add_tree(self, tree: UnrankedTree, query, doc_id=None, alphabet=None) -> Document:
        """Serve an unranked tree under a standing tree query (Theorem 8.1)."""
        return self._add("tree", tree, query, doc_id, alphabet)

    def add_word(self, word, query, doc_id=None, alphabet=None) -> Document:
        """Serve a word under a standing word/spanner query (Theorem 8.5)."""
        return self._add("word", list(word), query, doc_id, alphabet)

    def _add(self, kind: str, content, query, doc_id, alphabet) -> Document:
        # Single adds ride the batch path (a batch of one), so there is
        # exactly one ingest protocol to keep correct.
        doc_ids = None if doc_id is None else [doc_id]
        return self.add_documents(
            [content], query, doc_ids=doc_ids, alphabet=alphabet, _kind=kind
        )[0]

    def add_documents(
        self,
        contents,
        query=None,
        *,
        queries=None,
        doc_ids=None,
        alphabet=None,
        _kind=None,
    ) -> List[Document]:
        """Add many documents at once — the pipelined ingest path.

        ``contents`` is a sequence of documents (each an
        :class:`~repro.trees.unranked.UnrankedTree` or a word); ``query`` is
        the standing query they share, or ``queries`` gives one per document.
        ``doc_ids`` optionally fixes ids (``None`` entries auto-assign).

        On a sharded engine the documents are grouped per shard (load-aware
        placement over the live shards, ``replicas`` shards per document) and
        shipped as **one pickled batch per worker, all batches in flight
        before any reply is collected** — so the per-document builds, the
        dominant serving cost, overlap across the worker processes instead of
        paying one synchronous round trip each.  A single-process engine adds
        the documents in order through the same entry point, so the facade is
        uniform.

        If an item fails inside a live worker, the documents the batch had
        already added stay registered and the item's original exception is
        re-raised.  If a worker process dies mid-batch, the documents that
        landed on no other replica are reported in a precise
        :class:`~repro.errors.ShardDiedError`; documents with at least one
        surviving replica stay registered (and are re-replicated in the
        background when ``replicas >= 2``).
        """
        self._check_open()
        items = self._prepare_ingest(contents, query, queries, doc_ids, alphabet, _kind)
        span = self._tracer.begin("add_documents", docs=len(items))
        start = perf_counter()
        try:
            if self._pool is None:
                # The same batch entry point a shard worker's store exposes, so
                # local and sharded engines share one ingest facade end to end.
                self._store.add_documents(
                    [content for _doc_id, _kind, content, _compiled in items],
                    queries=[compiled.source for _doc_id, _kind, _content, compiled in items],
                    doc_ids=[doc_id for doc_id, _kind, _content, _compiled in items],
                )
                return [
                    self._register(doc_id, kind, compiled)
                    for doc_id, kind, _content, compiled in items
                ]
            registered: Dict[object, Document] = {}
            for document in self._ingest_sharded_iter(
                items, trace_ctx=None if span is None else span.context
            ):
                registered[document.doc_id] = document
            # handles come back in the caller's order, not in completion order
            return [
                registered[doc_id]
                for doc_id, _kind, _content, _compiled in items
                if doc_id in registered
            ]
        finally:
            self._tracer.finish(span)
            self._metrics.observe("ingest_batch_seconds", perf_counter() - start)

    def add_documents_iter(
        self,
        contents,
        query=None,
        *,
        queries=None,
        doc_ids=None,
        alphabet=None,
    ):
        """:meth:`add_documents`, yielding each handle as its build lands.

        Returns an iterator of :class:`Document` handles in **completion
        order**: on a sharded engine each document is yielded as soon as
        every shard it was placed on has acknowledged its batch, so the
        documents on fast shards are usable while a straggler shard is
        still building.  Batch-level failures (a dead shard's lost
        documents, a failed item's original exception) are raised at the
        end, after every surviving document has been yielded — the same
        error semantics as :meth:`add_documents`.  On a single-process
        engine the documents are yielded in caller order after the batch
        builds (there is no per-shard completion to expose).
        """
        self._check_open()
        items = self._prepare_ingest(contents, query, queries, doc_ids, alphabet, None)

        def iterate():
            span = self._tracer.begin("add_documents", docs=len(items))
            start = perf_counter()
            try:
                if self._pool is None:
                    self._store.add_documents(
                        [content for _doc_id, _kind, content, _compiled in items],
                        queries=[
                            compiled.source for _doc_id, _kind, _content, compiled in items
                        ],
                        doc_ids=[doc_id for doc_id, _kind, _content, _compiled in items],
                    )
                    for doc_id, kind, _content, compiled in items:
                        yield self._register(doc_id, kind, compiled)
                    return
                for document in self._ingest_sharded_iter(
                    items, trace_ctx=None if span is None else span.context
                ):
                    yield document
            finally:
                self._tracer.finish(span)
                self._metrics.observe("ingest_batch_seconds", perf_counter() - start)

        return iterate()

    def _prepare_ingest(self, contents, query, queries, doc_ids, alphabet, _kind):
        """Validate one ingest batch into ``(doc_id, kind, content, compiled)`` rows."""
        contents = list(contents)
        if queries is not None:
            queries = list(queries)
            if len(queries) != len(contents):
                raise EngineError(
                    f"queries ({len(queries)}) and contents ({len(contents)}) differ in length"
                )
        if doc_ids is not None:
            doc_ids = list(doc_ids)
            if len(doc_ids) != len(contents):
                raise EngineError(
                    f"doc_ids ({len(doc_ids)}) and contents ({len(contents)}) differ in length"
                )
        items = []  # (doc_id, kind, wire_content, compiled)
        claimed = set()
        for index, content in enumerate(contents):
            item_query = queries[index] if queries is not None else query
            if item_query is None:
                raise EngineError(
                    "add_documents needs a query: pass query= (shared) or queries= (per item)"
                )
            compiled = self.compile(item_query, alphabet=alphabet)
            if isinstance(content, UnrankedTree):
                kind = "tree"
            else:
                kind = "word"
                content = list(content)
            if _kind is not None and kind != _kind:
                kind = _kind  # add_tree/add_word said so; the check below reports
            if compiled.kind != kind:
                raise EngineError(
                    f"cannot serve a {kind} document under a {compiled.kind} query "
                    f"(digest {compiled.digest[:12]}...)"
                )
            doc_id = doc_ids[index] if doc_ids is not None else None
            if doc_id is None:
                doc_id = next(self._doc_ids)
                while doc_id in self._documents or doc_id in claimed:
                    doc_id = next(self._doc_ids)
            elif doc_id in self._documents or doc_id in claimed:
                raise ServingError(f"document id {doc_id!r} already in use")
            claimed.add(doc_id)
            items.append((doc_id, kind, content, compiled))
        return items

    def _register(self, doc_id, kind: str, compiled: Query) -> Document:
        document = Document(self, doc_id, kind, compiled)
        self._documents[doc_id] = document
        self._epochs[doc_id] = 0
        self._next_cursor_ids[doc_id] = 0
        return document

    def _release_placement(self, shard: int) -> None:
        """Return one placement slot of a shard (replica lost, removed or
        never materialized); the counter never goes negative."""
        self._placed[shard] = max(0, self._placed.get(shard, 0) - 1)

    def _pick_shards(self, count: int) -> List[int]:
        """Load-aware placement: the ``count`` least-loaded live shards.

        Load is (in-flight requests, documents placed), with the shard index
        as a deterministic tie-break — so an idle fleet fills round-robin,
        but a shard bogged down in slow builds (or briefly absent while
        respawning) stops attracting new documents.  Returns fewer than
        ``count`` shards when fewer are live (degraded placement); raises
        only when no shard is live at all.
        """
        pool = self._pool
        live = [shard for shard in range(len(pool)) if pool.is_alive(shard)]
        if not live:
            raise EngineError(
                "every shard worker of this engine is dead; close the engine"
            )
        ranked = sorted(
            live, key=lambda s: (pool.inflight(s), self._placed.get(s, 0), s)
        )
        chosen = ranked[: min(count, len(ranked))]
        for shard in chosen:
            self._placed[shard] = self._placed.get(shard, 0) + 1
        return chosen

    def _ingest_sharded_iter(self, items, trace_ctx=None):
        """Sharded batch ingest, yielding handles in shard-completion order.

        All batches go out before any reply is read (builds overlap), and
        replies are processed in **arrival order**
        (:meth:`~repro.engine.sharding.ShardPool.wait_replies`): a document
        is registered and yielded the moment its last placement shard has
        acknowledged, so one straggler shard delays only its own documents.
        Shard deaths and per-item failures keep their PR-5/6 semantics —
        documents with a surviving replica stay registered, lost ones are
        reported in a precise :class:`~repro.errors.ShardDiedError`, and a
        failed item's original exception is re-raised — but only after every
        surviving document has been yielded.
        """
        self._reap_repairs()
        # Group per shard; ship each query's source to a shard once (later
        # adds of the same content carry only the digest).
        placements: Dict[object, List[int]] = {}
        batches: Dict[int, List] = {}
        for doc_id, kind, content, compiled in items:
            shards = self._pick_shards(self.replicas)
            placements[doc_id] = shards
            for shard in shards:
                sent = self._queries_sent.setdefault(shard, set())
                source = None if compiled.digest in sent else compiled.source
                sent.add(compiled.digest)
                batches.setdefault(shard, []).append(
                    (doc_id, kind, content, source, compiled.digest)
                )
        # Issue every batch before collecting any reply: builds overlap
        # across the worker processes.
        request_ids: Dict[int, int] = {}
        died: List[tuple] = []  # (shard, doc_ids, error)
        item_failure = None  # (shard, doc_id, original exception)
        for shard, batch in batches.items():
            try:
                request_ids[shard] = self._pool.submit(
                    shard, "add_batch", batch, trace_ctx=trace_ctx
                )
            except ShardDiedError as exc:
                died.append((shard, [entry[0] for entry in batch], exc))
        #: per document: placement shards that have not acknowledged yet
        remaining: Dict[object, Set[int]] = {
            doc_id: set(placements[doc_id]) for doc_id, _k, _c, _q in items
        }
        for shard, doc_ids, _exc in died:  # dead at submit: never acknowledges
            for doc_id in doc_ids:
                remaining[doc_id].discard(shard)
        landed: Dict[object, List[int]] = {doc_id: [] for doc_id, _k, _c, _q in items}
        finalized: Set[object] = set()
        registered_ids: Set[object] = set()
        batch_t0 = perf_counter()
        first_reply: Optional[float] = None

        def finalize_ready():
            """Register + yield every document whose placements all reported."""
            for doc_id, kind, content, compiled in items:
                if doc_id in finalized or remaining[doc_id]:
                    continue
                finalized.add(doc_id)
                shards = [s for s in placements[doc_id] if s in landed[doc_id]]
                for shard in placements[doc_id]:
                    if shard not in shards:
                        self._release_placement(shard)
                if not shards:
                    continue
                self._replicas_of[doc_id] = shards
                registered_ids.add(doc_id)
                document = self._register(doc_id, kind, compiled)
                if self.replicas > 1:
                    self._ingest_blobs[doc_id] = (kind, pickle.dumps(content), compiled.digest)
                    self._edit_logs[doc_id] = []
                yield document

        yield from finalize_ready()  # placements lost entirely at submit time
        pending = dict(request_ids)
        while pending:
            for shard in self._pool.wait_replies(pending):
                request_id = pending.pop(shard)
                try:
                    payload = self._pool.collect(shard, request_id)
                except ShardDiedError as exc:
                    died.append((shard, [entry[0] for entry in batches[shard]], exc))
                    for entry in batches[shard]:
                        remaining[entry[0]].discard(shard)
                    continue
                elapsed = perf_counter() - batch_t0
                if first_reply is None:
                    first_reply = elapsed
                elif elapsed > 2.0 * max(first_reply, 0.010):
                    # This shard took over twice as long as the batch's first
                    # reply: with the old lockstep collection its documents
                    # would have delayed the whole ingest return.
                    self.ingest_stragglers_total += 1
                    self._events.emit(
                        "ingest_straggler",
                        shard=shard,
                        elapsed=elapsed,
                        first_reply=first_reply,
                    )
                added = {summary["doc_id"] for summary in payload["added"]}
                for entry in batches[shard]:
                    doc_id = entry[0]
                    if doc_id in added:
                        landed[doc_id].append(shard)
                    remaining[doc_id].discard(shard)
                if payload["error"] is not None and item_failure is None:
                    item_failure = (shard, payload["failed_doc_id"], payload["error"])
            yield from finalize_ready()
        # Failover: respawn dead shards and re-replicate before reporting, so
        # a partially-lost batch is already being repaired when the caller
        # handles the error (no-op with replicas=1).
        for shard in {shard for shard, _ids, _exc in died}:
            self._after_death(shard)
        if died:
            lost = [
                (shard, [d for d in doc_ids if d not in registered_ids], exc)
                for shard, doc_ids, exc in died
            ]
            lost = [(shard, ids, exc) for shard, ids, exc in lost if ids]
            if lost:
                detail = "; ".join(
                    f"shard {shard} died with document ids {doc_ids!r} in flight"
                    for shard, doc_ids, _exc in lost
                )
                raise ShardDiedError(f"batch ingest failed: {detail}") from lost[0][2]
        if item_failure is not None:
            _shard, _doc_id, error = item_failure
            raise error

    def document(self, doc_id) -> Document:
        """The handle of a served document."""
        try:
            return self._documents[doc_id]
        except KeyError:
            raise ServingError(f"no document with id {doc_id!r}") from None

    def remove(self, doc_id) -> None:
        """Drop a document (its cursors are closed)."""
        self.document(doc_id)  # raises on unknown ids
        self._check_open()
        if self._pool is not None:
            self._reap_repairs()
            targets = self._write_targets(doc_id)
            submitted, dead_seen = [], []
            death_error: Optional[BaseException] = None
            removed = 0
            for shard in targets:
                try:
                    submitted.append((shard, self._pool.submit(shard, "remove", doc_id)))
                except ShardDiedError as exc:
                    dead_seen.append(shard)
                    death_error = exc
            for shard, request_id in submitted:
                try:
                    self._pool.collect(shard, request_id)
                    removed += 1
                except ShardDiedError as exc:
                    dead_seen.append(shard)
                    death_error = exc
            if removed == 0 and death_error is not None:
                # No replica acknowledged: the document is *not* removed
                # (with replicas=1 this is the PR-5 dead-shard behavior).
                for shard in set(dead_seen):
                    self._after_death(shard)
                raise death_error
            # Forget the document before handling deaths so it is not
            # re-migrated onto the respawned worker.
            replicas = self._replicas_of.pop(doc_id, [])
            for shard in replicas:
                self._release_placement(shard)
            self._ingest_blobs.pop(doc_id, None)
            self._edit_logs.pop(doc_id, None)
            self._next_cursor_ids.pop(doc_id, None)
            for key in [key for key in self._cursor_holders if key[0] == doc_id]:
                del self._cursor_holders[key]
            for shard in set(dead_seen):
                self._after_death(shard)
        else:
            self._store.remove(doc_id)
        del self._documents[doc_id]
        self._epochs.pop(doc_id, None)

    def doc_ids(self) -> List[object]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id) -> bool:
        return doc_id in self._documents

    # ----------------------------------------------------------- fault repair
    def _write_targets(self, doc_id) -> List[int]:
        """The shards a write (edits, cursor open, remove) must reach.

        Replicated writes go to every live replica in lockstep; with
        ``replicas=1`` the single home shard is returned even when dead, so
        the pool raises its precise dead-shard error (PR-5 behavior).
        """
        replicas = self._replicas_of[doc_id]
        if self.replicas == 1:
            return [replicas[0]]
        targets = [shard for shard in replicas if self._pool.is_alive(shard)]
        if not targets:
            raise ShardDiedError(
                f"every replica of document {doc_id!r} is gone "
                f"(all shard workers holding it died)"
            )
        return targets

    def _pick_read_replica(self, doc_id) -> int:
        """The least-loaded live replica (reads); the home shard if R=1."""
        replicas = self._replicas_of[doc_id]
        if self.replicas == 1:
            return replicas[0]
        pool = self._pool
        live = [shard for shard in replicas if pool.is_alive(shard)]
        if not live:
            raise ShardDiedError(
                f"every replica of document {doc_id!r} is gone "
                f"(all shard workers holding it died)"
            )
        return min(live, key=lambda s: (pool.inflight(s), s))

    def _after_death(self, shard: int) -> None:
        """Failover bookkeeping once a shard's death has been observed.

        With ``replicas=1`` this is a no-op: the PR-5 contract (a dead
        shard's documents are precisely unreachable, surviving shards stay
        usable) is preserved exactly.  With replication: the dead shard is
        retired from every replica set and cursor-holder set, a replacement
        worker is respawned at the same index, and every document now below
        its replication factor is re-migrated onto it in the background —
        restore requests are pipelined and collected lazily
        (:meth:`_reap_repairs` / :meth:`await_repairs`), and the pipe's FIFO
        ordering guarantees any later write or read routed to the new worker
        observes the fully rebuilt document.
        """
        if self.replicas == 1:
            return
        pool = self._pool
        if pool.is_alive(shard):
            return  # already respawned (a stale observation of an old death)
        start = perf_counter()
        span = self._tracer.begin("failover", shard=shard)
        failover_ctx = None if span is None else span.context
        for doc_id, replicas in self._replicas_of.items():
            if shard in replicas:
                replicas.remove(shard)
                self._release_placement(shard)
        for key in list(self._cursor_holders):
            holders = self._cursor_holders[key]
            holders.discard(shard)
            if not holders:
                del self._cursor_holders[key]
        dead_generation = pool.generation(shard)
        self._repairs = [
            repair
            for repair in self._repairs
            if not (repair["shard"] == shard and repair["generation"] == dead_generation)
        ]
        pool.respawn(shard)
        generation = pool.generation(shard)
        self._queries_sent[shard] = set()
        sent = self._queries_sent[shard]
        for doc_id, replicas in self._replicas_of.items():
            if len(replicas) >= self.replicas or shard in replicas:
                continue
            blob = self._ingest_blobs.get(doc_id)
            if blob is None:
                continue
            kind, content_bytes, digest = blob
            query = self._queries.get(digest)
            source = None if digest in sent or query is None else query.source
            sent.add(digest)
            try:
                request_id = self._pool.submit(
                    shard,
                    "restore",
                    doc_id,
                    kind,
                    pickle.loads(content_bytes),
                    source,
                    digest,
                    list(self._edit_logs.get(doc_id, ())),
                    self._next_cursor_ids.get(doc_id, 0),
                    trace_ctx=failover_ctx,
                )
            except ShardDiedError:
                # The replacement died instantly; the next observation of
                # this death respawns and re-migrates again.
                break
            replicas.append(shard)
            self._placed[shard] = self._placed.get(shard, 0) + 1
            self.migrations_total += 1
            self._repairs.append(
                {
                    "shard": shard,
                    "generation": generation,
                    "doc_id": doc_id,
                    "request_id": request_id,
                    "t0": perf_counter(),
                }
            )
        self._tracer.finish(span)
        self._metrics.observe("failover_seconds", perf_counter() - start)

    def _reap_repairs(self) -> None:
        """Collect finished background restores without blocking."""
        if not self._repairs:
            return
        pool = self._pool
        still: List[dict] = []
        dead_seen: List[int] = []
        for repair in self._repairs:
            shard = repair["shard"]
            if pool.generation(shard) != repair["generation"]:
                continue  # that worker died; its death handling re-migrated
            try:
                if not pool.poll_reply(shard, repair["request_id"]):
                    still.append(repair)
                    continue
                pool.collect(shard, repair["request_id"])
                if "t0" in repair:
                    self._metrics.observe("repair_seconds", perf_counter() - repair["t0"])
            except ShardDiedError:
                dead_seen.append(shard)
            except EngineError:
                # The restore itself failed on a live worker: treat it as a
                # replica loss (availability shrinks; nothing is corrupted).
                replicas = self._replicas_of.get(repair["doc_id"])
                if replicas and shard in replicas:
                    replicas.remove(shard)
                    self._release_placement(shard)
        self._repairs = still
        for shard in set(dead_seen):
            self._after_death(shard)

    def await_repairs(self) -> None:
        """Block until every background re-migration has been acknowledged.

        Deterministic tests and benchmarks call this to pin down "the fleet
        is back at full replication"; regular traffic never needs to — the
        pipe's FIFO ordering already hides rebuild latency.
        """
        self._check_open()
        if self._pool is None:
            return
        while self._repairs:
            repairs, self._repairs = self._repairs, []
            dead_seen: List[int] = []
            for repair in repairs:
                shard = repair["shard"]
                if self._pool.generation(shard) != repair["generation"]:
                    continue
                try:
                    self._pool.collect(shard, repair["request_id"])
                    if "t0" in repair:
                        self._metrics.observe(
                            "repair_seconds", perf_counter() - repair["t0"]
                        )
                except ShardDiedError:
                    dead_seen.append(shard)
                except EngineError:
                    replicas = self._replicas_of.get(repair["doc_id"])
                    if replicas and shard in replicas:
                        replicas.remove(shard)
                        self._release_placement(shard)
            for shard in set(dead_seen):
                self._after_death(shard)

    def _read_request(self, doc_id, op: str, *args):
        """Route one read to a live replica, failing over on shard death."""
        attempts = 2 * len(self._pool) + 2
        last_error: Optional[BaseException] = None
        for _ in range(attempts):
            shard = self._pick_read_replica(doc_id)
            try:
                return self._pool.request(shard, op, doc_id, *args)
            except ShardDiedError as exc:
                if self.replicas == 1:
                    raise
                last_error = exc
                self._after_death(shard)
                self.failovers_total += 1
        raise last_error

    # ---------------------------------------------------------------- traffic
    def apply_edits(self, doc_id, edits) -> BatchUpdateReport:
        """Apply one edit batch to a document (one epoch step), routed by id.

        Replicated documents apply the batch on **every live replica in
        lockstep** (same edits, same order, deterministic outcome), so
        epochs, cursor decisions and enumeration state stay byte-identical
        across replicas; the batch is also appended to the document's edit
        log so a future restore replays it.
        """
        self.document(doc_id)
        self._check_open()
        if self._pool is None:
            with self._tracer.span("apply_edits", doc_id=repr(doc_id)):
                return self._store.document(doc_id).apply_edits(edits)
        self._reap_repairs()
        edits = list(edits)
        span = self._tracer.begin("apply_edits", doc_id=repr(doc_id), edits=len(edits))
        try:
            return self._apply_edits_sharded(
                doc_id, edits, None if span is None else span.context
            )
        finally:
            self._tracer.finish(span)

    def _apply_edits_sharded(self, doc_id, edits, trace_ctx) -> BatchUpdateReport:
        targets = self._write_targets(doc_id)
        if self.replicas > 1:
            log = self._edit_logs.get(doc_id)
            if log is not None:
                log.append(list(edits))
        submitted, dead_seen = [], []
        death_error: Optional[BaseException] = None
        for shard in targets:
            try:
                submitted.append(
                    (
                        shard,
                        self._pool.submit(
                            shard, "edits", doc_id, edits, trace_ctx=trace_ctx
                        ),
                    )
                )
            except ShardDiedError as exc:
                dead_seen.append(shard)
                death_error = exc
        reports: List[BatchUpdateReport] = []
        app_error: Optional[BaseException] = None
        for shard, request_id in submitted:
            try:
                reports.append(self._pool.collect(shard, request_id))
            except ShardDiedError as exc:
                dead_seen.append(shard)
                death_error = exc
            except BaseException as exc:  # noqa: BLE001 — deterministic app error
                if app_error is None:
                    app_error = exc
        for shard in set(dead_seen):
            self._after_death(shard)
        if dead_seen and reports:
            self.failovers_total += 1  # the edit survived a replica death
        if app_error is not None:
            # The batch may have partially applied (the epoch still advances
            # on a partial batch): resync the mirror so live streams see it.
            try:
                self._epochs[doc_id] = self._read_request(doc_id, "epoch")
            except EngineError:
                self._epochs.pop(doc_id, None)
            raise app_error
        if not reports:
            self._epochs.pop(doc_id, None)  # state unknowable; streams go stale
            if death_error is not None:
                raise death_error
            raise ShardDiedError(f"every replica of document {doc_id!r} is gone")
        report = reports[0]
        if len(reports) > 1:
            if any(other.epoch != report.epoch for other in reports[1:]):
                self._events.emit(
                    "replica_divergence",
                    doc_id=repr(doc_id),
                    epochs=[r.epoch for r in reports],
                )
                raise EngineError(
                    f"replica divergence on document {doc_id!r}: edit batch produced "
                    f"epochs {[r.epoch for r in reports]!r} across replicas"
                )
            # A replica rebuilt after some cursors were opened holds only a
            # subset of them, so its per-batch cursor counters can undercount;
            # the max across replicas is the true per-batch number.
            report.cursors_resumed = max(r.cursors_resumed for r in reports)
            report.cursors_invalidated = max(r.cursors_invalidated for r in reports)
        # Accumulate the logical per-batch counts parent-side: shard-held
        # totals reset when a failover rebuilds a replica, so stats() sums
        # these monotonic counters instead of the shard-side ones.
        self.cursors_resumed_total += report.cursors_resumed
        self.cursors_invalidated_total += report.cursors_invalidated
        self._epochs[doc_id] = report.epoch
        return report

    def _doc_epoch(self, doc_id) -> int:
        self.document(doc_id)
        if self._pool is not None:
            epoch = self._epochs.get(doc_id)
            if epoch is None:  # mirror lost after a failed batch: resync
                epoch = self._read_request(doc_id, "epoch")
                self._epochs[doc_id] = epoch
            return epoch
        return self._store.document(doc_id).epoch

    def _count(self, doc_id, limit: Optional[int]) -> int:
        self.document(doc_id)
        if self._pool is not None:
            self._reap_repairs()
            return self._read_request(doc_id, "count", limit)
        return self._store.document(doc_id).count(limit=limit)

    def _runtime(self, doc_id):
        self.document(doc_id)
        if self._pool is not None:
            raise EngineError(
                f"document {doc_id!r} lives in shard worker {self._shard_of[doc_id]}; "
                "its runtime is not reachable from the parent process"
            )
        return self._store.document(doc_id).enumerator

    def _stream(self, doc_id):
        self.document(doc_id)
        self._check_open()
        if self._pool is None:
            # Zero-overhead facade: the exact per-answer iterator of the
            # runtime (Theorem 6.5 delay), StaleIteratorError on edits.
            return self._store.document(doc_id).enumerator.assignments()
        return self._stream_pushed(doc_id)

    def _stream_pushed(self, doc_id):
        """Sharded ``stream()``: chunks pushed by the worker under credit.

        The worker iterates the runtime's own per-answer iterator and pushes
        result chunks ahead of consumption (bounded by the credit window), so
        a long stream costs one round trip per credit grant instead of one
        per page.  Stale-on-edit semantics are enforced at the parent against
        the epoch mirror — every edit flows through this engine — so the
        stream raises :class:`~repro.errors.StaleIteratorError` at exactly
        the answer boundary where a single-process stream would.  The base
        epoch is captured *eagerly* (this is not a generator), matching the
        runtime iterator: an edit or removal landing between creating the
        stream and its first answer invalidates it too.

        Replicated documents stream from the least-loaded live replica; if
        that replica dies mid-stream, the stream transparently reopens on a
        survivor and skips the answers already yielded — enumeration order
        is deterministic and identical across replicas, so no in-flight
        answer is lost, duplicated or reordered by the failover.
        """
        self._reap_repairs()
        start_epoch = self._doc_epoch(doc_id)  # resyncs a lost mirror

        def check_fresh():
            if self._epochs.get(doc_id) != start_epoch:
                raise StaleIteratorError(
                    f"document {doc_id!r} was edited (or removed) while stream() "
                    "was running; restart the stream, or use page() for "
                    "edit-stable pagination"
                )

        def iterate():
            check_fresh()
            yielded = 0
            attempts = 2 * len(self._pool) + 2
            # Explicit begin/finish (not a with-block): a generator suspends
            # across yields, so the span covers the stream's whole lifetime
            # and closes in the finally whenever the consumer stops.
            span = self._tracer.begin("stream", doc_id=repr(doc_id))
            ctx = None if span is None else span.context
            try:
                while True:
                    shard = self._pick_read_replica(doc_id)
                    stream = None
                    try:
                        stream = self._pool.stream_open(
                            shard, doc_id, STREAM_PAGE_SIZE, trace_ctx=ctx
                        )
                        replay = yielded  # answers already served before this (re)open
                        skipped = 0
                        while True:
                            chunk = self._pool.stream_next_chunk(stream)
                            if chunk is None:
                                return
                            answers, exhausted = chunk
                            # Staleness is checked only before *yielding an
                            # answer* — an edit landing after the final answer
                            # ends the stream with StopIteration, like the
                            # runtime's own iterator.
                            for answer in answers:
                                if skipped < replay:
                                    skipped += 1  # failover replay: already served
                                    continue
                                check_fresh()
                                yield answer
                                yielded += 1
                            if exhausted:
                                return
                    except ShardDiedError:
                        attempts -= 1
                        if self.replicas == 1 or attempts <= 0:
                            raise
                        retry = self._tracer.begin(
                            "failover_retry", parent=ctx, dead_shard=shard
                        )
                        try:
                            self._after_death(shard)
                        finally:
                            self._tracer.finish(retry)
                        self.failovers_total += 1
                    finally:
                        if stream is not None:
                            self._pool.stream_close(stream)
            finally:
                self._tracer.finish(span)

        return iterate()

    def _page(self, doc_id, cursor, page_size: Optional[int]) -> ResultPage:
        self.document(doc_id)
        self._check_open()
        if isinstance(cursor, ResultPage):
            if cursor.document_id != doc_id:
                raise EngineError(
                    f"page cursor {cursor.cursor_id} belongs to document "
                    f"{cursor.document_id!r}, not {doc_id!r}"
                )
            cursor_id: Optional[int] = cursor.cursor_id
        else:
            cursor_id = cursor
        if cursor_id is not None and page_size is not None:
            raise EngineError(
                "page_size is fixed when a cursor is opened; "
                "continue with page(cursor=...) only"
            )
        size = self.page_size if page_size is None else page_size
        if size < 1:
            raise EngineError("page_size must be >= 1")
        if self._pool is not None:
            return self._page_sharded(doc_id, cursor_id, size)
        document = self._store.document(doc_id)
        cursor_obj, page = document.fetch_page(cursor_id, size)
        return ResultPage(
            answers=tuple(page.answers),
            offset=page.offset,
            exhausted=page.exhausted,
            cursor_id=cursor_obj.cursor_id,
            document_id=doc_id,
            epoch=document.epoch,
        )

    def _page_sharded(self, doc_id, cursor_id: Optional[int], size: int) -> ResultPage:
        """One page request, mirrored to every replica that holds the cursor.

        Cursor opens and fetches are **writes** (they advance worker-side
        cursor state), so they go to all live holders in lockstep; cursor
        behavior is deterministic, so every holder returns the same page and
        the first reply is served.  A holder dying mid-fetch costs nothing:
        the surviving holders advanced identically.
        """
        self._reap_repairs()
        pool = self._pool
        key = None if cursor_id is None else (doc_id, cursor_id)
        if cursor_id is None:
            targets = self._write_targets(doc_id)
        else:
            holders = self._cursor_holders.get(key)
            targets = []
            if holders:
                targets = [
                    shard
                    for shard in self._replicas_of[doc_id]
                    if shard in holders and pool.is_alive(shard)
                ]
            if not targets:
                # Unknown / released / orphaned cursor: one replica produces
                # the precise worker-side error (or dead-shard error).
                targets = [self._pick_read_replica(doc_id)]
        submitted, dead_seen = [], []
        death_error: Optional[BaseException] = None
        for shard in targets:
            try:
                submitted.append(
                    (shard, pool.submit(shard, "page", doc_id, cursor_id, size))
                )
            except ShardDiedError as exc:
                dead_seen.append(shard)
                death_error = exc
        payload = None
        succeeded: List[int] = []
        app_error: Optional[BaseException] = None
        for shard, request_id in submitted:
            try:
                reply = pool.collect(shard, request_id)
            except ShardDiedError as exc:
                dead_seen.append(shard)
                death_error = exc
                continue
            except BaseException as exc:  # noqa: BLE001 — deterministic app error
                if app_error is None:
                    app_error = exc
                continue
            succeeded.append(shard)
            if payload is None:
                payload = reply
        for shard in set(dead_seen):
            self._after_death(shard)
        if dead_seen and (succeeded or app_error is not None):
            self.failovers_total += 1  # the answer survived a replica death
        if payload is None:
            if app_error is not None:
                # Deterministic across replicas (invalidation, released id,
                # ...): the worker-side cursor is released everywhere.
                if key is not None:
                    self._cursor_holders.pop(key, None)
                raise app_error
            if death_error is not None:
                raise death_error
            raise ShardDiedError(f"every replica of document {doc_id!r} is gone")
        if cursor_id is None:
            self._next_cursor_ids[doc_id] = self._next_cursor_ids.get(doc_id, 0) + 1
            if not payload["exhausted"]:
                self._cursor_holders[(doc_id, payload["cursor_id"])] = set(succeeded)
        elif payload["exhausted"]:
            self._cursor_holders.pop(key, None)
        else:
            self._cursor_holders[key] = set(succeeded)
        return ResultPage(
            answers=tuple(payload["answers"]),
            offset=payload["offset"],
            exhausted=payload["exhausted"],
            cursor_id=payload["cursor_id"],
            document_id=doc_id,
            epoch=payload["epoch"],
        )

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, object]:
        """A monitoring snapshot; sharded engines merge per-shard stats.

        Sharded engines additionally report the protocol counters of the
        pipelined shard pool: ``shards`` (per shard: liveness, respawn
        ``generation``, ``replica_of`` document ids, in-flight request
        count, queued replies, open streams, message totals),
        ``queue_depth`` (total in-flight requests at snapshot time) and
        ``streaming`` (result chunks received vs round trips paid — with
        credit-based streaming the round trips stay well under one per
        chunk).  The failover machinery is observable through
        ``deaths_total`` / ``timeouts_total`` (from the pool),
        ``failovers_total`` / ``migrations_total`` / ``repairs_pending``
        (from the engine) and ``replicas``.  The
        ``cursors_resumed_across_edit_batches`` counter measures the cursor
        resume rate the ROADMAP asks for; on a sharded engine it (and
        ``cursors_invalidated``) comes from the parent-side monotonic
        accumulators — one count per logical cursor event — rather than the
        shard-held totals, which reset whenever a failover rebuilds a
        replica and double-count under replication.
        """
        self._check_open()
        if self._pool is None:
            merged = self._store.stats()
            merged["workers"] = 0
            merged["replicas"] = 1
            merged["deaths_total"] = 0
            merged["timeouts_total"] = 0
            merged["failovers_total"] = 0
            merged["migrations_total"] = 0
            merged["repairs_pending"] = 0
        else:
            self._reap_repairs()
            # Pipelined gather (all shards asked before any reply is read);
            # a dead shard reports None instead of failing the snapshot.
            per_shard = self._pool.broadcast("stats", skip_dead=True)
            merged = {}
            for shard_stats in per_shard:
                if shard_stats is None:  # dead shard: its numbers are gone
                    continue
                for key, value in shard_stats.items():
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        continue
                    if key == "compiled_queries":
                        # Every shard loads the same standing queries; summing
                        # would multiply the count by the worker count.
                        merged[key] = max(merged.get(key, 0), value)
                    else:
                        merged[key] = merged.get(key, 0) + value
            if self.replicas > 1:
                # Summing per-shard document counts would count every
                # replica; report logical documents instead.
                merged["documents"] = len(self._documents)
            # Logical cursor counters (see the docstring): the shard-side
            # sums computed above are replaced by the parent-side monotonic
            # accumulators, which survive replica rebuilds.
            merged["cursors_resumed_across_edit_batches"] = self.cursors_resumed_total
            merged["cursors_invalidated"] = self.cursors_invalidated_total
            merged["relation_backend"] = self.backend
            merged["workers"] = len(self._pool)
            merged["replicas"] = self.replicas
            merged["per_shard"] = per_shard
            shard_counters = self._pool.shard_stats()
            for index, entry in enumerate(shard_counters):
                entry["replica_of"] = [
                    doc_id
                    for doc_id, replicas in self._replicas_of.items()
                    if index in replicas
                ]
            merged["shards"] = shard_counters
            merged["queue_depth"] = sum(s["inflight_requests"] for s in shard_counters)
            merged["streams_open"] = sum(s["streams_open"] for s in shard_counters)
            merged["streaming"] = {
                "chunks": sum(s["stream_chunks"] for s in shard_counters),
                "round_trips": sum(s["stream_round_trips"] for s in shard_counters),
                "chunk_size": STREAM_PAGE_SIZE,
                # the *live* adaptive window (starts at STREAM_CREDIT)
                "credit": self._pool.credit.window,
                "credit_start": STREAM_CREDIT,
                "credit_grown": self._pool.credit.grown_total,
                "credit_shrunk": self._pool.credit.shrunk_total,
            }
            merged["deaths_total"] = self._pool.deaths_total
            merged["timeouts_total"] = self._pool.timeouts_total
            merged["failovers_total"] = self.failovers_total
            merged["migrations_total"] = self.migrations_total
            merged["repairs_pending"] = len(self._repairs)
        merged["ingest_stragglers"] = self.ingest_stragglers_total
        merged["queries_compiled"] = len(self._queries)
        merged["catalog_entries"] = len(self.catalog) if self.catalog is not None else 0
        return merged

    # -------------------------------------------------------- observability
    def metrics(self) -> Dict[str, object]:
        """Latency histograms and counters, merged across the whole engine.

        Returns ``{name: snapshot}`` where a histogram snapshot carries
        ``count`` / ``sum`` / ``p50`` / ``p95`` / ``p99`` / ``max`` plus the
        raw buckets, and a counter carries ``value``.  On a sharded engine
        every worker's registry is gathered over the protocol and merged
        bucket-wise into the parent's — all histograms share one fixed bound
        table, so the merged result is identical to single-process recording
        (the test suite pins this).  Dead shards contribute nothing.

        Catalog of metrics: ``answer_delay_seconds`` (per answer, only under
        a ``delay_budget``), ``update_apply_seconds`` (per edit trunk
        rebuild) and ``update_batch_seconds`` (per batch),
        ``ingest_build_seconds`` (per document) and ``ingest_batch_seconds``
        (per :meth:`add_documents` call), ``build_cache_hit_seconds``,
        ``protocol_round_trip_seconds``, ``stream_stall_seconds``,
        ``failover_seconds`` and ``repair_seconds``; counters
        ``delay_violations``, ``failovers_total``, ``migrations_total`` and
        (sharded) ``shard_deaths_total`` / ``shard_timeouts_total``.
        """
        self._check_open()
        registry = MetricsRegistry()
        registry.merge_wire(self._metrics.to_wire())
        if self._pool is not None:
            self._reap_repairs()
            for wire in self._pool.broadcast("metrics", skip_dead=True):
                registry.merge_wire(wire)
            registry.counters["shard_deaths_total"] = self._pool.deaths_total
            registry.counters["shard_timeouts_total"] = self._pool.timeouts_total
        registry.counters["failovers_total"] = self.failovers_total
        registry.counters["migrations_total"] = self.migrations_total
        return registry.snapshot()

    def metrics_text(self) -> str:
        """:meth:`metrics` in the Prometheus text exposition format.

        Histograms become cumulative ``repro_<name>_bucket{le=...}`` series
        plus ``_sum`` / ``_count``; counters become ``_total`` samples.
        Parseable back with :func:`repro.obs.parse_prometheus_text`.
        """
        return render_prometheus(self.metrics())

    def events(self) -> List[Dict[str, object]]:
        """The structured operational event log, oldest first.

        Plain dicts ``{"kind", "ts", ...}``: shard deaths/timeouts/protocol
        violations, slow protocol round trips, fault-plan firings and delay
        SLO violations.  Sharded engines merge the parent ring with every
        live worker's (sorted by wall-clock ``ts``); each ring retains the
        most recent :data:`repro.obs.slo.DEFAULT_EVENT_LOG_SIZE` events.
        """
        self._check_open()
        events = self._events.snapshot()
        if self._pool is not None:
            for shard_events in self._pool.broadcast("events", skip_dead=True):
                if shard_events:
                    events.extend(shard_events)
            events.sort(key=lambda event: event.get("ts", 0.0))
        return events

    def dump_trace(self, path: str) -> str:
        """Export the engine's spans as one Chrome-trace JSON file.

        Gathers every live worker's finished spans over the protocol
        (``trace_drain``), merges them with the parent's, and writes the
        combined ``traceEvents`` to ``path`` — load it in ``chrome://tracing``
        or Perfetto.  One logical call (``stream()``, ``add_documents``,
        ``apply_edits``) shows up as one trace: the parent span, the
        per-shard protocol spans parented under it, and any failover retries.
        Requires tracing (``trace=True`` or ``REPRO_TRACE``).
        """
        self._check_open()
        if not self._tracer.enabled:
            raise EngineError(
                "tracing is off; construct the engine with trace=True "
                "(or set REPRO_TRACE) to record spans"
            )
        if self._pool is not None:
            for wire in self._pool.broadcast("trace_drain", skip_dead=True):
                self._tracer.absorb(wire)
        return self._tracer.dump(path)

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        """Shut down workers and release owned resources (idempotent).

        Safe on an engine whose constructor raised during parameter
        validation (nothing was created, so there is nothing to release).
        With ``REPRO_TRACE`` set and tracing on, the engine's Chrome trace
        is dumped there (best-effort) before the workers go away.
        """
        if getattr(self, "_closed", True):
            return
        if self._tracer.enabled:
            path = trace_path_from_env()
            if path is not None:
                try:
                    self.dump_trace(path)
                except Exception:  # noqa: BLE001 — never block shutdown
                    pass
        self._closed = True
        lease = getattr(self, "_lease", None)
        if lease is not None:
            self._lease = None
            try:
                lease.release()
            except Exception:  # noqa: BLE001 — never block shutdown
                pass
        if self._pool is not None:
            self._pool.close()
        self._store = None
        self._documents.clear()
        self._replicas_of.clear()
        self._epochs.clear()
        self._cursor_holders.clear()
        self._next_cursor_ids.clear()
        self._ingest_blobs.clear()
        self._edit_logs.clear()
        self._repairs.clear()
        if self._owned_catalog_dir is not None:
            shutil.rmtree(self._owned_catalog_dir, ignore_errors=True)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover — best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        if self.workers:
            mode = f"workers={self.workers}"
            if self.replicas > 1:
                mode += f", replicas={self.replicas}"
        else:
            mode = "in-process"
        return (
            f"Engine({mode}, backend={self.backend!r}, "
            f"documents={len(self._documents)}, queries={len(self._queries)})"
        )
