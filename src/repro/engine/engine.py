"""`Engine`: the unified front door over trees, words and spanners.

One object owns the whole serving pipeline of the paper — translate
(Lemma 7.4 / Theorem 8.5) → homogenize (Lemma 2.1) → circuit + index
(Lemma 3.7 / 6.3) → duplicate-free enumeration (Theorem 6.5) → Lemma 7.3
updates — behind four nouns:

* :class:`Engine` — owns a :class:`~repro.engine.catalog.QueryCatalog`,
  backend/config defaults, and (optionally) a pool of shard worker
  processes;
* :class:`~repro.engine.query.Query` — one polymorphic compiled-query
  handle for unranked-tree TVA queries, word VAs and regex spanners,
  compiled and persisted through one content-addressed path;
* :class:`~repro.engine.document.Document` — a tree or word handle with
  ``apply_edits``, epochs, and ``stream()`` / ``page()`` enumeration;
* :class:`~repro.engine.document.ResultPage` — the one page type, backed by
  edit-stable cursors.

``Engine(workers=N)`` shards documents across ``N`` worker processes that
share the engine's catalog directory (compiled once by the parent, loaded by
every worker); edits and page fetches are routed by document id and
:meth:`Engine.stats` merges the per-shard statistics.  The worker protocol
is pipelined (request-id tagged, see :mod:`repro.engine.sharding`):
:meth:`Engine.add_documents` ships one document batch per shard with every
batch in flight at once, so per-document builds overlap across workers, and
sharded :meth:`~repro.engine.document.Document.stream` consumes result
chunks the worker pushes under a bounded credit window instead of paying one
round trip per page.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
from typing import Dict, List, Optional

from repro.engine.catalog import QueryCatalog
from repro.engine.codec import CompiledQuery
from repro.engine.document import Document, ResultPage, STREAM_PAGE_SIZE
from repro.engine.local import BatchUpdateReport, LocalStore
from repro.engine.query import Query, normalize_query_source
from repro.engine.sharding import STREAM_CREDIT, ShardPool
from repro.errors import EngineError, ServingError, ShardDiedError, StaleIteratorError
from repro.trees.unranked import UnrankedTree

__all__ = ["Engine"]


class Engine:
    """The unified enumeration engine (Theorems 8.1 + 8.5, one API).

    Parameters
    ----------
    catalog:
        ``None``, a directory path, or a :class:`QueryCatalog`.  With a
        catalog, :meth:`compile` persists every compiled query through the
        content-addressed path, so a fresh process (or a shard worker) loads
        instead of compiling.  A sharded engine *requires* a shared catalog
        directory; when none is given it creates a private temporary one
        (removed on :meth:`close`).
    backend:
        Default relation backend (``"pairs"`` / ``"matrix"`` / ``"bitset"``)
        for every document; ``None`` = the library default.
    workers:
        ``0`` (default) serves in-process; ``N >= 1`` partitions documents
        across ``N`` worker processes (round-robin by arrival, routed by
        document id afterwards).
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` = the platform default.
        The workers are safe under all of them.
    page_size:
        Default :meth:`Document.page` size.
    """

    def __init__(
        self,
        catalog=None,
        *,
        backend: Optional[str] = None,
        workers: int = 0,
        start_method: Optional[str] = None,
        page_size: int = 50,
    ):
        if backend is not None:
            from repro.enumeration.relations import validate_backend

            validate_backend(backend)
        if page_size < 1:
            raise EngineError("page_size must be >= 1")
        if workers < 0:
            raise EngineError(f"workers must be >= 0, got {workers}")
        self.backend = backend
        self.page_size = page_size
        # Everything close() touches exists before any step that can raise,
        # so a failed construction cleans up (and __del__ stays safe).
        self._closed = False
        self._pool: Optional[ShardPool] = None
        self._store: Optional[LocalStore] = None
        self._owned_catalog_dir: Optional[str] = None
        self._documents: Dict[object, Document] = {}
        self._shard_of: Dict[object, int] = {}
        #: parent-side epoch mirror: every edit flows through this engine, so
        #: the mirror is exact without a per-read round trip; sharded streams
        #: use it for the stale-on-edit check at the answer boundary
        self._epochs: Dict[object, int] = {}
        self._queries: Dict[str, Query] = {}
        #: per shard, the query digests whose source was already shipped
        self._queries_sent: Dict[int, set] = {}
        self._doc_ids = itertools.count()
        self._round_robin = itertools.count()

        if isinstance(catalog, QueryCatalog):
            self.catalog: Optional[QueryCatalog] = catalog
        elif catalog is not None:
            self.catalog = QueryCatalog(os.fspath(catalog))
        elif workers:
            # Sharding needs a directory the workers can share; own a
            # temporary one when the caller did not provide any.
            self._owned_catalog_dir = tempfile.mkdtemp(prefix="repro-engine-catalog-")
            self.catalog = QueryCatalog(self._owned_catalog_dir)
        else:
            self.catalog = None

        try:
            if workers:
                self._pool = ShardPool(
                    workers, self.catalog.root, relation_backend=backend, start_method=start_method
                )
            else:
                self._store = LocalStore(catalog=self.catalog, relation_backend=backend)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ state
    @property
    def workers(self) -> int:
        """Number of shard worker processes (0 = in-process engine)."""
        return len(self._pool) if self._pool is not None else 0

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this engine is closed")

    # ---------------------------------------------------------------- queries
    def compile(self, source, alphabet=None) -> Query:
        """Compile (and, with a catalog, persist) a query of any kind.

        ``source`` may be an :class:`~repro.automata.unranked_tva.UnrankedTVA`
        (tree query), a :class:`~repro.automata.wva.WVA` (word query), a
        :class:`~repro.spanners.Spanner`, a spanner regex string (pass
        ``alphabet=``), or an already-compiled :class:`Query` (returned
        as-is).  Equal query *content* yields one shared compiled automaton —
        in-process through the content-keyed cache, cross-process through the
        catalog digest.
        """
        self._check_open()
        if isinstance(source, Query):
            return source
        kind, query_source, pattern = normalize_query_source(source, alphabet)
        from repro.automata.serialize import query_digest

        digest = query_digest(query_source)
        known = self._queries.get(digest)
        if known is not None:
            return known
        if self.catalog is not None:
            entry = self.catalog.get(query_source)
            if digest not in self.catalog:
                # One content-addressed path for all kinds: compile once,
                # persist, and every other process (shard workers included)
                # loads instead of compiling.
                self.catalog.save(query_source, automaton=entry.automaton)
        else:
            from repro.core.enumerator import compiled_automaton_for

            entry = CompiledQuery(
                kind=kind, digest=digest, automaton=compiled_automaton_for(query_source)
            )
            entry.attach(query_source)
        query = Query(kind=kind, source=query_source, digest=digest, pattern=pattern, entry=entry)
        self._queries[digest] = query
        return query

    # -------------------------------------------------------------- documents
    def add(self, content, query, doc_id=None, alphabet=None) -> Document:
        """Add a document of either kind (dispatch on ``content``'s type).

        :class:`~repro.trees.unranked.UnrankedTree` → tree document; any
        string / sequence of letters → word document.
        """
        if isinstance(content, UnrankedTree):
            return self.add_tree(content, query, doc_id=doc_id, alphabet=alphabet)
        return self.add_word(content, query, doc_id=doc_id, alphabet=alphabet)

    def add_tree(self, tree: UnrankedTree, query, doc_id=None, alphabet=None) -> Document:
        """Serve an unranked tree under a standing tree query (Theorem 8.1)."""
        return self._add("tree", tree, query, doc_id, alphabet)

    def add_word(self, word, query, doc_id=None, alphabet=None) -> Document:
        """Serve a word under a standing word/spanner query (Theorem 8.5)."""
        return self._add("word", list(word), query, doc_id, alphabet)

    def _add(self, kind: str, content, query, doc_id, alphabet) -> Document:
        # Single adds ride the batch path (a batch of one), so there is
        # exactly one ingest protocol to keep correct.
        doc_ids = None if doc_id is None else [doc_id]
        return self.add_documents(
            [content], query, doc_ids=doc_ids, alphabet=alphabet, _kind=kind
        )[0]

    def add_documents(
        self,
        contents,
        query=None,
        *,
        queries=None,
        doc_ids=None,
        alphabet=None,
        _kind=None,
    ) -> List[Document]:
        """Add many documents at once — the pipelined ingest path.

        ``contents`` is a sequence of documents (each an
        :class:`~repro.trees.unranked.UnrankedTree` or a word); ``query`` is
        the standing query they share, or ``queries`` gives one per document.
        ``doc_ids`` optionally fixes ids (``None`` entries auto-assign).

        On a sharded engine the documents are grouped per shard (round-robin
        by arrival, same placement a loop of :meth:`add` would produce) and
        shipped as **one pickled batch per worker, all batches in flight
        before any reply is collected** — so the per-document builds, the
        dominant serving cost, overlap across the worker processes instead of
        paying one synchronous round trip each.  A single-process engine adds
        the documents in order through the same entry point, so the facade is
        uniform.

        If an item fails inside a live worker, the documents the batch had
        already added stay registered and the item's original exception is
        re-raised.  If a worker process dies mid-batch, a precise
        :class:`~repro.errors.ShardDiedError` names the document ids that
        were in flight on it; surviving shards keep their documents.
        """
        self._check_open()
        contents = list(contents)
        if queries is not None:
            queries = list(queries)
            if len(queries) != len(contents):
                raise EngineError(
                    f"queries ({len(queries)}) and contents ({len(contents)}) differ in length"
                )
        if doc_ids is not None:
            doc_ids = list(doc_ids)
            if len(doc_ids) != len(contents):
                raise EngineError(
                    f"doc_ids ({len(doc_ids)}) and contents ({len(contents)}) differ in length"
                )
        items = []  # (doc_id, kind, wire_content, compiled)
        claimed = set()
        for index, content in enumerate(contents):
            item_query = queries[index] if queries is not None else query
            if item_query is None:
                raise EngineError(
                    "add_documents needs a query: pass query= (shared) or queries= (per item)"
                )
            compiled = self.compile(item_query, alphabet=alphabet)
            if isinstance(content, UnrankedTree):
                kind = "tree"
            else:
                kind = "word"
                content = list(content)
            if _kind is not None and kind != _kind:
                kind = _kind  # add_tree/add_word said so; the check below reports
            if compiled.kind != kind:
                raise EngineError(
                    f"cannot serve a {kind} document under a {compiled.kind} query "
                    f"(digest {compiled.digest[:12]}...)"
                )
            doc_id = doc_ids[index] if doc_ids is not None else None
            if doc_id is None:
                doc_id = next(self._doc_ids)
                while doc_id in self._documents or doc_id in claimed:
                    doc_id = next(self._doc_ids)
            elif doc_id in self._documents or doc_id in claimed:
                raise ServingError(f"document id {doc_id!r} already in use")
            claimed.add(doc_id)
            items.append((doc_id, kind, content, compiled))

        if self._pool is None:
            # The same batch entry point a shard worker's store exposes, so
            # local and sharded engines share one ingest facade end to end.
            self._store.add_documents(
                [content for _doc_id, _kind, content, _compiled in items],
                queries=[compiled.source for _doc_id, _kind, _content, compiled in items],
                doc_ids=[doc_id for doc_id, _kind, _content, _compiled in items],
            )
            return [
                self._register(doc_id, kind, compiled)
                for doc_id, kind, _content, compiled in items
            ]
        return self._add_documents_sharded(items)

    def _register(self, doc_id, kind: str, compiled: Query) -> Document:
        document = Document(self, doc_id, kind, compiled)
        self._documents[doc_id] = document
        self._epochs[doc_id] = 0
        return document

    def _pick_shard(self) -> int:
        """Round-robin placement over the shards still observed alive."""
        for _ in range(len(self._pool)):
            shard = next(self._round_robin) % len(self._pool)
            if self._pool.is_alive(shard):
                return shard
        raise EngineError(
            "every shard worker of this engine is dead; close the engine"
        )

    def _add_documents_sharded(self, items) -> List[Document]:
        # Group per shard; ship each query's source to a shard once (later
        # adds of the same content carry only the digest).
        batches: Dict[int, List] = {}
        batch_meta: Dict[int, List] = {}
        for doc_id, kind, content, compiled in items:
            shard = self._pick_shard()
            sent = self._queries_sent.setdefault(shard, set())
            source = None if compiled.digest in sent else compiled.source
            sent.add(compiled.digest)
            batches.setdefault(shard, []).append(
                (doc_id, kind, content, source, compiled.digest)
            )
            batch_meta.setdefault(shard, []).append((doc_id, kind, compiled))
        # Issue every batch before collecting any reply: builds overlap
        # across the worker processes.
        request_ids: Dict[int, int] = {}
        died: List[tuple] = []  # (shard, doc_ids, error)
        item_failure = None  # (shard, doc_id, original exception)
        for shard, batch in batches.items():
            try:
                request_ids[shard] = self._pool.submit(shard, "add_batch", batch)
            except ShardDiedError as exc:
                died.append((shard, [entry[0] for entry in batch], exc))
        registered: Dict[object, Document] = {}
        for shard, request_id in request_ids.items():
            try:
                payload = self._pool.collect(shard, request_id)
            except ShardDiedError as exc:
                died.append((shard, [entry[0] for entry in batches[shard]], exc))
                continue
            for _summary, (doc_id, kind, compiled) in zip(payload["added"], batch_meta[shard]):
                self._shard_of[doc_id] = shard
                registered[doc_id] = self._register(doc_id, kind, compiled)
            if payload["error"] is not None and item_failure is None:
                item_failure = (shard, payload["failed_doc_id"], payload["error"])
        # handles come back in the caller's order, not in shard order
        documents = [
            registered[doc_id] for doc_id, _kind, _content, _compiled in items
            if doc_id in registered
        ]
        if died:
            detail = "; ".join(
                f"shard {shard} died with document ids {doc_ids!r} in flight"
                for shard, doc_ids, _exc in died
            )
            raise ShardDiedError(f"batch ingest failed: {detail}") from died[0][2]
        if item_failure is not None:
            _shard, _doc_id, error = item_failure
            raise error
        return documents

    def document(self, doc_id) -> Document:
        """The handle of a served document."""
        try:
            return self._documents[doc_id]
        except KeyError:
            raise ServingError(f"no document with id {doc_id!r}") from None

    def remove(self, doc_id) -> None:
        """Drop a document (its cursors are closed)."""
        self.document(doc_id)  # raises on unknown ids
        self._check_open()
        if self._pool is not None:
            self._pool.request(self._shard_of[doc_id], "remove", doc_id)
            del self._shard_of[doc_id]
        else:
            self._store.remove(doc_id)
        del self._documents[doc_id]
        self._epochs.pop(doc_id, None)

    def doc_ids(self) -> List[object]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id) -> bool:
        return doc_id in self._documents

    # ---------------------------------------------------------------- traffic
    def apply_edits(self, doc_id, edits) -> BatchUpdateReport:
        """Apply one edit batch to a document (one epoch step), routed by id."""
        self.document(doc_id)
        self._check_open()
        if self._pool is None:
            return self._store.document(doc_id).apply_edits(edits)
        shard = self._shard_of[doc_id]
        try:
            report = self._pool.request(shard, "edits", doc_id, list(edits))
        except ShardDiedError:
            self._epochs.pop(doc_id, None)  # state unknowable; streams go stale
            raise
        except BaseException:
            # The batch may have partially applied (the epoch still advances
            # on a partial batch): resync the mirror so live streams see it.
            try:
                self._epochs[doc_id] = self._pool.request(shard, "epoch", doc_id)
            except EngineError:
                self._epochs.pop(doc_id, None)
            raise
        self._epochs[doc_id] = report.epoch
        return report

    def _doc_epoch(self, doc_id) -> int:
        self.document(doc_id)
        if self._pool is not None:
            epoch = self._epochs.get(doc_id)
            if epoch is None:  # mirror lost after a failed batch: resync
                epoch = self._pool.request(self._shard_of[doc_id], "epoch", doc_id)
                self._epochs[doc_id] = epoch
            return epoch
        return self._store.document(doc_id).epoch

    def _count(self, doc_id, limit: Optional[int]) -> int:
        self.document(doc_id)
        if self._pool is not None:
            return self._pool.request(self._shard_of[doc_id], "count", doc_id, limit)
        return self._store.document(doc_id).count(limit=limit)

    def _runtime(self, doc_id):
        self.document(doc_id)
        if self._pool is not None:
            raise EngineError(
                f"document {doc_id!r} lives in shard worker {self._shard_of[doc_id]}; "
                "its runtime is not reachable from the parent process"
            )
        return self._store.document(doc_id).enumerator

    def _stream(self, doc_id):
        self.document(doc_id)
        self._check_open()
        if self._pool is None:
            # Zero-overhead facade: the exact per-answer iterator of the
            # runtime (Theorem 6.5 delay), StaleIteratorError on edits.
            return self._store.document(doc_id).enumerator.assignments()
        return self._stream_pushed(doc_id)

    def _stream_pushed(self, doc_id):
        """Sharded ``stream()``: chunks pushed by the worker under credit.

        The worker iterates the runtime's own per-answer iterator and pushes
        result chunks ahead of consumption (bounded by the credit window), so
        a long stream costs one round trip per credit grant instead of one
        per page.  Stale-on-edit semantics are enforced at the parent against
        the epoch mirror — every edit flows through this engine — so the
        stream raises :class:`~repro.errors.StaleIteratorError` at exactly
        the answer boundary where a single-process stream would.  The base
        epoch is captured *eagerly* (this is not a generator), matching the
        runtime iterator: an edit or removal landing between creating the
        stream and its first answer invalidates it too.
        """
        start_epoch = self._doc_epoch(doc_id)  # resyncs a lost mirror
        shard = self._shard_of[doc_id]

        def check_fresh():
            if self._epochs.get(doc_id) != start_epoch:
                raise StaleIteratorError(
                    f"document {doc_id!r} was edited (or removed) while stream() "
                    "was running; restart the stream, or use page() for "
                    "edit-stable pagination"
                )

        def iterate():
            check_fresh()
            stream = self._pool.stream_open(shard, doc_id, STREAM_PAGE_SIZE)
            try:
                while True:
                    chunk = self._pool.stream_next_chunk(stream)
                    if chunk is None:
                        return
                    answers, exhausted = chunk
                    # Staleness is checked only before *yielding an answer* —
                    # an edit landing after the final answer ends the stream
                    # with StopIteration, like the runtime's own iterator.
                    for answer in answers:
                        check_fresh()
                        yield answer
                    if exhausted:
                        return
            finally:
                self._pool.stream_close(stream)

        return iterate()

    def _page(self, doc_id, cursor, page_size: Optional[int]) -> ResultPage:
        self.document(doc_id)
        self._check_open()
        if isinstance(cursor, ResultPage):
            if cursor.document_id != doc_id:
                raise EngineError(
                    f"page cursor {cursor.cursor_id} belongs to document "
                    f"{cursor.document_id!r}, not {doc_id!r}"
                )
            cursor_id: Optional[int] = cursor.cursor_id
        else:
            cursor_id = cursor
        if cursor_id is not None and page_size is not None:
            raise EngineError(
                "page_size is fixed when a cursor is opened; "
                "continue with page(cursor=...) only"
            )
        size = self.page_size if page_size is None else page_size
        if size < 1:
            raise EngineError("page_size must be >= 1")
        if self._pool is not None:
            payload = self._pool.request(
                self._shard_of[doc_id], "page", doc_id, cursor_id, size
            )
            return ResultPage(
                answers=tuple(payload["answers"]),
                offset=payload["offset"],
                exhausted=payload["exhausted"],
                cursor_id=payload["cursor_id"],
                document_id=doc_id,
                epoch=payload["epoch"],
            )
        document = self._store.document(doc_id)
        cursor_obj, page = document.fetch_page(cursor_id, size)
        return ResultPage(
            answers=tuple(page.answers),
            offset=page.offset,
            exhausted=page.exhausted,
            cursor_id=cursor_obj.cursor_id,
            document_id=doc_id,
            epoch=document.epoch,
        )

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, object]:
        """A monitoring snapshot; sharded engines merge per-shard stats.

        Sharded engines additionally report the protocol counters of the
        pipelined shard pool: ``shards`` (per shard: liveness, in-flight
        request count, queued replies, open streams, message totals),
        ``queue_depth`` (total in-flight requests at snapshot time) and
        ``streaming`` (result chunks received vs round trips paid — with
        credit-based streaming the round trips stay well under one per
        chunk).  The ``cursors_resumed_across_edit_batches`` counter (from
        the per-shard stores) measures the cursor resume rate the ROADMAP
        asks for.
        """
        self._check_open()
        if self._pool is None:
            merged = self._store.stats()
            merged["workers"] = 0
        else:
            # Pipelined gather (all shards asked before any reply is read);
            # a dead shard reports None instead of failing the snapshot.
            per_shard = self._pool.broadcast("stats", skip_dead=True)
            merged = {}
            for shard_stats in per_shard:
                if shard_stats is None:  # dead shard: its numbers are gone
                    continue
                for key, value in shard_stats.items():
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        continue
                    if key == "compiled_queries":
                        # Every shard loads the same standing queries; summing
                        # would multiply the count by the worker count.
                        merged[key] = max(merged.get(key, 0), value)
                    else:
                        merged[key] = merged.get(key, 0) + value
            merged["relation_backend"] = self.backend
            merged["workers"] = len(self._pool)
            merged["per_shard"] = per_shard
            shard_counters = self._pool.shard_stats()
            merged["shards"] = shard_counters
            merged["queue_depth"] = sum(s["inflight_requests"] for s in shard_counters)
            merged["streams_open"] = sum(s["streams_open"] for s in shard_counters)
            merged["streaming"] = {
                "chunks": sum(s["stream_chunks"] for s in shard_counters),
                "round_trips": sum(s["stream_round_trips"] for s in shard_counters),
                "chunk_size": STREAM_PAGE_SIZE,
                "credit": STREAM_CREDIT,
            }
        merged["queries_compiled"] = len(self._queries)
        merged["catalog_entries"] = len(self.catalog) if self.catalog is not None else 0
        return merged

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        """Shut down workers and release owned resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        self._store = None
        self._documents.clear()
        self._shard_of.clear()
        self._epochs.clear()
        if self._owned_catalog_dir is not None:
            shutil.rmtree(self._owned_catalog_dir, ignore_errors=True)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover — best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        mode = f"workers={self.workers}" if self.workers else "in-process"
        return (
            f"Engine({mode}, backend={self.backend!r}, "
            f"documents={len(self._documents)}, queries={len(self._queries)})"
        )
