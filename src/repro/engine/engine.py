"""`Engine`: the unified front door over trees, words and spanners.

One object owns the whole serving pipeline of the paper — translate
(Lemma 7.4 / Theorem 8.5) → homogenize (Lemma 2.1) → circuit + index
(Lemma 3.7 / 6.3) → duplicate-free enumeration (Theorem 6.5) → Lemma 7.3
updates — behind four nouns:

* :class:`Engine` — owns a :class:`~repro.engine.catalog.QueryCatalog`,
  backend/config defaults, and (optionally) a pool of shard worker
  processes;
* :class:`~repro.engine.query.Query` — one polymorphic compiled-query
  handle for unranked-tree TVA queries, word VAs and regex spanners,
  compiled and persisted through one content-addressed path;
* :class:`~repro.engine.document.Document` — a tree or word handle with
  ``apply_edits``, epochs, and ``stream()`` / ``page()`` enumeration;
* :class:`~repro.engine.document.ResultPage` — the one page type, backed by
  edit-stable cursors.

``Engine(workers=N)`` shards documents across ``N`` worker processes that
share the engine's catalog directory (compiled once by the parent, loaded by
every worker); edits and page fetches are routed by document id and
:meth:`Engine.stats` merges the per-shard statistics.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
from typing import Dict, List, Optional

from repro.engine.catalog import QueryCatalog
from repro.engine.codec import CompiledQuery
from repro.engine.document import Document, ResultPage, STREAM_PAGE_SIZE
from repro.engine.local import BatchUpdateReport, LocalStore
from repro.engine.query import Query, normalize_query_source
from repro.engine.sharding import ShardPool
from repro.errors import EngineError, ServingError
from repro.trees.unranked import UnrankedTree

__all__ = ["Engine"]


class Engine:
    """The unified enumeration engine (Theorems 8.1 + 8.5, one API).

    Parameters
    ----------
    catalog:
        ``None``, a directory path, or a :class:`QueryCatalog`.  With a
        catalog, :meth:`compile` persists every compiled query through the
        content-addressed path, so a fresh process (or a shard worker) loads
        instead of compiling.  A sharded engine *requires* a shared catalog
        directory; when none is given it creates a private temporary one
        (removed on :meth:`close`).
    backend:
        Default relation backend (``"pairs"`` / ``"matrix"`` / ``"bitset"``)
        for every document; ``None`` = the library default.
    workers:
        ``0`` (default) serves in-process; ``N >= 1`` partitions documents
        across ``N`` worker processes (round-robin by arrival, routed by
        document id afterwards).
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` = the platform default.
        The workers are safe under all of them.
    page_size:
        Default :meth:`Document.page` size.
    """

    def __init__(
        self,
        catalog=None,
        *,
        backend: Optional[str] = None,
        workers: int = 0,
        start_method: Optional[str] = None,
        page_size: int = 50,
    ):
        if backend is not None:
            from repro.enumeration.relations import validate_backend

            validate_backend(backend)
        if page_size < 1:
            raise EngineError("page_size must be >= 1")
        if workers < 0:
            raise EngineError(f"workers must be >= 0, got {workers}")
        self.backend = backend
        self.page_size = page_size
        # Everything close() touches exists before any step that can raise,
        # so a failed construction cleans up (and __del__ stays safe).
        self._closed = False
        self._pool: Optional[ShardPool] = None
        self._store: Optional[LocalStore] = None
        self._owned_catalog_dir: Optional[str] = None
        self._documents: Dict[object, Document] = {}
        self._shard_of: Dict[object, int] = {}
        self._queries: Dict[str, Query] = {}
        #: per shard, the query digests whose source was already shipped
        self._queries_sent: Dict[int, set] = {}
        self._doc_ids = itertools.count()
        self._round_robin = itertools.count()

        if isinstance(catalog, QueryCatalog):
            self.catalog: Optional[QueryCatalog] = catalog
        elif catalog is not None:
            self.catalog = QueryCatalog(os.fspath(catalog))
        elif workers:
            # Sharding needs a directory the workers can share; own a
            # temporary one when the caller did not provide any.
            self._owned_catalog_dir = tempfile.mkdtemp(prefix="repro-engine-catalog-")
            self.catalog = QueryCatalog(self._owned_catalog_dir)
        else:
            self.catalog = None

        try:
            if workers:
                self._pool = ShardPool(
                    workers, self.catalog.root, relation_backend=backend, start_method=start_method
                )
            else:
                self._store = LocalStore(catalog=self.catalog, relation_backend=backend)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ state
    @property
    def workers(self) -> int:
        """Number of shard worker processes (0 = in-process engine)."""
        return len(self._pool) if self._pool is not None else 0

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this engine is closed")

    # ---------------------------------------------------------------- queries
    def compile(self, source, alphabet=None) -> Query:
        """Compile (and, with a catalog, persist) a query of any kind.

        ``source`` may be an :class:`~repro.automata.unranked_tva.UnrankedTVA`
        (tree query), a :class:`~repro.automata.wva.WVA` (word query), a
        :class:`~repro.spanners.Spanner`, a spanner regex string (pass
        ``alphabet=``), or an already-compiled :class:`Query` (returned
        as-is).  Equal query *content* yields one shared compiled automaton —
        in-process through the content-keyed cache, cross-process through the
        catalog digest.
        """
        self._check_open()
        if isinstance(source, Query):
            return source
        kind, query_source, pattern = normalize_query_source(source, alphabet)
        from repro.automata.serialize import query_digest

        digest = query_digest(query_source)
        known = self._queries.get(digest)
        if known is not None:
            return known
        if self.catalog is not None:
            entry = self.catalog.get(query_source)
            if digest not in self.catalog:
                # One content-addressed path for all kinds: compile once,
                # persist, and every other process (shard workers included)
                # loads instead of compiling.
                self.catalog.save(query_source, automaton=entry.automaton)
        else:
            from repro.core.enumerator import compiled_automaton_for

            entry = CompiledQuery(
                kind=kind, digest=digest, automaton=compiled_automaton_for(query_source)
            )
            entry.attach(query_source)
        query = Query(kind=kind, source=query_source, digest=digest, pattern=pattern, entry=entry)
        self._queries[digest] = query
        return query

    # -------------------------------------------------------------- documents
    def add(self, content, query, doc_id=None, alphabet=None) -> Document:
        """Add a document of either kind (dispatch on ``content``'s type).

        :class:`~repro.trees.unranked.UnrankedTree` → tree document; any
        string / sequence of letters → word document.
        """
        if isinstance(content, UnrankedTree):
            return self.add_tree(content, query, doc_id=doc_id, alphabet=alphabet)
        return self.add_word(content, query, doc_id=doc_id, alphabet=alphabet)

    def add_tree(self, tree: UnrankedTree, query, doc_id=None, alphabet=None) -> Document:
        """Serve an unranked tree under a standing tree query (Theorem 8.1)."""
        return self._add("tree", tree, query, doc_id, alphabet)

    def add_word(self, word, query, doc_id=None, alphabet=None) -> Document:
        """Serve a word under a standing word/spanner query (Theorem 8.5)."""
        return self._add("word", list(word), query, doc_id, alphabet)

    def _add(self, kind: str, content, query, doc_id, alphabet) -> Document:
        self._check_open()
        compiled = self.compile(query, alphabet=alphabet)
        if compiled.kind != kind:
            raise EngineError(
                f"cannot serve a {kind} document under a {compiled.kind} query "
                f"(digest {compiled.digest[:12]}...)"
            )
        if doc_id is None:
            doc_id = next(self._doc_ids)
            while doc_id in self._documents:
                doc_id = next(self._doc_ids)
        elif doc_id in self._documents:
            raise ServingError(f"document id {doc_id!r} already in use")
        if self._pool is not None:
            shard = next(self._round_robin) % len(self._pool)
            sent = self._queries_sent.setdefault(shard, set())
            source = None if compiled.digest in sent else compiled.source
            self._pool.request(shard, "add", doc_id, kind, content, source, compiled.digest)
            sent.add(compiled.digest)
            self._shard_of[doc_id] = shard
        elif kind == "tree":
            self._store.add_tree(content, compiled.source, doc_id=doc_id)
        else:
            self._store.add_word(content, compiled.source, doc_id=doc_id)
        document = Document(self, doc_id, kind, compiled)
        self._documents[doc_id] = document
        return document

    def document(self, doc_id) -> Document:
        """The handle of a served document."""
        try:
            return self._documents[doc_id]
        except KeyError:
            raise ServingError(f"no document with id {doc_id!r}") from None

    def remove(self, doc_id) -> None:
        """Drop a document (its cursors are closed)."""
        self.document(doc_id)  # raises on unknown ids
        self._check_open()
        if self._pool is not None:
            self._pool.request(self._shard_of[doc_id], "remove", doc_id)
            del self._shard_of[doc_id]
        else:
            self._store.remove(doc_id)
        del self._documents[doc_id]

    def doc_ids(self) -> List[object]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id) -> bool:
        return doc_id in self._documents

    # ---------------------------------------------------------------- traffic
    def apply_edits(self, doc_id, edits) -> BatchUpdateReport:
        """Apply one edit batch to a document (one epoch step), routed by id."""
        self.document(doc_id)
        self._check_open()
        if self._pool is not None:
            return self._pool.request(self._shard_of[doc_id], "edits", doc_id, list(edits))
        return self._store.document(doc_id).apply_edits(edits)

    def _doc_epoch(self, doc_id) -> int:
        self.document(doc_id)
        if self._pool is not None:
            return self._pool.request(self._shard_of[doc_id], "epoch", doc_id)
        return self._store.document(doc_id).epoch

    def _count(self, doc_id, limit: Optional[int]) -> int:
        self.document(doc_id)
        if self._pool is not None:
            return self._pool.request(self._shard_of[doc_id], "count", doc_id, limit)
        return self._store.document(doc_id).count(limit=limit)

    def _runtime(self, doc_id):
        self.document(doc_id)
        if self._pool is not None:
            raise EngineError(
                f"document {doc_id!r} lives in shard worker {self._shard_of[doc_id]}; "
                "its runtime is not reachable from the parent process"
            )
        return self._store.document(doc_id).enumerator

    def _stream(self, doc_id):
        self.document(doc_id)
        self._check_open()
        if self._pool is None:
            # Zero-overhead facade: the exact per-answer iterator of the
            # runtime (Theorem 6.5 delay), StaleIteratorError on edits.
            return self._store.document(doc_id).enumerator.assignments()
        return self._stream_paged(doc_id)

    def _stream_paged(self, doc_id):
        page = self._page(doc_id, None, STREAM_PAGE_SIZE)
        while True:
            yield from page.answers
            if page.exhausted:
                return
            page = self._page(doc_id, page, None)

    def _page(self, doc_id, cursor, page_size: Optional[int]) -> ResultPage:
        self.document(doc_id)
        self._check_open()
        if isinstance(cursor, ResultPage):
            if cursor.document_id != doc_id:
                raise EngineError(
                    f"page cursor {cursor.cursor_id} belongs to document "
                    f"{cursor.document_id!r}, not {doc_id!r}"
                )
            cursor_id: Optional[int] = cursor.cursor_id
        else:
            cursor_id = cursor
        if cursor_id is not None and page_size is not None:
            raise EngineError(
                "page_size is fixed when a cursor is opened; "
                "continue with page(cursor=...) only"
            )
        size = self.page_size if page_size is None else page_size
        if size < 1:
            raise EngineError("page_size must be >= 1")
        if self._pool is not None:
            payload = self._pool.request(
                self._shard_of[doc_id], "page", doc_id, cursor_id, size
            )
            return ResultPage(
                answers=tuple(payload["answers"]),
                offset=payload["offset"],
                exhausted=payload["exhausted"],
                cursor_id=payload["cursor_id"],
                document_id=doc_id,
                epoch=payload["epoch"],
            )
        document = self._store.document(doc_id)
        cursor_obj, page = document.fetch_page(cursor_id, size)
        return ResultPage(
            answers=tuple(page.answers),
            offset=page.offset,
            exhausted=page.exhausted,
            cursor_id=cursor_obj.cursor_id,
            document_id=doc_id,
            epoch=document.epoch,
        )

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, object]:
        """A monitoring snapshot; sharded engines merge per-shard stats."""
        self._check_open()
        if self._pool is None:
            merged = self._store.stats()
            merged["workers"] = 0
        else:
            per_shard = self._pool.broadcast("stats")
            merged = {}
            for shard_stats in per_shard:
                for key, value in shard_stats.items():
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        continue
                    if key == "compiled_queries":
                        # Every shard loads the same standing queries; summing
                        # would multiply the count by the worker count.
                        merged[key] = max(merged.get(key, 0), value)
                    else:
                        merged[key] = merged.get(key, 0) + value
            merged["relation_backend"] = self.backend
            merged["workers"] = len(self._pool)
            merged["per_shard"] = per_shard
        merged["queries_compiled"] = len(self._queries)
        merged["catalog_entries"] = len(self.catalog) if self.catalog is not None else 0
        return merged

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        """Shut down workers and release owned resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        self._store = None
        self._documents.clear()
        self._shard_of.clear()
        if self._owned_catalog_dir is not None:
            shutil.rmtree(self._owned_catalog_dir, ignore_errors=True)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover — best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        mode = f"workers={self.workers}" if self.workers else "in-process"
        return (
            f"Engine({mode}, backend={self.backend!r}, "
            f"documents={len(self._documents)}, queries={len(self._queries)})"
        )
