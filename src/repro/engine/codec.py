"""On-disk format of persisted compiled queries.

A *compiled query* is everything the preprocessing of Theorem 8.1 computes
that depends only on the query, not on any document:

* the binary TVA of Lemma 7.4 (tree queries) or Theorem 8.5 (word queries),
  homogenized per Lemma 2.1 — serialized canonically by
  :mod:`repro.automata.serialize`;
* the memoized box plans of the circuit construction (Lemma 3.7) the
  compiling process accumulated — exported by
  :func:`repro.circuits.build.export_box_plans`.

A fresh process that loads such a file skips translation, homogenization and
plan compilation entirely; building an enumeration structure for a document
then consists of gate instantiation plus index entries only (the per-document
half of Lemma 7.3's preprocessing).

The file is a single JSON document::

    {
      "format": 1,
      "kind": "tree" | "word",
      "digest": "<sha256 of the canonical source-query payload>",
      "query": {...},        # canonical source-query payload (audit/repair)
      "automaton": {...},    # canonical homogenized BinaryTVA payload
      "plans": {...},        # exported box plans (cache warm-up; optional)
      "meta": {...}          # sizes, library version, save timestamp
    }

The ``automaton`` and ``query`` sections are canonical (stable bytes for
stable content across processes and machines).  The ``plans`` section is a
cache snapshot: it reflects which (label, signature) pairs the compiling
process had seen, so its *presence* varies with compile history — loading a
file with fewer plans than ideal is only a warm-up difference, never a
correctness one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro import __version__
from repro.automata.binary_tva import BinaryTVA
from repro.automata.serialize import (
    binary_tva_from_payload,
    binary_tva_to_payload,
    query_digest,
    query_payload,
)
from repro.circuits.build import export_box_plans, install_box_plans
from repro.errors import CatalogError, CatalogVersionError

__all__ = ["FORMAT_VERSION", "CompiledQuery", "compiled_query_to_json", "compiled_query_from_json"]

FORMAT_VERSION = 1


@dataclass
class CompiledQuery:
    """A compiled query: the homogenized binary automaton plus provenance.

    ``automaton`` carries its box-plan cache (installed from the persisted
    snapshot on load); ``kind`` is ``"tree"`` or ``"word"``; ``digest`` keys
    the entry by source-query *content*.  ``load_seconds`` is filled by
    :class:`repro.engine.catalog.QueryCatalog` so callers (and the serving
    benchmark) can compare load time against compile time.
    """

    kind: str
    digest: str
    automaton: BinaryTVA
    plans_installed: int = 0
    load_seconds: Optional[float] = None
    from_disk: bool = False

    def attach(self, query) -> "CompiledQuery":
        """Make ``query`` use this compiled automaton in this process.

        After this, ``TreeEnumerator(tree, query)`` /
        ``WordEnumerator(word, query)`` skip compilation for any query of
        equal content.
        """
        from repro.core.enumerator import seed_compiled_query

        seed_compiled_query(query, self.automaton)
        return self


def compiled_query_to_json(query, automaton: BinaryTVA, kind: str, extra_meta: Optional[Dict] = None) -> str:
    """Render a compiled query as the JSON file format described above."""
    payload = {
        "format": FORMAT_VERSION,
        "kind": kind,
        "digest": query_digest(query),
        "query": query_payload(query),
        "automaton": binary_tva_to_payload(automaton),
        "plans": export_box_plans(automaton),
        "meta": {
            "library_version": __version__,
            "automaton_states": len(automaton.states),
            "automaton_size": automaton.size(),
            **(extra_meta or {}),
        },
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def compiled_query_from_json(text: str, expected_digest: Optional[str] = None) -> CompiledQuery:
    """Parse a compiled-query file back into a :class:`CompiledQuery`.

    Raises :class:`~repro.errors.CatalogError` on unknown format versions and
    on digest mismatches (a mismatch means the file was renamed or the
    canonicalization changed — silently serving the wrong standing query is
    the one failure mode a catalog must never have).
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise CatalogError(f"corrupt compiled-query file: {exc}") from exc
    if payload.get("format") != FORMAT_VERSION:
        raise CatalogVersionError(
            f"unsupported compiled-query format {payload.get('format')!r} "
            f"(this library reads format {FORMAT_VERSION})"
        )
    digest = payload.get("digest")
    if expected_digest is not None and digest != expected_digest:
        raise CatalogError(
            f"compiled-query digest mismatch: file says {digest!r}, "
            f"expected {expected_digest!r}"
        )
    automaton = binary_tva_from_payload(payload["automaton"])
    installed = install_box_plans(automaton, payload.get("plans", {}))
    return CompiledQuery(
        kind=payload["kind"],
        digest=digest,
        automaton=automaton,
        plans_installed=installed,
        from_disk=True,
    )
