"""Deterministic fault injection for the shard worker protocol.

The replicated engine (``Engine(workers=N, replicas=R)``) promises that a
single shard death or hang loses no documents and no in-flight answers.  The
only honest way to test that promise is to *make* workers crash and hang at
precisely-chosen protocol points and check the transcript against the
single-process oracle — which is what this module enables.

A :class:`FaultPlan` is a picklable list of :class:`FaultRule` objects shipped
to every shard worker at spawn time (``Engine(fault_plan=...)`` or the
``REPRO_FAULTS`` environment variable).  Inside the worker, the request loop
asks the plan before and after handling each request; a matching rule fires
one of four actions:

``crash``
    handle the request normally, then ``os._exit(1)`` *before* sending the
    reply — the parent sees a broken pipe with the request still in flight,
    the worst-case crash window for replication (the write may or may not
    have landed on this replica).
``hang``
    sleep (default: ten minutes) *before* handling — the parent's deadline
    machinery must kill the worker and fail over.
``slow``
    sleep ``param`` seconds before replying — exercises deadline margins
    without killing anyone.
``garbage``
    send a malformed reply tuple instead of the real one — exercises the
    parent's protocol validation (:class:`repro.errors.ShardProtocolError`).

Rules are matched on ``(shard, op, nth)`` where ``nth`` counts matching
requests *per rule* starting at 0, so a plan is deterministic for a
deterministic workload.  The textual spec format (one rule per
``;``-separated clause)::

    shard:op:nth:action[:param]

with ``*`` as a wildcard for ``shard``, ``op`` or ``nth``.  Examples::

    1:edits:0:crash          # shard 1 crashes before replying to its 1st edits request
    *:page:2:hang            # every shard hangs on its 3rd page request
    0:add_batch:*:slow:0.05  # shard 0 delays every ingest reply by 50 ms
    2:stream_chunk:1:garbage # shard 2 garbles its 2nd pushed stream chunk

The pseudo-op ``stream_chunk`` names the push-streaming send path (there is
no request message for pushed chunks, but they are protocol sends and can be
garbled or crashed on like any reply).
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Sequence, Tuple

from repro.errors import EngineError

__all__ = [
    "FaultRule",
    "FaultPlan",
    "parse_fault_spec",
    "plan_from_env",
    "FAULTS_ENV_VAR",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("crash", "hang", "slow", "garbage")

#: How long a "hang" sleeps.  Long enough that any un-deadlined wait in the
#: parent shows up as a hung test (pytest-timeout kills it loudly), short
#: enough that a leaked worker cannot outlive a CI job by much.
HANG_SECONDS = 600.0

#: The malformed reply sent by the ``garbage`` action.  Deliberately a tuple
#: with an unknown status tag — the shape `_recv_one` historically mis-filed
#: into ``pending`` instead of rejecting.
GARBAGE_REPLY = ("garbage", "not-a-request-id", {"junk": True})


class FaultRule:
    """One match-and-fire rule: ``(shard, op, nth) -> action(param)``.

    ``shard``/``op``/``nth`` may each be ``None`` meaning "any".  ``nth``
    counts matching requests seen by *this rule* (0-based), so two rules for
    the same op keep independent counters.  ``one_shot`` rules (any rule with
    a concrete ``nth``) disarm after firing.
    """

    __slots__ = ("shard", "op", "nth", "action", "param", "_seen", "_fired")

    def __init__(
        self,
        shard: Optional[int],
        op: Optional[str],
        nth: Optional[int],
        action: str,
        param: Optional[float] = None,
    ):
        if action not in _ACTIONS:
            raise EngineError(
                f"unknown fault action {action!r} (expected one of {', '.join(_ACTIONS)})"
            )
        self.shard = shard
        self.op = op
        self.nth = nth
        self.action = action
        self.param = param
        self._seen = 0
        self._fired = False

    def __getstate__(self):
        return (self.shard, self.op, self.nth, self.action, self.param)

    def __setstate__(self, state):
        self.shard, self.op, self.nth, self.action, self.param = state
        self._seen = 0
        self._fired = False

    def matches(self, shard: int, op: str) -> bool:
        """Advance this rule's counter for ``(shard, op)``; True if it fires now."""
        if self._fired and self.nth is not None:
            return False
        if self.shard is not None and self.shard != shard:
            return False
        if self.op is not None and self.op != op:
            return False
        seen = self._seen
        self._seen += 1
        if self.nth is not None and seen != self.nth:
            return False
        self._fired = True
        return True

    def __repr__(self):
        def star(value):
            return "*" if value is None else value

        spec = f"{star(self.shard)}:{star(self.op)}:{star(self.nth)}:{self.action}"
        if self.param is not None:
            spec += f":{self.param}"
        return f"FaultRule({spec!r})"


class FaultPlan:
    """A picklable bundle of :class:`FaultRule` objects plus the firing logic.

    The worker calls :meth:`before` as soon as it decodes a request (where
    ``hang`` and ``slow`` sleep) and :meth:`action_for_reply` just before
    sending the reply (where ``crash`` exits and ``garbage`` substitutes the
    payload).  Splitting the two keeps the crash window honest: a ``crash``
    happens *after* the worker mutated its local store, so the parent cannot
    tell whether the write landed — replication must cope either way.
    """

    __slots__ = ("rules", "on_fire")

    def __init__(self, rules: Sequence[FaultRule] = ()):
        self.rules = list(rules)
        #: optional observability hook, called as ``on_fire(shard, op,
        #: action)`` whenever a rule fires.  Process-local (the worker wires
        #: it to its event log after unpickling); never shipped across the
        #: pipe, so it is excluded from the pickled state below.
        self.on_fire = None

    def __getstate__(self):
        return self.rules

    def __setstate__(self, state):
        self.rules = state
        self.on_fire = None

    def __bool__(self):
        return bool(self.rules)

    def _fire(self, shard: int, op: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.matches(shard, op):
                if self.on_fire is not None:
                    self.on_fire(shard, op, rule.action)
                return rule
        return None

    def before(self, shard: int, op: str) -> Optional[str]:
        """Called when a request is decoded.  Sleeps for hang/slow; returns
        the pending reply-time action (``"crash"``/``"garbage"``) or None."""
        rule = self._fire(shard, op)
        if rule is None:
            return None
        if rule.action == "hang":
            time.sleep(HANG_SECONDS if rule.param is None else rule.param)
            return None
        if rule.action == "slow":
            time.sleep(0.0 if rule.param is None else rule.param)
            return None
        return rule.action

    @staticmethod
    def apply_reply_action(action: Optional[str], reply: Tuple) -> Tuple:
        """Transform/abort the reply for a pending ``before`` action."""
        if action == "crash":
            # os._exit, not sys.exit: skip atexit/finalizers so the pipe
            # breaks exactly as a SIGKILL'd worker's would.
            os._exit(1)
        if action == "garbage":
            return GARBAGE_REPLY
        return reply

    def __repr__(self):
        return f"FaultPlan({self.rules!r})"


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse ``shard:op:nth:action[:param]`` clauses (``;``-separated)."""
    rules: List[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) not in (4, 5):
            raise EngineError(
                f"bad fault clause {clause!r}: expected shard:op:nth:action[:param]"
            )
        shard_s, op_s, nth_s, action = parts[:4]
        try:
            param = float(parts[4]) if len(parts) == 5 else None
            shard = None if shard_s == "*" else int(shard_s)
            nth = None if nth_s == "*" else int(nth_s)
        except ValueError as exc:
            raise EngineError(f"bad fault clause {clause!r}: {exc}") from None
        op = None if op_s == "*" else op_s
        try:
            rules.append(FaultRule(shard, op, nth, action, param))
        except EngineError as exc:
            # FaultRule validates the action; re-raise naming the clause.
            raise EngineError(f"bad fault clause {clause!r}: {exc}") from None
    return FaultPlan(rules)


def plan_from_env() -> Optional[FaultPlan]:
    """Build a plan from ``$REPRO_FAULTS``; None when unset/empty."""
    spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not spec:
        return None
    plan = parse_fault_spec(spec)
    return plan if plan else None
