"""`Document` / `ResultPage`: the engine's per-document handle and page type.

A :class:`Document` is a light handle: the maintained state (balanced term,
incremental circuit, index, cursors — Lemma 7.3) lives in the owning
:class:`repro.Engine`, either in-process (``workers=0``) or inside the shard
worker process the document was routed to (``workers=N``).  The handle's API
is identical in both modes:

* :meth:`Document.stream` — live duplicate-free enumeration of the current
  answers (Theorem 8.1 / 8.5); any edit to the document invalidates the
  stream with a :class:`~repro.errors.StaleIteratorError` at the next
  answer, identically in both modes (sharded streams receive worker-pushed
  result chunks under a bounded credit window — see
  :mod:`repro.engine.sharding` — and check staleness against the engine's
  epoch mirror);
* :meth:`Document.page` — edit-stable pagination: every call returns one
  :class:`ResultPage`, pages of one cursor are duplicate-free across edits
  that don't touch what the cursor still has to read (Lemma 7.3 upward
  closure), and a conflicting edit raises a precise
  :class:`~repro.errors.CursorInvalidatedError` on the next page;
* :meth:`Document.apply_edits` — one batch of Definition 7.1 edits (trees)
  or replace/insert/delete tuples (words), one epoch step per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.assignments import Assignment

__all__ = ["Document", "ResultPage"]


@dataclass(frozen=True)
class ResultPage:
    """One page of answers, the single page type of the engine API.

    ``cursor_id`` addresses the underlying edit-stable cursor: pass the page
    (or its ``cursor_id``) back to :meth:`Document.page` to fetch the next
    page of the same duplicate-free stream.  ``epoch`` is the document epoch
    the page was served at.
    """

    answers: Tuple[Assignment, ...]
    offset: int  #: index of the first answer within the cursor's stream
    exhausted: bool  #: True when the stream ended within (or at) this page
    cursor_id: int
    document_id: object
    epoch: int

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[Assignment]:
        return iter(self.answers)

    @property
    def has_more(self) -> bool:
        return not self.exhausted


#: answers per worker-pushed chunk of a sharded ``stream()``
STREAM_PAGE_SIZE = 256


class Document:
    """A handle on one maintained document owned by an :class:`repro.Engine`."""

    def __init__(self, engine, doc_id, kind: str, query):
        self.engine = engine
        self.doc_id = doc_id
        self.kind = kind  #: "tree" or "word"
        self.query = query  #: the :class:`~repro.engine.query.Query` served

    # ------------------------------------------------------------------ state
    @property
    def epoch(self) -> int:
        """The document epoch: number of applied edit batches."""
        return self.engine._doc_epoch(self.doc_id)

    # ------------------------------------------------------------ enumeration
    def stream(self) -> Iterator[Assignment]:
        """Enumerate the document's current answers, duplicate-free.

        Output-linear delay (Theorem 6.5).  Advancing the stream after *any*
        edit to this document raises
        :class:`~repro.errors.StaleIteratorError` — the paper's restart
        model, enforced identically in local and sharded mode (a sharded
        stream is fed by worker-pushed chunks, but staleness is checked at
        every answer against the engine's epoch mirror).  Use :meth:`page`
        for pagination that survives non-conflicting edits.
        """
        return self.engine._stream(self.doc_id)

    def __iter__(self) -> Iterator[Assignment]:
        return self.stream()

    def answers(self) -> List[Assignment]:
        """All current answers, materialized."""
        return list(self.stream())

    def count(self, limit: Optional[int] = None) -> int:
        """Count the answers by enumerating them (early stop at ``limit``)."""
        return self.engine._count(self.doc_id, limit)

    # ----------------------------------------------------------------- paging
    def page(
        self,
        cursor: Union[None, int, ResultPage] = None,
        page_size: Optional[int] = None,
    ) -> ResultPage:
        """Fetch one :class:`ResultPage` from an edit-stable cursor.

        ``cursor=None`` opens a fresh cursor (``page_size`` or the engine
        default); passing a previous :class:`ResultPage` (or its
        ``cursor_id``) continues that cursor's stream — duplicate-free across
        pages, resuming across edit batches whose rebuilt trunk is disjoint
        from what the cursor still has to read, and raising
        :class:`~repro.errors.CursorInvalidatedError` with a precise report
        otherwise (once; the cursor id is then released).  The page size is
        fixed when the cursor is opened — passing ``page_size`` together
        with ``cursor`` raises :class:`~repro.errors.EngineError`.  A page
        with ``exhausted=True`` ends the stream and releases the cursor id.
        """
        return self.engine._page(self.doc_id, cursor, page_size)

    def pages(self, page_size: Optional[int] = None) -> Iterator[ResultPage]:
        """Iterate over pages of a fresh cursor until exhaustion."""
        page = self.page(page_size=page_size)
        while True:
            yield page
            if page.exhausted:
                return
            page = self.page(cursor=page)

    # ------------------------------------------------------------------ edits
    def apply_edits(self, edits):
        """Apply one batch of edits (one epoch step); returns the batch report.

        Tree documents take :class:`~repro.trees.edits.EditOperation` objects,
        word documents take ``("replace" | "insert_after" | "delete", ...)``
        tuples — exactly the edit language of Definition 7.1 / Theorem 8.5.
        """
        return self.engine.apply_edits(self.doc_id, edits)

    # ------------------------------------------------------------- local-only
    @property
    def runtime(self):
        """The in-process enumeration runtime (local engines only).

        Exposes the underlying :class:`~repro.core.enumerator.TreeRuntime` /
        :class:`~repro.core.enumerator.WordRuntime` for introspection
        (``stats()``, ``tree``, ``term``...).  Sharded engines raise
        :class:`~repro.errors.EngineError` — the state lives in a worker
        process.
        """
        return self.engine._runtime(self.doc_id)

    def delay_probe(self, max_answers: Optional[int] = None) -> List[float]:
        """Per-answer wall-clock delays (local engines only; benchmarks)."""
        return self.runtime.delay_probe(max_answers=max_answers)

    def remove(self) -> None:
        """Drop the document from its engine (cursors are closed)."""
        self.engine.remove(self.doc_id)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Document(id={self.doc_id!r}, kind={self.kind!r}, query={self.query.digest[:12]}...)"
