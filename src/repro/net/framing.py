"""Wire framing of the network serving tier: length-prefixed canonical JSON.

Every message between :class:`~repro.net.client.RemoteEngine` and
:class:`~repro.net.server.EngineServer` is one **frame**: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 canonical
JSON (sorted keys, no whitespace — the exact rendering of
:func:`repro.automata.serialize.canonical_json`).  There is **no pickle on
the wire**: the body is the tagged value codec below, a strict superset of
the catalog codec of :mod:`repro.automata.serialize`, so the wire is
version-stable and safe to parse from untrusted peers.

Value tags (JSON primitives — ``None``/bool/int/str — pass through bare):

========  ==================================================================
tag       payload
========  ==================================================================
``f``     float as its ``repr`` string (no silent ``1`` / ``1.0`` merging)
``t``     tuple, items encoded in order
``s``     frozenset, items encoded and sorted by canonical key
``l``     list, items encoded in order
``d``     dict as ``[[key, value], ...]`` sorted by the encoded key
``tree``  :class:`~repro.trees.unranked.UnrankedTree` with **node ids
          preserved** (``[next_id, [[id, label, parent_id], ...]]`` in
          document order) — answers reference node ids, so a rebuilt tree
          must carry the same ids as the original
``edit``  a tree :class:`~repro.trees.edits.EditOperation`
``ustat`` one :class:`~repro.core.results.UpdateStats` row
``report`` a :class:`~repro.engine.local.BatchUpdateReport`
``inval``  a :class:`~repro.engine.cursor.CursorInvalidation` report
``exc``    an exception: ``[type_name, message, extra]``, reconstructed
           from the :mod:`repro.errors` hierarchy on decode (unknown types
           degrade to :class:`~repro.errors.EngineError` naming the
           original type) — this is how the server propagates the engine's
           precise error types as typed error frames
========  ==================================================================

Decoding is hardened exactly like the catalog codec: unknown tags, wrong
arities, oversized or truncated frames and nesting past
:data:`MAX_WIRE_DEPTH` raise a precise :class:`~repro.errors.ProtocolError`
naming the offending shape — never a bare ``ValueError`` or a blown stack.
A framing violation is unrecoverable on a byte stream (the next frame
boundary is unknowable), so the side that detects one closes that
connection; see :mod:`repro.net.server`.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Dict, List, Optional, Tuple

from repro.automata.serialize import canonical_json, canonical_key, loads_payload
from repro.errors import CodecError, EngineError, ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_WIRE_DEPTH",
    "encode_wire",
    "decode_wire",
    "encode_frame",
    "decode_frame_body",
    "send_frame",
    "recv_frame",
    "recv_frame_async",
]

#: protocol revision negotiated by the HELLO exchange; bumped on any
#: incompatible change to the frame format or the op vocabulary
PROTOCOL_VERSION = 1

#: default per-frame byte ceiling (header excluded) on both sides
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: deepest value nesting a frame body may carry (answers are ~3 deep,
#: stats dicts ~4; anything deeper is a recursion bomb, not traffic)
MAX_WIRE_DEPTH = 48

_LEN = struct.Struct(">I")


# ------------------------------------------------------------- value codec
def encode_wire(value: object, _depth: int = 0) -> object:
    """Encode one value for the wire (JSON-compatible tagged structure)."""
    if _depth >= MAX_WIRE_DEPTH:
        raise ProtocolError(
            f"refusing to encode a value nested deeper than {MAX_WIRE_DEPTH} levels"
        )
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["f", repr(value)]
    if isinstance(value, tuple):
        return ["t", [encode_wire(item, _depth + 1) for item in value]]
    if isinstance(value, frozenset):
        encoded = [encode_wire(item, _depth + 1) for item in value]
        encoded.sort(key=canonical_key)
        return ["s", encoded]
    if isinstance(value, list):
        return ["l", [encode_wire(item, _depth + 1) for item in value]]
    if isinstance(value, dict):
        rows = [
            [encode_wire(key, _depth + 1), encode_wire(val, _depth + 1)]
            for key, val in value.items()
        ]
        rows.sort(key=lambda row: canonical_key(row[0]))
        return ["d", rows]
    encoded = _encode_domain(value, _depth)
    if encoded is not None:
        return encoded
    raise ProtocolError(
        f"cannot put a {type(value).__name__} on the wire; the codec covers "
        "JSON primitives, float/tuple/frozenset/list/dict, trees, edits, "
        "update reports and exceptions"
    )


def _encode_domain(value: object, depth: int) -> Optional[list]:
    """Encode the engine-surface domain objects (tree, edit, report, exc)."""
    from repro.core.results import UpdateStats
    from repro.engine.cursor import CursorInvalidation
    from repro.engine.local import BatchUpdateReport
    from repro.trees.edits import Delete, Insert, InsertRight, Relabel
    from repro.trees.unranked import UnrankedTree

    if isinstance(value, UnrankedTree):
        nodes = [
            [
                node.node_id,
                encode_wire(node.label, depth + 1),
                None if node.parent is None else node.parent.node_id,
            ]
            for node in value.nodes()
        ]
        return ["tree", [value._next_id, nodes]]
    if isinstance(value, Relabel):
        return ["edit", ["relabel", value.node_id, encode_wire(value.label, depth + 1)]]
    if isinstance(value, Insert):
        return ["edit", ["insert", value.node_id, encode_wire(value.label, depth + 1)]]
    if isinstance(value, InsertRight):
        return ["edit", ["insertR", value.node_id, encode_wire(value.label, depth + 1)]]
    if isinstance(value, Delete):
        return ["edit", ["delete", value.node_id, None]]
    if isinstance(value, UpdateStats):
        return [
            "ustat",
            [
                value.trunk_size,
                value.rebuilt_subterm_size,
                encode_wire(value.seconds, depth + 1),
                value.new_node_id,
                value.new_position_id,
            ],
        ]
    if isinstance(value, BatchUpdateReport):
        return [
            "report",
            [
                encode_wire(value.document_id, depth + 1),
                value.epoch,
                [encode_wire(stat, depth + 1) for stat in value.stats],
                value.boxes_rebuilt,
                value.cursors_resumed,
                value.cursors_invalidated,
            ],
        ]
    if isinstance(value, CursorInvalidation):
        return [
            "inval",
            [
                value.cursor_id,
                encode_wire(value.document_id, depth + 1),
                value.base_epoch,
                value.invalidated_epoch,
                value.answers_delivered,
                value.edit,
                value.boxes_hit,
                encode_wire(value.regions, depth + 1),
            ],
        ]
    if isinstance(value, BaseException):
        extra: Dict[str, object] = {}
        shard = getattr(value, "shard", None)
        if shard is not None or hasattr(value, "deadline"):
            for attr in ("shard", "op", "elapsed", "deadline"):
                if hasattr(value, attr):
                    extra[attr] = encode_wire(getattr(value, attr), depth + 1)
        report = getattr(value, "report", None)
        if report is not None:
            extra["report"] = encode_wire(report, depth + 1)
        return ["exc", [type(value).__name__, str(value), ["d", sorted(
            ([key, val] for key, val in extra.items()), key=lambda row: row[0]
        )]]]
    return None


def _expect(condition: bool, what: str) -> None:
    if not condition:
        raise ProtocolError(f"malformed frame value: {what}")


def decode_wire(payload: object, _depth: int = 0) -> object:
    """Invert :func:`encode_wire`; hardened against untrusted input."""
    if payload is None or isinstance(payload, (bool, int, str)):
        return payload
    if not isinstance(payload, list):
        raise ProtocolError(
            f"malformed frame value: bare {type(payload).__name__} "
            "(expected a JSON primitive or a tagged [tag, data] pair)"
        )
    if _depth >= MAX_WIRE_DEPTH:
        raise ProtocolError(
            f"frame value nested deeper than {MAX_WIRE_DEPTH} levels; "
            "rejecting a recursion bomb"
        )
    _expect(len(payload) == 2, f"tagged value of arity {len(payload)} (expected 2)")
    tag, data = payload
    if tag == "f":
        _expect(isinstance(data, str), "'f' tag without a repr string")
        try:
            return float(data)
        except ValueError as exc:
            raise ProtocolError(f"malformed frame value: bad float repr {data!r}") from exc
    if tag in ("t", "s", "l"):
        _expect(isinstance(data, list), f"{tag!r} tag without a list payload")
        items = [decode_wire(item, _depth + 1) for item in data]
        if tag == "t":
            return tuple(items)
        if tag == "s":
            return frozenset(items)
        return items
    if tag == "d":
        _expect(isinstance(data, list), "'d' tag without a row list")
        out = {}
        for row in data:
            _expect(isinstance(row, list) and len(row) == 2, "dict row that is not a pair")
            out[decode_wire(row[0], _depth + 1)] = decode_wire(row[1], _depth + 1)
        return out
    return _decode_domain(tag, data, _depth)


def _decode_domain(tag: str, data: object, depth: int) -> object:
    from repro.core.results import UpdateStats
    from repro.engine.cursor import CursorInvalidation
    from repro.engine.local import BatchUpdateReport
    from repro.trees.edits import Delete, Insert, InsertRight, Relabel
    from repro.trees.unranked import UnrankedNode, UnrankedTree

    if tag == "tree":
        _expect(isinstance(data, list) and len(data) == 2, "'tree' tag arity")
        next_id, rows = data
        _expect(isinstance(next_id, int) and isinstance(rows, list) and rows,
                "'tree' tag needs [next_id, non-empty node rows]")
        # Rebuild with the original node ids (the pattern of
        # UnrankedTree.copy): answers and edits address nodes by id, so a
        # freshly-numbered rebuild would silently break both.
        tree = UnrankedTree.__new__(UnrankedTree)
        tree._next_id = next_id
        tree._nodes = {}
        tree.version = 0
        root_row = rows[0]
        _expect(isinstance(root_row, list) and len(root_row) == 3 and root_row[2] is None,
                "'tree' tag whose first row is not a parentless root")
        tree.root = UnrankedNode(root_row[0], decode_wire(root_row[1], depth + 1), None)
        tree._nodes[tree.root.node_id] = tree.root
        for row in rows[1:]:
            _expect(isinstance(row, list) and len(row) == 3, "'tree' node row arity")
            node_id, label, parent_id = row
            parent = tree._nodes.get(parent_id)
            _expect(parent is not None, f"'tree' node {node_id!r} references "
                    f"unknown parent {parent_id!r} (rows must be in document order)")
            _expect(isinstance(node_id, int) and node_id not in tree._nodes,
                    f"'tree' node id {node_id!r} is not a fresh int")
            node = UnrankedNode(node_id, decode_wire(label, depth + 1), parent)
            parent.children.append(node)
            tree._nodes[node_id] = node
        return tree
    if tag == "edit":
        _expect(isinstance(data, list) and len(data) == 3, "'edit' tag arity")
        kind, node_id, label = data
        _expect(isinstance(node_id, int), "'edit' without an int node id")
        label = decode_wire(label, depth + 1)
        if kind == "relabel":
            return Relabel(node_id, label)
        if kind == "insert":
            return Insert(node_id, label)
        if kind == "insertR":
            return InsertRight(node_id, label)
        if kind == "delete":
            return Delete(node_id)
        raise ProtocolError(f"malformed frame value: unknown edit kind {kind!r}")
    if tag == "ustat":
        _expect(isinstance(data, list) and len(data) == 5, "'ustat' tag arity")
        return UpdateStats(
            trunk_size=data[0],
            rebuilt_subterm_size=data[1],
            seconds=decode_wire(data[2], depth + 1),
            new_node_id=data[3],
            new_position_id=data[4],
        )
    if tag == "report":
        _expect(isinstance(data, list) and len(data) == 6, "'report' tag arity")
        stats = data[2]
        _expect(isinstance(stats, list), "'report' stats that are not a list")
        return BatchUpdateReport(
            document_id=decode_wire(data[0], depth + 1),
            epoch=data[1],
            stats=[decode_wire(stat, depth + 1) for stat in stats],
            boxes_rebuilt=data[3],
            cursors_resumed=data[4],
            cursors_invalidated=data[5],
        )
    if tag == "inval":
        _expect(isinstance(data, list) and len(data) == 8, "'inval' tag arity")
        regions = decode_wire(data[7], depth + 1)
        _expect(isinstance(regions, tuple), "'inval' regions that are not a tuple")
        return CursorInvalidation(
            cursor_id=data[0],
            document_id=decode_wire(data[1], depth + 1),
            base_epoch=data[2],
            invalidated_epoch=data[3],
            answers_delivered=data[4],
            edit=data[5],
            boxes_hit=data[6],
            regions=regions,
        )
    if tag == "exc":
        _expect(isinstance(data, list) and len(data) == 3, "'exc' tag arity")
        name, message, extra = data
        _expect(isinstance(name, str) and isinstance(message, str), "'exc' name/message")
        return _rebuild_exception(name, message, decode_wire(extra, depth + 1))
    raise ProtocolError(f"malformed frame value: unknown wire tag {tag!r}")


def _rebuild_exception(name: str, message: str, extra: object) -> BaseException:
    """Rebuild a typed error from its wire form (the error-frame payload).

    Types are resolved against the :mod:`repro.errors` hierarchy only — a
    peer cannot make this side instantiate arbitrary classes.  Unknown
    types degrade to :class:`~repro.errors.EngineError` carrying the
    original type name in the message.
    """
    from repro import errors as _errors
    from repro.errors import CursorInvalidatedError, ReproError, ShardTimeoutError

    if not isinstance(extra, dict):
        extra = {}
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        return EngineError(f"remote error ({name}): {message}")
    if issubclass(cls, ShardTimeoutError):
        return cls(
            message,
            shard=extra.get("shard"),
            op=extra.get("op"),
            elapsed=extra.get("elapsed"),
            deadline=extra.get("deadline"),
        )
    if issubclass(cls, CursorInvalidatedError):
        return cls(message, report=extra.get("report"))
    return cls(message)


# ------------------------------------------------------------------ frames
def encode_frame(value: object, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Render one frame (length prefix + canonical JSON body)."""
    body = canonical_json(encode_wire(value)).encode("utf8")
    if len(body) > max_frame_bytes:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit"
        )
    return _LEN.pack(len(body)) + body


def decode_frame_body(body: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> object:
    """Parse one frame body back into a value (:class:`ProtocolError` on junk)."""
    try:
        payload = loads_payload(body, max_bytes=max_frame_bytes)
    except CodecError as exc:
        raise ProtocolError(f"malformed frame body: {exc}") from exc
    return decode_wire(payload)


# ----------------------------------------------------- blocking socket I/O
def send_frame(
    sock: socket.socket, value: object, max_frame_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Send one frame on a blocking socket."""
    sock.sendall(encode_frame(value, max_frame_bytes))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF before any byte."""
    chunks: List[bytes] = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got} of {count} bytes received)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[object]:
    """Receive one frame from a blocking socket.

    Returns ``None`` on a clean EOF at a frame boundary (the peer closed);
    raises :class:`~repro.errors.ProtocolError` on a truncated or oversized
    frame — after which the stream position is unrecoverable and the
    connection must be dropped.
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"incoming frame announces {length} bytes, over the "
            f"{max_frame_bytes}-byte frame limit"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between frame header and body")
    return decode_frame_body(body, max_frame_bytes)


# -------------------------------------------------------------- asyncio I/O
async def recv_frame_async(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[object]:
    """Receive one frame from an asyncio stream (``None`` on clean EOF)."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-frame header ({len(exc.partial)} of "
            f"{_LEN.size} bytes received)"
        ) from exc
    (length,) = _LEN.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"incoming frame announces {length} bytes, over the "
            f"{max_frame_bytes}-byte frame limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} "
            "bytes received)"
        ) from exc
    return decode_frame_body(body, max_frame_bytes)
