"""`EngineServer`: the asyncio front door of one :class:`repro.Engine`.

The server listens on TCP and/or a unix socket and multiplexes many
concurrent client connections onto one engine.  The wire speaks the framed
canonical codec of :mod:`repro.net.framing` (no pickle), and requests carry
the same ``(request_id, op, *args)`` shape as the PR-5 shard protocol —
the network tier is the shard protocol with a socket instead of a pipe and
a safe codec instead of pickle:

* a versioned **HELLO** opens every connection: the client sends
  ``[0, "hello", {"protocol": N}]`` and the server answers with its
  protocol revision and per-connection limits, or a typed error frame on a
  revision mismatch;
* **requests** (``compile``, ``add_documents``, ``apply_edits``, ``page``,
  ``count``, ``epoch``, ``remove``, ``stats``, ``metrics``, ``events``,
  ``ping``) execute against the engine on a single executor thread — the
  engine is not thread-safe, and one serialized lane per server preserves
  the engine's own request ordering — and answer ``[rid, "ok", payload]``
  or ``[rid, "err", exc]`` with the engine's *original* error type encoded
  in the frame;
* **streams** reuse the credit-window push semantics end to end: the
  client opens a stream with an initial credit, the server pushes
  ``[rid, "chunk", answers, exhausted]`` frames ahead of consumption while
  credit lasts, and ``stream_credit`` frames replenish the window.  The
  server-side producer is the engine's own ``stream()`` — so on a sharded
  engine the client's credit gates the server loop, which in turn consumes
  the shard pool's (adaptively sized) credit window from the workers, and
  a mid-stream shard death fails over inside the engine without the client
  seeing anything.

Per-connection limits (``max_frame_bytes``, ``max_streams``,
``idle_timeout``) protect the server from misbehaving peers: a malformed
or oversized frame raises a precise :class:`~repro.errors.ProtocolError`
and closes **that connection only** (a framing violation leaves no
recoverable frame boundary), while a stream-limit breach is answered with
a typed error frame on a connection that stays usable.  Observability
hooks into the engine's obs layer: ``net_request_seconds`` round-trip
histograms, ``net_connect`` / ``net_disconnect`` / ``net_protocol_error``
events, and a ``net:<op>`` span around every engine call so a traced
engine links client request → server → shard in one trace.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.engine.document import STREAM_PAGE_SIZE
from repro.errors import EngineError, ProtocolError
from repro.net.framing import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    recv_frame_async,
)

__all__ = ["EngineServer"]

#: concurrently open streams one connection may hold (default)
DEFAULT_MAX_STREAMS = 32


class _ServerStream:
    """Server-side state of one client stream: its credit gate and pump task."""

    __slots__ = ("credit", "refill", "closed", "task")

    def __init__(self, credit: int):
        self.credit = credit
        self.refill = asyncio.Event()
        self.closed = False
        self.task: Optional[asyncio.Task] = None


class EngineServer:
    """Serve one :class:`repro.Engine` to network clients.

    Parameters
    ----------
    engine:
        The engine to serve (any mode: in-process, sharded, replicated).
        The server does not own it — closing the server leaves the engine
        running.
    host / port:
        TCP listen address.  ``port=0`` (default) picks a free port,
        readable from :attr:`address` after :meth:`start`.  ``host=None``
        disables TCP (unix socket only).
    unix_path:
        Optional unix-domain socket path to additionally listen on.
    max_frame_bytes:
        Per-frame byte ceiling in both directions; an incoming frame over
        it is rejected with :class:`~repro.errors.ProtocolError` and the
        connection dropped.
    max_streams:
        Concurrently open streams one connection may hold; a breach is
        answered with a typed error frame (connection stays usable).
    idle_timeout:
        Seconds a connection may sit with no incoming frame before the
        server drops it (``None`` = forever).
    """

    def __init__(
        self,
        engine,
        host: Optional[str] = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_streams: int = DEFAULT_MAX_STREAMS,
        idle_timeout: Optional[float] = None,
    ):
        if host is None and unix_path is None:
            raise EngineError("EngineServer needs a TCP host and/or a unix_path")
        if max_streams < 1:
            raise EngineError(f"max_streams must be >= 1, got {max_streams}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise EngineError(
                f"idle_timeout must be positive (None disables), got {idle_timeout}"
            )
        self.engine = engine
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.max_frame_bytes = max_frame_bytes
        self.max_streams = max_streams
        self.idle_timeout = idle_timeout
        self.address: Optional[Tuple[str, int]] = None  #: (host, port) once started
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._servers = []
        #: one serialized lane for every engine call — the engine is not
        #: thread-safe, and a single lane preserves its request ordering
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-net-engine"
        )
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._closed = False
        self._connections = 0

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "EngineServer":
        """Start listening (background event-loop thread); returns ``self``."""
        if self._thread is not None:
            raise EngineError("this server was already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-net-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._startup_error = None
            self.stop()
            raise error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._open_listeners())
        except BaseException as exc:  # noqa: BLE001 — surfaced to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    async def _open_listeners(self) -> None:
        if self.host is not None:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self._servers.append(server)
            self.address = server.sockets[0].getsockname()[:2]
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, self.unix_path
            )
            self._servers.append(server)

    def stop(self) -> None:
        """Stop listening and drop every connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and loop.is_running():

            def _shutdown():
                for server in self._servers:
                    server.close()
                loop.stop()

            loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "EngineServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # --------------------------------------------------------------- engine ops
    async def _run_engine(self, op: str, fn):
        """Execute one engine call on the serialized engine lane."""
        loop = asyncio.get_running_loop()

        def call():
            start = perf_counter()
            tracer = self.engine._tracer
            try:
                with tracer.span(f"net:{op}"):
                    return fn()
            finally:
                self.engine._metrics.observe("net_request_seconds", perf_counter() - start)

        return await loop.run_in_executor(self._executor, call)

    def _dispatch(self, op: str, args: list):
        """The engine call of one non-stream request (runs on the lane)."""
        engine = self.engine
        if op == "compile":
            from repro.automata.serialize import query_from_payload

            (payload,) = args
            query = engine.compile(query_from_payload(payload))
            return {"digest": query.digest, "kind": query.kind}
        if op == "add_documents":
            (items,) = args
            contents, queries, doc_ids = [], [], []
            for row in items:
                if not (isinstance(row, (list, tuple)) and len(row) == 3):
                    raise ProtocolError(
                        "add_documents items must be [doc_id, content, digest] rows"
                    )
                doc_id, content, digest = row
                query = engine._queries.get(digest)
                if query is None:
                    raise ProtocolError(
                        f"no compiled query with digest {str(digest)[:12]}... on "
                        "this connection's server; send compile before add_documents"
                    )
                contents.append(content)
                queries.append(query)
                doc_ids.append(doc_id)
            documents = engine.add_documents(contents, queries=queries, doc_ids=doc_ids)
            return {"doc_ids": [document.doc_id for document in documents]}
        if op == "apply_edits":
            doc_id, edits = args
            return engine.apply_edits(doc_id, list(edits))
        if op == "page":
            doc_id, cursor_id, size = args
            if cursor_id is None:
                page = engine._page(doc_id, None, size)
            else:
                page = engine._page(doc_id, cursor_id, None)
            return {
                "answers": page.answers,
                "offset": page.offset,
                "exhausted": page.exhausted,
                "cursor_id": page.cursor_id,
                "epoch": page.epoch,
            }
        if op == "count":
            doc_id, limit = args
            return engine._count(doc_id, limit)
        if op == "epoch":
            return engine._doc_epoch(args[0])
        if op == "remove":
            engine.remove(args[0])
            return None
        if op == "stats":
            return engine.stats()
        if op == "metrics":
            return engine.metrics()
        if op == "events":
            return engine.events()
        if op == "ping":
            return "pong"
        raise ProtocolError(f"unknown request op {op!r}")

    # -------------------------------------------------------------- connections
    async def _handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername") or writer.get_extra_info("sockname")
        peer = repr(peer)
        self._connections += 1
        self.engine._events.emit("net_connect", peer=peer)
        write_lock = asyncio.Lock()
        streams: Dict[int, _ServerStream] = {}
        reason = "eof"
        try:
            if not await self._handshake(reader, writer, write_lock):
                reason = "bad-hello"
                return
            while True:
                try:
                    if self.idle_timeout is not None:
                        frame = await asyncio.wait_for(
                            recv_frame_async(reader, self.max_frame_bytes),
                            timeout=self.idle_timeout,
                        )
                    else:
                        frame = await recv_frame_async(reader, self.max_frame_bytes)
                except asyncio.TimeoutError:
                    reason = "idle-timeout"
                    return
                except ProtocolError as exc:
                    reason = f"protocol-error: {exc}"
                    self.engine._events.emit(
                        "net_protocol_error", peer=peer, error=str(exc)
                    )
                    return
                if frame is None:
                    return  # clean EOF: the client closed
                try:
                    request_id, op, args = self._parse_request(frame)
                except ProtocolError as exc:
                    reason = f"protocol-error: {exc}"
                    self.engine._events.emit(
                        "net_protocol_error", peer=peer, error=str(exc)
                    )
                    return
                if op == "stream_open":
                    try:
                        await self._stream_open(
                            request_id, args, streams, writer, write_lock, peer
                        )
                    except ProtocolError as exc:
                        reason = f"protocol-error: {exc}"
                        self.engine._events.emit(
                            "net_protocol_error", peer=peer, error=str(exc)
                        )
                        return
                elif op == "stream_credit":
                    stream = streams.get(request_id)
                    if stream is not None and args and isinstance(args[0], int):
                        stream.credit += args[0]
                        stream.refill.set()
                elif op == "stream_close":
                    self._stream_drop(streams, request_id)
                else:
                    await self._answer(request_id, op, args, writer, write_lock)
        except asyncio.CancelledError:
            # Server shutdown cancels connection tasks; ending the task
            # cleanly (instead of re-raising) keeps asyncio's stream
            # machinery from logging the cancellation as an error.
            reason = "server-stopped"
        except (ConnectionError, OSError) as exc:
            reason = f"connection-lost: {exc}"
        finally:
            for request_id in list(streams):
                self._stream_drop(streams, request_id)
            self._connections -= 1
            self.engine._events.emit("net_disconnect", peer=peer, reason=reason)
            writer.close()
            try:
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):  # noqa: BLE001 — peer gone
                pass

    async def _handshake(self, reader, writer, write_lock) -> bool:
        """The versioned HELLO exchange; False closes the connection."""
        try:
            frame = await recv_frame_async(reader, self.max_frame_bytes)
        except ProtocolError:
            return False
        ok = (
            isinstance(frame, list)
            and len(frame) == 3
            and frame[1] == "hello"
            and isinstance(frame[2], dict)
        )
        revision = frame[2].get("protocol") if ok else None
        if not ok or revision != PROTOCOL_VERSION:
            error = ProtocolError(
                f"protocol revision mismatch: this server speaks revision "
                f"{PROTOCOL_VERSION}, the client offered {revision!r}"
                if ok
                else "the first frame of a connection must be "
                "[0, 'hello', {'protocol': N}]"
            )
            await self._send(writer, write_lock, [0, "err", error])
            return False
        await self._send(
            writer,
            write_lock,
            [
                0,
                "ok",
                {
                    "protocol": PROTOCOL_VERSION,
                    "page_size": self.engine.page_size,
                    "chunk_size": STREAM_PAGE_SIZE,
                    "max_frame_bytes": self.max_frame_bytes,
                    "max_streams": self.max_streams,
                },
            ],
        )
        return True

    @staticmethod
    def _parse_request(frame) -> Tuple[int, str, list]:
        if not (
            isinstance(frame, list)
            and len(frame) >= 2
            and isinstance(frame[0], int)
            and isinstance(frame[1], str)
        ):
            raise ProtocolError(
                "malformed request frame: expected [request_id, op, *args]"
            )
        return frame[0], frame[1], frame[2:]

    async def _send(self, writer, write_lock, frame_value) -> None:
        data = encode_frame(frame_value, self.max_frame_bytes)
        async with write_lock:
            writer.write(data)
            await writer.drain()

    async def _answer(self, request_id, op, args, writer, write_lock) -> None:
        try:
            payload = await self._run_engine(op, lambda: self._dispatch(op, args))
        except BaseException as exc:  # noqa: BLE001 — every failure travels back
            await self._send(writer, write_lock, [request_id, "err", exc])
            return
        await self._send(writer, write_lock, [request_id, "ok", payload])

    # ------------------------------------------------------------------ streams
    async def _stream_open(
        self, request_id, args, streams, writer, write_lock, peer
    ) -> None:
        if request_id in streams:
            raise ProtocolError(f"stream request id {request_id} is already open")
        if len(streams) >= self.max_streams:
            # A limit breach is a typed error on a connection that stays
            # usable — unlike a framing violation, nothing is corrupted.
            error = ProtocolError(
                f"connection stream limit reached ({self.max_streams} open); "
                "close a stream before opening another"
            )
            self.engine._events.emit("net_protocol_error", peer=peer, error=str(error))
            await self._send(writer, write_lock, [request_id, "err", error])
            return
        if not (
            len(args) == 3
            and isinstance(args[1], int)
            and args[1] >= 1
            and isinstance(args[2], int)
            and args[2] >= 1
        ):
            await self._send(
                writer,
                write_lock,
                [
                    request_id,
                    "err",
                    ProtocolError(
                        "stream_open takes [doc_id, chunk_size >= 1, credit >= 1]"
                    ),
                ],
            )
            return
        doc_id, chunk_size, credit = args
        try:
            iterator = await self._run_engine(
                "stream_open", lambda: iter(self.engine._stream(doc_id))
            )
        except BaseException as exc:  # noqa: BLE001 — unknown doc, closed engine...
            await self._send(writer, write_lock, [request_id, "err", exc])
            return
        stream = _ServerStream(credit)
        streams[request_id] = stream
        stream.task = asyncio.get_running_loop().create_task(
            self._pump(request_id, stream, streams, iterator, chunk_size, writer, write_lock)
        )

    async def _pump(
        self, request_id, stream, streams, iterator, chunk_size, writer, write_lock
    ) -> None:
        """Push chunks of one stream to the client while its credit lasts."""

        def pull():
            answers = []
            tracer = self.engine._tracer
            with tracer.span("net:stream_chunk"):
                try:
                    for _ in range(chunk_size):
                        answers.append(next(iterator))
                except StopIteration:
                    return tuple(answers), True
            return tuple(answers), False

        loop = asyncio.get_running_loop()
        try:
            while not stream.closed:
                if stream.credit <= 0:
                    stream.refill.clear()
                    await stream.refill.wait()
                    continue
                try:
                    answers, exhausted = await loop.run_in_executor(
                        self._executor, pull
                    )
                except BaseException as exc:  # noqa: BLE001 — stale, shard death...
                    if not stream.closed:
                        await self._send(writer, write_lock, [request_id, "err", exc])
                    return
                if stream.closed:
                    return
                stream.credit -= 1
                await self._send(
                    writer, write_lock, [request_id, "chunk", answers, exhausted]
                )
                if exhausted:
                    return
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 — the connection died under the pump
            pass
        finally:
            streams.pop(request_id, None)
            close = getattr(iterator, "close", None)
            if close is not None:
                # Run the generator's finalizer on the engine lane: it sends
                # the shard-side stream_close through the pool.
                try:
                    await loop.run_in_executor(self._executor, close)
                except Exception:  # noqa: BLE001
                    pass

    @staticmethod
    def _stream_drop(streams: Dict[int, _ServerStream], request_id: int) -> None:
        stream = streams.pop(request_id, None)
        if stream is None:
            return
        stream.closed = True
        stream.refill.set()  # wake a credit-blocked pump so it can exit
        if stream.task is not None:
            stream.task.cancel()

    def __repr__(self) -> str:  # pragma: no cover
        where = []
        if self.address is not None:
            where.append(f"tcp={self.address[0]}:{self.address[1]}")
        if self.unix_path is not None:
            where.append(f"unix={self.unix_path}")
        return f"EngineServer({', '.join(where) or 'not started'}, connections={self._connections})"
