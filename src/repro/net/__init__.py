"""The network serving tier: serve one engine to many socket clients.

:class:`EngineServer` multiplexes concurrent TCP / unix-socket clients
onto one :class:`repro.Engine`; :class:`RemoteEngine` is the blocking
client exposing the local engine surface (same ``Query`` / ``Document`` /
``ResultPage`` objects, same typed errors, byte-identical answers).  The
wire speaks length-prefixed frames of the canonical codec — never pickle
— with a versioned HELLO, credit-window push streaming made adaptive, and
per-connection limits.  See ``docs/protocol.md`` for the frame format.
"""

from repro.net.client import RemoteEngine
from repro.net.framing import (
    MAX_FRAME_BYTES,
    MAX_WIRE_DEPTH,
    PROTOCOL_VERSION,
    decode_frame_body,
    decode_wire,
    encode_frame,
    encode_wire,
    recv_frame,
    recv_frame_async,
    send_frame,
)
from repro.net.server import EngineServer

__all__ = [
    "EngineServer",
    "RemoteEngine",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_WIRE_DEPTH",
    "encode_wire",
    "decode_wire",
    "encode_frame",
    "decode_frame_body",
    "send_frame",
    "recv_frame",
    "recv_frame_async",
]
