"""`RemoteEngine`: the blocking client of an :class:`EngineServer`.

A ``RemoteEngine`` connects to a served engine over TCP or a unix socket
and exposes the same serving surface as a local :class:`repro.Engine` —
``compile`` / ``add`` / ``add_documents`` / ``document`` handles with
``stream()`` / ``page()`` / ``count()`` / ``apply_edits()`` / ``remove()``
— returning the same :class:`~repro.engine.query.Query`,
:class:`~repro.engine.document.Document`,
:class:`~repro.engine.document.ResultPage` and
:class:`~repro.engine.store.BatchUpdateReport` objects, raising the same
typed errors (:class:`~repro.errors.CursorInvalidatedError` with its
report, :class:`~repro.errors.StaleIteratorError`,
:class:`~repro.errors.ShardDiedError`, ...), and yielding byte-identical
answers.  Code written against a local engine runs unchanged against a
remote one.

The client is a single-threaded demultiplexer over one socket, the same
shape as the shard pool's parent side: requests carry fresh ids, replies
are routed by id into per-request slots, and stream chunk frames land in
per-stream buffers so a stream being consumed never blocks an interleaved
``page()`` on the same connection.

Streaming reuses the engine's credit-window discipline end to end, with
the client running its own :class:`~repro.engine.sharding.AdaptiveCredit`
controller: a consumer that keeps draining the buffer dry (the server is
the bottleneck) grows the window so more chunks travel per round trip,
while a slow consumer whose buffer stays full shrinks it toward the
minimum so the server never racks up unread frames.  Stale-on-edit
semantics are enforced client-side against an epoch mirror (every edit on
this connection flows through this client), so a stream goes stale at
exactly the answer boundary where a local engine's would.

Queries are compiled *locally first* — ``compile`` normalizes the source,
computes the canonical digest, and ships the canonical payload (never a
pickle); the server answers with its digest and the client verifies the
two match, so a codec divergence surfaces as a loud
:class:`~repro.errors.ProtocolError` instead of silently serving the
wrong query.
"""

from __future__ import annotations

import itertools
import socket
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.automata.serialize import query_digest, query_payload
from repro.engine.document import Document, ResultPage, STREAM_PAGE_SIZE
from repro.engine.query import Query, normalize_query_source
from repro.engine.sharding import AdaptiveCredit, STREAM_CREDIT
from repro.errors import (
    EngineError,
    ProtocolError,
    ReproError,
    ServingError,
    StaleIteratorError,
)
from repro.net.framing import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.obs.metrics import MetricsRegistry
from repro.trees.unranked import UnrankedTree

__all__ = ["RemoteEngine"]


class _ClientStream:
    """Client-side state of one push stream (mirror of the pool's)."""

    __slots__ = ("request_id", "chunks", "done", "error", "closed", "to_grant", "window")

    def __init__(self, request_id: int, window: int):
        self.request_id = request_id
        self.chunks: List[Tuple[tuple, bool]] = []
        self.done = False
        self.error: Optional[BaseException] = None
        self.closed = False
        self.to_grant = 0
        self.window = window


class RemoteEngine:
    """Blocking client of one :class:`~repro.net.server.EngineServer`.

    Parameters
    ----------
    address:
        ``(host, port)`` of the server's TCP listener (usually
        ``server.address``).  Mutually optional with ``unix_path``.
    unix_path:
        Path of the server's unix socket (used when ``address`` is None).
    page_size:
        Default ``page()`` size; ``None`` inherits the server engine's.
    stream_chunk_size:
        Answers per pushed stream chunk; ``None`` inherits the server's.
    timeout:
        Socket timeout in seconds for every reply wait (``None`` = block
        forever); an expiry raises :class:`~repro.errors.ProtocolError`.
    """

    def __init__(
        self,
        address: Optional[Tuple[str, int]] = None,
        *,
        unix_path: Optional[str] = None,
        page_size: Optional[int] = None,
        stream_chunk_size: Optional[int] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        timeout: Optional[float] = None,
    ):
        if (address is None) == (unix_path is None):
            raise EngineError("pass exactly one of address=(host, port) or unix_path=")
        self.max_frame_bytes = max_frame_bytes
        self.timeout = timeout
        self.workers = 0  # documents live in the server process, not in shards of ours
        if address is not None:
            self._sock = socket.create_connection(tuple(address), timeout=timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        else:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        self._closed = False
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, Tuple[str, object]] = {}
        self._streams: Dict[int, _ClientStream] = {}
        self._deferred_closes: List[int] = []
        self._metrics = MetricsRegistry()
        self.credit = AdaptiveCredit(STREAM_CREDIT, metrics=self._metrics)
        self._queries: Dict[str, Query] = {}
        self._documents: Dict[object, Document] = {}
        self._epochs: Dict[object, int] = {}
        self.stream_chunks_total = 0
        self.stream_round_trips_total = 0
        self.stream_stalls_total = 0
        try:
            self.server_info = self._hello()
        except BaseException:
            self._sock.close()
            self._closed = True
            raise
        self.page_size = (
            int(page_size) if page_size is not None else self.server_info["page_size"]
        )
        if self.page_size < 1:
            raise EngineError("page_size must be >= 1")
        self.stream_chunk_size = (
            int(stream_chunk_size)
            if stream_chunk_size is not None
            else self.server_info.get("chunk_size", STREAM_PAGE_SIZE)
        )

    def _hello(self) -> Dict[str, object]:
        send_frame(self._sock, [0, "hello", {"protocol": PROTOCOL_VERSION}], self.max_frame_bytes)
        reply = self._recv_raw()
        if reply is None:
            raise ProtocolError("the server closed the connection during HELLO")
        if not (isinstance(reply, list) and len(reply) == 3 and reply[0] == 0):
            raise ProtocolError("malformed HELLO reply from server")
        if reply[1] == "err" and isinstance(reply[2], BaseException):
            raise reply[2]
        if reply[1] != "ok" or not isinstance(reply[2], dict):
            raise ProtocolError("malformed HELLO reply from server")
        return reply[2]

    # -------------------------------------------------------------- transport
    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this engine is closed")

    def _send(self, frame_value) -> None:
        # Flush stream closes deferred from generator finalizers first, so
        # they can never interleave inside another frame's bytes.
        while self._deferred_closes:
            request_id = self._deferred_closes.pop()
            send_frame(self._sock, [request_id, "stream_close"], self.max_frame_bytes)
        send_frame(self._sock, frame_value, self.max_frame_bytes)

    def _recv_raw(self):
        try:
            return recv_frame(self._sock, self.max_frame_bytes)
        except socket.timeout:
            raise ProtocolError(
                f"timed out after {self.timeout}s waiting for the server"
            ) from None

    def _recv_one(self) -> None:
        """Receive and route exactly one reply frame."""
        frame = self._recv_raw()
        if frame is None:
            raise ProtocolError("the server closed the connection")
        if not (
            isinstance(frame, list)
            and len(frame) >= 2
            and isinstance(frame[0], int)
            and isinstance(frame[1], str)
        ):
            raise ProtocolError("malformed reply frame: expected [request_id, status, ...]")
        request_id, status = frame[0], frame[1]
        if status == "chunk":
            if not (
                len(frame) == 4
                and isinstance(frame[2], tuple)
                and isinstance(frame[3], bool)
            ):
                raise ProtocolError("malformed stream chunk frame")
            stream = self._streams.get(request_id)
            if stream is None:
                return  # chunk already in flight when we closed the stream
            stream.chunks.append((frame[2], frame[3]))
            self.stream_chunks_total += 1
            self._metrics.inc("net_stream_chunks_total")
            if frame[3]:
                stream.done = True
            return
        if status == "err":
            error = frame[2] if len(frame) >= 3 else None
            if not isinstance(error, BaseException):
                raise ProtocolError("error frame without a decodable exception")
            stream = self._streams.get(request_id)
            if stream is not None:
                stream.error = error
                stream.done = True
                return
            self._pending[request_id] = ("err", error)
            return
        if status == "ok":
            self._pending[request_id] = ("ok", frame[2] if len(frame) >= 3 else None)
            return
        raise ProtocolError(f"unknown reply status {status!r} from server")

    def _call(self, op: str, *args):
        """One round trip: send ``[rid, op, *args]``, wait for its reply."""
        self._check_open()
        request_id = next(self._request_ids)
        start = perf_counter()
        self._send([request_id, op, *args])
        while request_id not in self._pending:
            self._recv_one()
        status, payload = self._pending.pop(request_id)
        self._metrics.observe("net_round_trip_seconds", perf_counter() - start)
        if status == "err":
            raise payload
        return payload

    # ---------------------------------------------------------------- queries
    def compile(self, source, alphabet=None) -> Query:
        """Compile a query on the server; digests are verified to match.

        The canonical payload travels (never a pickle); the client computes
        the digest locally and cross-checks the server's answer.
        """
        self._check_open()
        if isinstance(source, Query):
            return source
        kind, query_source, pattern = normalize_query_source(source, alphabet)
        digest = query_digest(query_source)
        known = self._queries.get(digest)
        if known is not None:
            return known
        reply = self._call("compile", query_payload(query_source))
        if not (isinstance(reply, dict) and reply.get("digest") == digest):
            raise ProtocolError(
                f"query digest mismatch: client computed {digest[:12]}..., server "
                f"answered {str(reply.get('digest') if isinstance(reply, dict) else reply)[:12]}... "
                "(codec divergence between client and server)"
            )
        query = Query(kind=kind, source=query_source, digest=digest, pattern=pattern, entry=None)
        self._queries[digest] = query
        return query

    # -------------------------------------------------------------- documents
    def add(self, content, query, doc_id=None, alphabet=None) -> Document:
        if isinstance(content, UnrankedTree):
            return self.add_tree(content, query, doc_id=doc_id, alphabet=alphabet)
        return self.add_word(content, query, doc_id=doc_id, alphabet=alphabet)

    def add_tree(self, tree: UnrankedTree, query, doc_id=None, alphabet=None) -> Document:
        return self._add("tree", tree, query, doc_id, alphabet)

    def add_word(self, word, query, doc_id=None, alphabet=None) -> Document:
        return self._add("word", list(word), query, doc_id, alphabet)

    def _add(self, kind: str, content, query, doc_id, alphabet) -> Document:
        doc_ids = None if doc_id is None else [doc_id]
        return self.add_documents(
            [content], query, doc_ids=doc_ids, alphabet=alphabet, _kind=kind
        )[0]

    def add_documents(
        self,
        contents,
        query=None,
        *,
        queries=None,
        doc_ids=None,
        alphabet=None,
        _kind=None,
    ) -> List[Document]:
        """Add many documents in one round trip (the server batches them)."""
        self._check_open()
        contents = list(contents)
        if queries is not None:
            queries = list(queries)
            if len(queries) != len(contents):
                raise EngineError(
                    f"queries ({len(queries)}) and contents ({len(contents)}) differ in length"
                )
        if doc_ids is not None:
            doc_ids = list(doc_ids)
            if len(doc_ids) != len(contents):
                raise EngineError(
                    f"doc_ids ({len(doc_ids)}) and contents ({len(contents)}) differ in length"
                )
        rows = []  # (requested_doc_id, kind, content, compiled)
        claimed = set()
        for index, content in enumerate(contents):
            item_query = queries[index] if queries is not None else query
            if item_query is None:
                raise EngineError(
                    "add_documents needs a query: pass query= (shared) or queries= (per item)"
                )
            compiled = self.compile(item_query, alphabet=alphabet)
            if isinstance(content, UnrankedTree):
                kind = "tree"
            else:
                kind = "word"
                content = list(content)
            if _kind is not None and kind != _kind:
                kind = _kind
            if compiled.kind != kind:
                raise EngineError(
                    f"cannot serve a {kind} document under a {compiled.kind} query "
                    f"(digest {compiled.digest[:12]}...)"
                )
            requested = doc_ids[index] if doc_ids is not None else None
            if requested is not None and (requested in self._documents or requested in claimed):
                raise ServingError(f"document id {requested!r} already in use")
            if requested is not None:
                claimed.add(requested)
            rows.append((requested, kind, content, compiled))
        reply = self._call(
            "add_documents",
            [[requested, content, compiled.digest] for requested, _k, content, compiled in rows],
        )
        assigned = reply["doc_ids"] if isinstance(reply, dict) else None
        if not isinstance(assigned, (list, tuple)) or len(assigned) != len(rows):
            raise ProtocolError("malformed add_documents reply from server")
        documents = []
        for (_requested, kind, _content, compiled), doc_id in zip(rows, assigned):
            document = Document(self, doc_id, kind, compiled)
            self._documents[doc_id] = document
            self._epochs[doc_id] = 0
            documents.append(document)
        return documents

    def document(self, doc_id) -> Document:
        """The handle of a served document."""
        try:
            return self._documents[doc_id]
        except KeyError:
            raise ServingError(f"no document with id {doc_id!r}") from None

    def remove(self, doc_id) -> None:
        """Drop a document on the server (its cursors are closed)."""
        self.document(doc_id)
        self._check_open()
        self._call("remove", doc_id)
        del self._documents[doc_id]
        self._epochs.pop(doc_id, None)

    def doc_ids(self) -> List[object]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id) -> bool:
        return doc_id in self._documents

    # ------------------------------------------------------------------ edits
    def apply_edits(self, doc_id, edits):
        """Apply one edit batch (one epoch step) on the server."""
        self.document(doc_id)
        self._check_open()
        try:
            report = self._call("apply_edits", doc_id, list(edits))
        except ProtocolError:
            raise
        except BaseException:
            # The batch may have partially applied (the epoch still advances
            # on a partial batch): resync the mirror so live streams see it.
            try:
                self._epochs[doc_id] = self._call("epoch", doc_id)
            except ReproError:
                self._epochs.pop(doc_id, None)
            raise
        self._epochs[doc_id] = report.epoch
        return report

    # ------------------------------------------------------------ reads/pages
    def _doc_epoch(self, doc_id) -> int:
        self.document(doc_id)
        epoch = self._epochs.get(doc_id)
        if epoch is None:  # mirror lost after a failed batch: resync
            epoch = self._call("epoch", doc_id)
            self._epochs[doc_id] = epoch
        return epoch

    def _count(self, doc_id, limit: Optional[int]) -> int:
        self.document(doc_id)
        return self._call("count", doc_id, limit)

    def _runtime(self, doc_id):
        self.document(doc_id)
        raise EngineError(
            f"document {doc_id!r} lives in the server process; "
            "its runtime is not reachable over the network"
        )

    def _page(self, doc_id, cursor, page_size: Optional[int]) -> ResultPage:
        self.document(doc_id)
        self._check_open()
        if isinstance(cursor, ResultPage):
            if cursor.document_id != doc_id:
                raise EngineError(
                    f"page cursor {cursor.cursor_id} belongs to document "
                    f"{cursor.document_id!r}, not {doc_id!r}"
                )
            cursor_id: Optional[int] = cursor.cursor_id
        else:
            cursor_id = cursor
        if cursor_id is not None and page_size is not None:
            raise EngineError(
                "page_size is fixed when a cursor is opened; "
                "continue with page(cursor=...) only"
            )
        size = self.page_size if page_size is None else page_size
        if size < 1:
            raise EngineError("page_size must be >= 1")
        payload = self._call("page", doc_id, cursor_id, size)
        if not isinstance(payload, dict):
            raise ProtocolError("malformed page reply from server")
        return ResultPage(
            answers=tuple(payload["answers"]),
            offset=payload["offset"],
            exhausted=payload["exhausted"],
            cursor_id=payload["cursor_id"],
            document_id=doc_id,
            epoch=payload["epoch"],
        )

    # ---------------------------------------------------------------- streams
    def _stream(self, doc_id):
        """Credit-window push stream over the socket (adaptive, demuxed).

        The base epoch is captured eagerly, and staleness is checked against
        the client's epoch mirror before every yielded answer — the exact
        contract of a local engine's ``stream()``.
        """
        self.document(doc_id)
        self._check_open()
        start_epoch = self._doc_epoch(doc_id)
        request_id = next(self._request_ids)
        window = self.credit.initial_credit(len(self._streams))
        stream = _ClientStream(request_id, window)
        self._streams[request_id] = stream
        self._send([request_id, "stream_open", doc_id, self.stream_chunk_size, window])
        self.stream_round_trips_total += 1
        self._metrics.inc("net_stream_round_trips_total")

        def check_fresh():
            if self._epochs.get(doc_id) != start_epoch:
                raise StaleIteratorError(
                    f"document {doc_id!r} was edited (or removed) while stream() "
                    "was running; restart the stream, or use page() for "
                    "edit-stable pagination"
                )

        def iterate():
            check_fresh()
            try:
                while True:
                    chunk = self._next_chunk(stream)
                    if chunk is None:
                        return
                    answers, exhausted = chunk
                    for answer in answers:
                        check_fresh()
                        yield answer
                    if exhausted:
                        return
            finally:
                self._close_stream(stream)

        return iterate()

    def _next_chunk(self, stream: _ClientStream):
        """Pop one buffered chunk, blocking on the socket if none arrived.

        Runs the same adaptive-credit bookkeeping as the shard pool: a full
        buffer (buffered chunks plus unreturned grants covering the whole
        window) votes to shrink the window, a stall votes to grow it, and
        grants top the window up to the controller's current target.
        """
        if stream.chunks:
            self.credit.note_buffered(len(stream.chunks) + stream.to_grant, stream.window)
        stalled_at: Optional[float] = None
        while not stream.chunks:
            if stream.error is not None:
                raise stream.error
            if stream.done or stream.closed:
                return None
            if stalled_at is None:
                stalled_at = perf_counter()
            self._recv_one()
        if stalled_at is not None:
            self._metrics.observe("net_stream_stall_seconds", perf_counter() - stalled_at)
            self.stream_stalls_total += 1
            self.credit.note_stall()
        answers, exhausted = stream.chunks.pop(0)
        stream.to_grant += 1
        target = self.credit.window
        if (
            not exhausted
            and not stream.done
            and stream.to_grant >= max(1, min(stream.window, target) // 2)
        ):
            grant = max(0, target - (stream.window - stream.to_grant))
            stream.window = stream.window - stream.to_grant + grant
            stream.to_grant = 0
            if grant > 0:
                self._send([stream.request_id, "stream_credit", grant])
                self.stream_round_trips_total += 1
                self._metrics.inc("net_stream_round_trips_total")
        return answers, exhausted

    def _close_stream(self, stream: _ClientStream) -> None:
        if stream.closed:
            return
        stream.closed = True
        self._streams.pop(stream.request_id, None)
        if not stream.done and not self._closed:
            # Deferred: this may run inside a generator finalizer triggered
            # at an arbitrary point (even mid-send); the close frame goes
            # out with the next regular send instead.
            self._deferred_closes.append(stream.request_id)

    # ------------------------------------------------------------- monitoring
    def net_stats(self) -> Dict[str, object]:
        """Client-side transport counters (the adaptive window included)."""
        return {
            "credit": self.credit.window,
            "credit_start": STREAM_CREDIT,
            "credit_grown": self.credit.grown_total,
            "credit_shrunk": self.credit.shrunk_total,
            "chunks": self.stream_chunks_total,
            "round_trips": self.stream_round_trips_total,
            "stalls": self.stream_stalls_total,
            "open_streams": len(self._streams),
        }

    def stats(self) -> Dict[str, object]:
        """The server engine's :meth:`~repro.Engine.stats`, plus a ``net``
        section with this client's transport counters."""
        payload = self._call("stats")
        payload["net"] = self.net_stats()
        return payload

    def metrics(self) -> Dict[str, object]:
        """The server engine's metrics, overlaid with this client's
        ``net_*`` histograms/counters (client-side names win on collision:
        ``stream_credit_window`` is the *client's* window)."""
        payload = self._call("metrics")
        payload.update(self._metrics.snapshot())
        return payload

    def events(self) -> List[Dict[str, object]]:
        """The server engine's merged operational event log."""
        return self._call("events")

    def ping(self) -> str:
        return self._call("ping")

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the connection (idempotent); server-side state is dropped
        by the server's disconnect handling."""
        if self._closed:
            return
        self._closed = True
        for stream in list(self._streams.values()):
            stream.closed = True
            stream.done = True
        self._streams.clear()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "RemoteEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover — best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self._closed else "open"
        return f"RemoteEngine({state}, documents={len(self._documents)})"
