"""Per-document enumeration runtimes with update support, result types and
the baselines of Table 1.

The unified public front door is :class:`repro.Engine`;
:class:`TreeEnumerator` / :class:`WordEnumerator` are deprecated aliases of
the :class:`TreeRuntime` / :class:`WordRuntime` building blocks."""

from repro.core.enumerator import TreeEnumerator, TreeRuntime, WordEnumerator, WordRuntime
from repro.core.results import EnumeratorStats, UpdateStats
from repro.core.baselines import (
    BaselineStrategy,
    RecomputeTreeEnumerator,
    RelabelOnlyTreeEnumerator,
)

__all__ = [
    "TreeRuntime",
    "WordRuntime",
    "TreeEnumerator",
    "WordEnumerator",
    "EnumeratorStats",
    "UpdateStats",
    "BaselineStrategy",
    "RecomputeTreeEnumerator",
    "RelabelOnlyTreeEnumerator",
]
