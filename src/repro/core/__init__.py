"""High-level public API: tree and word enumerators with update support,
result types and the baselines of Table 1."""

from repro.core.enumerator import TreeEnumerator, WordEnumerator
from repro.core.results import EnumeratorStats, UpdateStats
from repro.core.baselines import (
    BaselineStrategy,
    RecomputeTreeEnumerator,
    RelabelOnlyTreeEnumerator,
)

__all__ = [
    "TreeEnumerator",
    "WordEnumerator",
    "EnumeratorStats",
    "UpdateStats",
    "BaselineStrategy",
    "RecomputeTreeEnumerator",
    "RelabelOnlyTreeEnumerator",
]
