"""The per-document enumeration runtimes: trees (Theorem 8.1) and words (Theorem 8.5).

:class:`TreeRuntime` is the end-to-end object of the paper: given an
unranked tree and a (generally nondeterministic) unranked tree variable
automaton, it

1. translates the automaton to a binary TVA on forest-algebra terms
   (Lemma 7.4) and homogenizes it (Lemma 2.1);
2. encodes the tree as a balanced term (Section 7) and builds the assignment
   circuit (Lemma 3.7) and enumeration index (Lemma 6.3) bottom-up over it;
3. enumerates the satisfying assignments without duplicates with
   output-linear delay (Theorem 6.5 / Theorem 8.1);
4. supports the edit operations of Definition 7.1 by rebuilding only the
   trunk of the corresponding hollowing (Lemma 7.3) — logarithmic work per
   update — after which enumeration restarts on the updated tree.

:class:`WordRuntime` is the word specialization (Corollary 8.4 /
Theorem 8.5), used for document spanners: the query is a word variable
automaton (for instance compiled from a regex with capture variables by
:mod:`repro.spanners`), answers bind variables to word positions, and the
supported updates are character insertion, deletion and replacement.

The runtimes are the building blocks of the public :class:`repro.Engine`
(one maintained document each); the historical public classes
:class:`TreeEnumerator` / :class:`WordEnumerator` are deprecated aliases
kept for backward compatibility — they behave identically but emit a
:class:`DeprecationWarning` pointing at the engine equivalent.

Materialization boundary
------------------------
On the default ``bitset`` backend the enumeration below these classes is
mask-native end to end (:mod:`repro.enumeration.duplicate_free`): answers
travel as nested tuples of var-gate assignments and provenance as Γ-position
bitmasks.  The public :class:`~repro.assignments.Assignment` objects are
materialized exactly once per answer at the
:meth:`~repro.enumeration.assignment_iter.CircuitEnumerator.assignments`
boundary the classes here consume, and provenance *sets* of ∪-gates are only
ever built when a caller asks for them through
:func:`repro.enumeration.duplicate_free.enumerate_boxed_set` — nothing in the
``assignments()`` / ``count()`` / ``delay_probe()`` paths allocates them.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.assignments import Assignment, valuation_from_assignment
from repro.automata.homogenize import homogenize
from repro.automata.translate import translate_unranked_tva, translate_wva
from repro.automata.unranked_tva import UnrankedTVA
from repro.automata.wva import WVA
from repro.core.results import EnumeratorStats, UpdateStats, assignment_to_tuple
from repro.circuits.dnnf import circuit_stats
from repro.enumeration.assignment_iter import CircuitEnumerator
from repro.errors import InvalidEditError, StaleIteratorError
from repro.forest_algebra.maintenance import MaintainedTerm
from repro.forest_algebra.word_maintenance import MaintainedWordTerm
from repro.incremental.maintainer import IncrementalCircuitMaintainer
from repro.trees.edits import Delete, EditOperation, Insert, InsertRight, Relabel
from repro.trees.unranked import UnrankedNode, UnrankedTree

__all__ = [
    "TreeRuntime",
    "WordRuntime",
    "TreeEnumerator",
    "WordEnumerator",
    "query_content_key",
    "compiled_automaton_for",
    "seed_compiled_query",
]


#: content-keyed cache of compiled (translated + homogenized) queries,
#: bounded so a server compiling many distinct ad-hoc queries cannot grow
#: memory without limit (each entry also carries the automaton's box plans).
_COMPILED_QUERIES: Dict[Tuple, object] = {}
_COMPILED_QUERIES_LIMIT = 128


def query_content_key(query) -> Optional[Tuple]:
    """The in-process content key of a query (``None`` for unknown types).

    Two queries with equal content share one compiled automaton through this
    key; :mod:`repro.serving` uses the stable cross-process digest of
    :func:`repro.automata.serialize.query_digest` for the same purpose on
    disk.
    """
    if isinstance(query, UnrankedTVA):
        return ("tva", query.states, query.variables, query.initial, query.delta, query.final)
    if isinstance(query, WVA):
        return ("wva", query.states, query.variables, query.transitions, query.initial, query.final)
    return None


def _binary_automaton_for(query, translate):
    """Translate + homogenize a query, memoized on the query's *content*.

    Translation is a pure function of the query, so building several
    enumerators for equal queries — one query over many documents is the
    common serving scenario — compiles once and shares the resulting binary
    automaton, including the box plans the circuit construction attaches to
    it.  An instance-level attribute short-circuits the content hash for
    repeated use of the same query object.
    """
    cached = getattr(query, "_binary_automaton_cache", None)
    if cached is not None:
        return cached
    key = query_content_key(query)
    cached = _COMPILED_QUERIES.get(key) if key is not None else None
    if cached is None:
        cached = homogenize(translate(query))
        if key is not None:
            if len(_COMPILED_QUERIES) >= _COMPILED_QUERIES_LIMIT:
                # FIFO eviction is enough here: the cache exists for the
                # one-query-many-documents pattern, not as a tuned LRU.
                _COMPILED_QUERIES.pop(next(iter(_COMPILED_QUERIES)))
            _COMPILED_QUERIES[key] = cached
    try:
        query._binary_automaton_cache = cached
    except AttributeError:  # query classes with __slots__: just skip caching
        pass
    return cached


def compiled_automaton_for(query):
    """The compiled (translated + homogenized) binary automaton of a query.

    Dispatches on the query type — :class:`UnrankedTVA` (Lemma 7.4) or
    :class:`WVA` (Theorem 8.5) — and shares the in-process content-keyed
    cache the enumerators use, so serving code and enumerators built for the
    same query content get the *same* automaton object (and hence share its
    box plans).
    """
    if isinstance(query, UnrankedTVA):
        return _binary_automaton_for(query, translate_unranked_tva)
    if isinstance(query, WVA):
        return _binary_automaton_for(query, translate_wva)
    raise TypeError(
        f"cannot compile {type(query).__name__}; expected an UnrankedTVA or a WVA"
    )


def seed_compiled_query(query, automaton) -> None:
    """Install an externally obtained compiled automaton for a query.

    Used by :class:`repro.serving.QueryCatalog` after loading a persisted
    compiled query: the automaton is attached to the query object and entered
    into the content-keyed cache, so every later
    :class:`TreeEnumerator`/:class:`WordEnumerator` for this query content
    skips translate + homogenize + plan compilation entirely.
    """
    key = query_content_key(query)
    if key is not None:
        if key not in _COMPILED_QUERIES and len(_COMPILED_QUERIES) >= _COMPILED_QUERIES_LIMIT:
            _COMPILED_QUERIES.pop(next(iter(_COMPILED_QUERIES)))
        _COMPILED_QUERIES[key] = automaton
    try:
        query._binary_automaton_cache = automaton
    except AttributeError:
        pass


class TreeRuntime:
    """Enumerate the answers of an unranked TVA on an unranked tree, under updates."""

    def __init__(
        self,
        tree: UnrankedTree,
        query: UnrankedTVA,
        relation_backend: Optional[str] = None,
        copy_tree: bool = True,
        build_cache=None,
    ):
        start = time.perf_counter()
        self.query = query
        #: reference copy of the tree, kept in sync with the index structures
        self.tree = tree.copy() if copy_tree else tree
        self.binary_automaton = _binary_automaton_for(query, translate_unranked_tva)
        self.term = MaintainedTerm(self.tree)
        self.maintainer = IncrementalCircuitMaintainer(
            self.term,
            self.binary_automaton,
            relation_backend=relation_backend,
            build_cache=build_cache,
        )
        self._preprocessing_seconds = time.perf_counter() - start
        self._version = 0

    # ------------------------------------------------------------------ stats
    def stats(self) -> EnumeratorStats:
        """Preprocessing statistics (sizes, width, wall-clock time)."""
        stats = circuit_stats(self.maintainer.circuit())
        return EnumeratorStats(
            tree_size=self.tree.size(),
            term_size=self.term.size(),
            term_height=self.term.height(),
            automaton_states=len(self.binary_automaton.states),
            circuit_width=stats.width,
            circuit_gates=stats.gate_count(),
            preprocessing_seconds=self._preprocessing_seconds,
        )

    # -------------------------------------------------------------- enumeration
    def assignments(self) -> Iterator[Assignment]:
        """Enumerate the satisfying assignments (sets of ``(variable, node id)``).

        The iterator is invalidated by updates: advancing it after an update
        raises :class:`~repro.errors.StaleIteratorError`, as the paper's model
        requires restarting enumeration after each update.
        """
        # The version is captured *eagerly* (this is not a generator): an
        # update or removal landing between creating the iterator and its
        # first answer must invalidate it too.
        version = self._version
        enumerator = self.maintainer.enumerator()

        def iterate() -> Iterator[Assignment]:
            for assignment in enumerator.assignments():
                if self._version != version:
                    raise StaleIteratorError("the tree was updated; restart the enumeration")
                yield assignment

        return iterate()

    def __iter__(self) -> Iterator[Assignment]:
        return self.assignments()

    def invalidate_iterators(self) -> None:
        """Make every live :meth:`assignments` iterator raise on its next answer.

        Updates do this implicitly; the serving layer calls it when a
        document is removed, so a stream over a dropped document fails the
        same way in local and sharded mode.
        """
        self._version += 1

    def valuations(self) -> Iterator[Dict[int, FrozenSet[object]]]:
        """Enumerate answers as valuations (node id → set of variables)."""
        for assignment in self.assignments():
            yield valuation_from_assignment(assignment)

    def answer_tuples(self, variables: Optional[Sequence[object]] = None) -> Iterator[Tuple]:
        """Enumerate answers as tuples of node ids, for first-order-style queries."""
        order = tuple(variables) if variables is not None else tuple(sorted(self.query.variables, key=repr))
        for assignment in self.assignments():
            yield assignment_to_tuple(assignment, order)

    def count(self, limit: Optional[int] = None) -> int:
        """Count the answers by enumerating them (early stop at ``limit``)."""
        total = 0
        for _ in self.assignments():
            total += 1
            if limit is not None and total >= limit:
                break
        return total

    def first(self, k: int) -> List[Assignment]:
        """The first ``k`` answers."""
        result: List[Assignment] = []
        for assignment in self.assignments():
            result.append(assignment)
            if len(result) >= k:
                break
        return result

    def delay_probe(self, max_answers: Optional[int] = None) -> List[float]:
        """Wall-clock delays before each answer (for the delay experiments)."""
        return self.maintainer.enumerator().delay_probe(max_answers=max_answers)

    # ------------------------------------------------------------------ updates
    def _apply_term_update(self, edit: EditOperation, new_node: Optional[UnrankedNode]) -> UpdateStats:
        start = time.perf_counter()
        new_id = new_node.node_id if new_node is not None else None
        if isinstance(edit, (Insert, InsertRight)):
            report = self.term.apply_edit(edit, new_node_id=new_id)
        else:
            report = self.term.apply_edit(edit)
        trunk = self.maintainer.apply_report(report)
        self._version += 1
        return UpdateStats(
            trunk_size=trunk,
            rebuilt_subterm_size=report.rebuilt_subterm_size,
            seconds=time.perf_counter() - start,
            new_node_id=new_id,
        )

    def apply(self, edit: EditOperation) -> UpdateStats:
        """Apply one edit operation of Definition 7.1 to the tree."""
        new_node = edit.apply_to_tree(self.tree)
        return self._apply_term_update(edit, new_node if isinstance(edit, (Insert, InsertRight)) else None)

    def relabel(self, node_id: int, label: object) -> UpdateStats:
        """``relabel(n, l)``."""
        return self.apply(Relabel(node_id, label))

    def insert_first_child(self, parent_id: int, label: object) -> UpdateStats:
        """``insert(n, l)``; the new node's id is in ``UpdateStats.new_node_id``."""
        return self.apply(Insert(parent_id, label))

    def insert_right_sibling(self, anchor_id: int, label: object) -> UpdateStats:
        """``insertR(n, l)``; the new node's id is in ``UpdateStats.new_node_id``."""
        return self.apply(InsertRight(anchor_id, label))

    def delete_leaf(self, node_id: int) -> UpdateStats:
        """``delete(n)`` (``n`` must be a leaf)."""
        return self.apply(Delete(node_id))


class WordRuntime:
    """Enumerate the matches of a WVA (document spanner) on a word, under updates."""

    def __init__(
        self,
        word: Sequence[object],
        query: WVA,
        relation_backend: Optional[str] = None,
        build_cache=None,
    ):
        if len(word) == 0:
            raise InvalidEditError("words must be non-empty")
        start = time.perf_counter()
        self.query = query
        self.binary_automaton = _binary_automaton_for(query, translate_wva)
        self.term = MaintainedWordTerm(list(word))
        self.maintainer = IncrementalCircuitMaintainer(
            self.term,
            self.binary_automaton,
            relation_backend=relation_backend,
            build_cache=build_cache,
        )
        self._preprocessing_seconds = time.perf_counter() - start
        self._version = 0

    # ------------------------------------------------------------------ views
    def word(self) -> List[object]:
        """The current word (letters left to right)."""
        return self.term.letters()

    def position_ids(self) -> List[int]:
        """Stable position ids, left to right (answers refer to these)."""
        return self.term.position_ids()

    def stats(self) -> EnumeratorStats:
        """Preprocessing statistics."""
        stats = circuit_stats(self.maintainer.circuit())
        return EnumeratorStats(
            tree_size=self.term.size(),
            term_size=self.term.size(),
            term_height=self.term.height(),
            automaton_states=len(self.binary_automaton.states),
            circuit_width=stats.width,
            circuit_gates=stats.gate_count(),
            preprocessing_seconds=self._preprocessing_seconds,
        )

    # -------------------------------------------------------------- enumeration
    def assignments(self) -> Iterator[Assignment]:
        """Enumerate the satisfying assignments (sets of ``(variable, position id)``)."""
        # Eager version capture — see :meth:`TreeRuntime.assignments`.
        version = self._version
        enumerator = self.maintainer.enumerator()

        def iterate() -> Iterator[Assignment]:
            for assignment in enumerator.assignments():
                if self._version != version:
                    raise StaleIteratorError("the word was updated; restart the enumeration")
                yield assignment

        return iterate()

    def __iter__(self) -> Iterator[Assignment]:
        return self.assignments()

    def invalidate_iterators(self) -> None:
        """Make every live :meth:`assignments` iterator raise on its next answer
        (see :meth:`TreeRuntime.invalidate_iterators`)."""
        self._version += 1

    def assignments_by_index(self) -> Iterator[Assignment]:
        """Answers with positions given as current 0-based indices (not stable ids)."""
        index_of = {pos_id: index for index, pos_id in enumerate(self.position_ids())}
        for assignment in self.assignments():
            yield frozenset((var, index_of[pos_id]) for var, pos_id in assignment)

    def count(self, limit: Optional[int] = None) -> int:
        """Count the answers by enumerating them."""
        total = 0
        for _ in self.assignments():
            total += 1
            if limit is not None and total >= limit:
                break
        return total

    def delay_probe(self, max_answers: Optional[int] = None) -> List[float]:
        """Wall-clock delays before each answer."""
        return self.maintainer.enumerator().delay_probe(max_answers=max_answers)

    # ------------------------------------------------------------------ updates
    def _finish_update(self, report, start: float, new_position_id: Optional[int] = None) -> UpdateStats:
        trunk = self.maintainer.apply_report(report)
        self._version += 1
        return UpdateStats(
            trunk_size=trunk,
            rebuilt_subterm_size=report.rebuilt_subterm_size,
            seconds=time.perf_counter() - start,
            new_position_id=new_position_id,
        )

    def replace(self, position_id: int, letter: object) -> UpdateStats:
        """Replace the letter at a position."""
        start = time.perf_counter()
        report = self.term.replace(position_id, letter)
        return self._finish_update(report, start)

    def insert_after(self, position_id: Optional[int], letter: object) -> UpdateStats:
        """Insert a letter after a position (``None`` = at the front)."""
        start = time.perf_counter()
        report = self.term.insert_after(position_id, letter)
        return self._finish_update(report, start, getattr(report, "new_position_id", None))

    def delete(self, position_id: int) -> UpdateStats:
        """Delete a position."""
        start = time.perf_counter()
        report = self.term.delete(position_id)
        return self._finish_update(report, start)


# --------------------------------------------------------------- legacy shims
def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        "(see the migration table in README.md)",
        DeprecationWarning,
        stacklevel=3,
    )


class TreeEnumerator(TreeRuntime):
    """Deprecated alias of :class:`TreeRuntime`.

    Use ``repro.Engine().add_tree(tree, query)`` — the returned
    :class:`repro.engine.Document` exposes the same enumeration
    (``stream()``), updates (``apply_edits()``) and statistics through the
    unified engine API.  This shim behaves identically to :class:`TreeRuntime`
    but emits a :class:`DeprecationWarning` at construction.
    """

    def __init__(self, *args, **kwargs):
        _warn_deprecated("repro.core.enumerator.TreeEnumerator", "repro.Engine().add_tree(...)")
        super().__init__(*args, **kwargs)


class WordEnumerator(WordRuntime):
    """Deprecated alias of :class:`WordRuntime`.

    Use ``repro.Engine().add_word(word, query)``; see :class:`TreeEnumerator`.
    """

    def __init__(self, *args, **kwargs):
        _warn_deprecated("repro.core.enumerator.WordEnumerator", "repro.Engine().add_word(...)")
        super().__init__(*args, **kwargs)
