"""Baseline enumerators corresponding to the prior work rows of Table 1.

The paper's Table 1 compares update-aware enumeration algorithms for MSO on
trees.  We implement three executable reference points to benchmark the main
algorithm against (experiment E1):

* :class:`MaterializingEnumerator` — the naive approach: materialize the full
  answer set with the brute-force oracle; every update recomputes it from
  scratch.  Exponential-size state, trivially constant delay, O(answer set)
  update time.  Only usable on small instances (it is the ground truth).
* :class:`RecomputeTreeEnumerator` — the static algorithms of Bagan [8] /
  Kazana–Segoufin [25]: linear preprocessing and output-linear delay, but no
  update support — every update rebuilds the term, circuit and index from
  scratch (Θ(|T|) per update).
* :class:`RelabelOnlyTreeEnumerator` — Amarilli, Bourhis, Mengel [4]: same
  data structure as the main algorithm, but only *relabeling* updates are
  handled incrementally; structural updates (leaf insertions/deletions) either
  raise :class:`~repro.errors.UnsupportedUpdateError` or, in ``fallback``
  mode, trigger a full rebuild.

The main algorithm of this paper is :class:`repro.core.enumerator.TreeRuntime`
itself: constant-ish delay *and* logarithmic structural updates.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Sequence, Set

from repro.assignments import Assignment
from repro.automata.brute_force import unranked_satisfying_assignments
from repro.automata.unranked_tva import UnrankedTVA
from repro.core.enumerator import TreeRuntime
from repro.core.results import UpdateStats
from repro.errors import UnsupportedUpdateError
from repro.trees.edits import Delete, EditOperation, Insert, InsertRight, Relabel
from repro.trees.unranked import UnrankedTree

__all__ = [
    "BaselineStrategy",
    "MaterializingEnumerator",
    "RecomputeTreeEnumerator",
    "RelabelOnlyTreeEnumerator",
    "make_enumerator",
]

#: names accepted by :func:`make_enumerator`
BaselineStrategy = ("this-paper", "recompute", "relabel-only", "materialize")


class MaterializingEnumerator:
    """Materialize all answers with the brute-force oracle (tiny inputs only)."""

    def __init__(self, tree: UnrankedTree, query: UnrankedTVA):
        self.query = query
        self.tree = tree.copy()
        self._answers: List[Assignment] = []
        self._recompute()

    def _recompute(self) -> None:
        self._answers = sorted(
            unranked_satisfying_assignments(self.query, self.tree),
            key=lambda a: sorted((repr(v), n) for v, n in a),
        )

    def assignments(self) -> Iterator[Assignment]:
        return iter(list(self._answers))

    def count(self) -> int:
        return len(self._answers)

    def apply(self, edit: EditOperation) -> UpdateStats:
        start = time.perf_counter()
        edit.apply_to_tree(self.tree)
        self._recompute()
        return UpdateStats(
            trunk_size=self.tree.size(),
            rebuilt_subterm_size=self.tree.size(),
            seconds=time.perf_counter() - start,
        )


class RecomputeTreeEnumerator:
    """Static enumeration (Bagan / Kazana–Segoufin): rebuild everything on update."""

    def __init__(self, tree: UnrankedTree, query: UnrankedTVA, relation_backend: Optional[str] = None):
        self.query = query
        self.relation_backend = relation_backend
        self.tree = tree.copy()
        self._inner = TreeRuntime(self.tree, query, relation_backend=relation_backend, copy_tree=True)

    def assignments(self) -> Iterator[Assignment]:
        """Enumerate answers (same guarantees as the static Theorem 6.5 pipeline)."""
        return self._inner.assignments()

    def __iter__(self) -> Iterator[Assignment]:
        return self.assignments()

    def count(self, limit: Optional[int] = None) -> int:
        return self._inner.count(limit=limit)

    def delay_probe(self, max_answers: Optional[int] = None) -> List[float]:
        return self._inner.delay_probe(max_answers=max_answers)

    def stats(self):
        return self._inner.stats()

    def apply(self, edit: EditOperation) -> UpdateStats:
        """Apply an edit by rebuilding the whole enumeration structure."""
        start = time.perf_counter()
        edit.apply_to_tree(self.tree)
        self._inner = TreeRuntime(
            self.tree, self.query, relation_backend=self.relation_backend, copy_tree=True
        )
        return UpdateStats(
            trunk_size=self.tree.size(),
            rebuilt_subterm_size=self.tree.size(),
            seconds=time.perf_counter() - start,
        )

    # Convenience mirrors of the TreeEnumerator API.
    def relabel(self, node_id: int, label: object) -> UpdateStats:
        return self.apply(Relabel(node_id, label))

    def insert_first_child(self, parent_id: int, label: object) -> UpdateStats:
        return self.apply(Insert(parent_id, label))

    def insert_right_sibling(self, anchor_id: int, label: object) -> UpdateStats:
        return self.apply(InsertRight(anchor_id, label))

    def delete_leaf(self, node_id: int) -> UpdateStats:
        return self.apply(Delete(node_id))


class RelabelOnlyTreeEnumerator:
    """The relabeling-only algorithm of [4]: incremental relabels, no structural updates."""

    def __init__(
        self,
        tree: UnrankedTree,
        query: UnrankedTVA,
        relation_backend: Optional[str] = None,
        fallback: bool = True,
    ):
        self.query = query
        self.relation_backend = relation_backend
        #: if True, structural updates fall back to a full rebuild instead of failing
        self.fallback = fallback
        self.tree = tree.copy()
        self._inner = TreeRuntime(self.tree, query, relation_backend=relation_backend, copy_tree=True)

    def assignments(self) -> Iterator[Assignment]:
        return self._inner.assignments()

    def __iter__(self) -> Iterator[Assignment]:
        return self.assignments()

    def count(self, limit: Optional[int] = None) -> int:
        return self._inner.count(limit=limit)

    def delay_probe(self, max_answers: Optional[int] = None) -> List[float]:
        return self._inner.delay_probe(max_answers=max_answers)

    def stats(self):
        return self._inner.stats()

    def apply(self, edit: EditOperation) -> UpdateStats:
        if isinstance(edit, Relabel):
            # Relabels go through the incremental machinery, exactly as in [4].
            stats = self._inner.apply(edit)
            edit.apply_to_tree(self.tree)
            return stats
        if not self.fallback:
            raise UnsupportedUpdateError(
                "the relabeling-only baseline does not support structural updates"
            )
        start = time.perf_counter()
        edit.apply_to_tree(self.tree)
        self._inner = TreeRuntime(
            self.tree, self.query, relation_backend=self.relation_backend, copy_tree=True
        )
        return UpdateStats(
            trunk_size=self.tree.size(),
            rebuilt_subterm_size=self.tree.size(),
            seconds=time.perf_counter() - start,
        )

    def relabel(self, node_id: int, label: object) -> UpdateStats:
        return self.apply(Relabel(node_id, label))

    def insert_first_child(self, parent_id: int, label: object) -> UpdateStats:
        return self.apply(Insert(parent_id, label))

    def delete_leaf(self, node_id: int) -> UpdateStats:
        return self.apply(Delete(node_id))


def make_enumerator(strategy: str, tree: UnrankedTree, query: UnrankedTVA, **kwargs):
    """Factory used by the benchmarks: build an enumerator for a Table 1 row."""
    if strategy == "this-paper":
        return TreeRuntime(tree, query, **kwargs)
    if strategy == "recompute":
        return RecomputeTreeEnumerator(tree, query, **kwargs)
    if strategy == "relabel-only":
        return RelabelOnlyTreeEnumerator(tree, query, **kwargs)
    if strategy == "materialize":
        return MaterializingEnumerator(tree, query)
    raise ValueError(f"unknown strategy {strategy!r}; expected one of {BaselineStrategy}")
