"""Result and statistics types returned by the high-level enumerators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.assignments import Assignment, valuation_from_assignment

__all__ = ["EnumeratorStats", "UpdateStats", "assignment_to_tuple"]


@dataclass(frozen=True)
class EnumeratorStats:
    """Preprocessing statistics of a :class:`~repro.core.enumerator.TreeEnumerator`.

    Attributes
    ----------
    tree_size:
        Number of nodes of the (unranked) input tree.
    term_size / term_height:
        Size and height of the balanced forest-algebra term.
    automaton_states / circuit_width:
        Number of states of the translated homogenized automaton, and the
        actual circuit width (maximum number of ∪-gates in a box) — the
        quantity the delay of Theorem 6.5 is polynomial in.
    circuit_gates:
        Total number of circuit gates (linear in the tree, Lemma 3.7).
    preprocessing_seconds:
        Wall-clock time spent building the term, circuit and index.
    """

    tree_size: int
    term_size: int
    term_height: int
    automaton_states: int
    circuit_width: int
    circuit_gates: int
    preprocessing_seconds: float


@dataclass(frozen=True)
class UpdateStats:
    """What one update cost.

    ``trunk_size`` is the number of circuit boxes rebuilt (Lemma 7.3 bounds
    it by ``O(log |T|)`` for non-rebalancing updates); ``rebuilt_subterm_size``
    is non-zero when the balancing layer re-encoded a subterm (amortized).
    """

    trunk_size: int
    rebuilt_subterm_size: int
    seconds: float
    new_node_id: Optional[int] = None
    new_position_id: Optional[int] = None


def assignment_to_tuple(assignment: Assignment, variables: Tuple[object, ...]) -> Tuple[Optional[int], ...]:
    """Convert an assignment with first-order semantics into an answer tuple.

    For queries where every variable is bound to exactly one node (the
    free first-order variables of Corollary 8.3), the assignment
    ``{⟨x:3⟩, ⟨y:7⟩}`` becomes the tuple ``(3, 7)`` for ``variables=("x","y")``.
    Variables not bound in the assignment yield ``None``.
    """
    by_var: Dict[object, int] = {}
    for var, node_id in assignment:
        by_var[var] = node_id
    return tuple(by_var.get(var) for var in variables)
