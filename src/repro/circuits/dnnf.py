"""Validation and statistics for complete structured DNNFs (Definitions 3.4–3.6).

``validate_circuit`` checks every requirement the enumeration algorithms rely
on:

* fan-in rules of set circuits (×-gates have 2 inputs, ∪-gates ≥ 1, ⊤/⊥/var
  gates have none — the latter holds by construction since ⊤/⊥ are sentinels
  and var-gates store no inputs);
* ⊤ and ⊥ are never used as inputs (they only appear in ``state_gate``);
* structuring: every input of a gate is either in the same box or is a
  ∪-gate of a child box; the two inputs of a ×-gate are ∪-gates of the left
  and right child boxes respectively; var-gates only occur in leaf boxes and
  their variables mention only that leaf;
* the extra normalization assumed by the index of Section 6: no ∪→∪ wire
  stays within a single box;
* every ∪-gate is the value ``γ(n, q)`` for its state, and slots are
  consistent with the box's gate list.

``circuit_stats`` reports width, depth, gate counts and the per-box maxima
used to check the width bound of Lemma 3.7 (width ≤ |Q|, ×-gates ≤ width²).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.circuits.gates import (
    BOTTOM,
    TOP,
    AssignmentCircuit,
    Box,
    ProdGate,
    UnionGate,
    VarGate,
)
from repro.errors import CircuitStructureError

__all__ = ["validate_circuit", "circuit_stats", "CircuitStats"]


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of an assignment circuit."""

    boxes: int
    width: int
    depth: int
    union_gates: int
    prod_gates: int
    var_gates: int
    max_prod_gates_in_box: int
    max_fan_in: int

    def gate_count(self) -> int:
        """Total number of (non-sentinel) gates."""
        return self.union_gates + self.prod_gates + self.var_gates


def _validate_box(box: Box) -> None:
    children = box.children()
    for slot, gate in enumerate(box.union_gates):
        if gate.slot != slot or gate.box is not box:
            raise CircuitStructureError("∪-gate slot bookkeeping is inconsistent")
        if not gate.inputs:
            raise CircuitStructureError("∪-gate with no inputs")
        for inp in gate.inputs:
            if inp is TOP or inp is BOTTOM:
                raise CircuitStructureError("⊤/⊥ used as input of a ∪-gate")
            if isinstance(inp, UnionGate):
                if inp.box is box:
                    raise CircuitStructureError(
                        "∪→∪ wire inside a box (normalization assumed by the index)"
                    )
                if inp.box not in children:
                    raise CircuitStructureError("∪-gate input from a non-child box")
            elif isinstance(inp, (VarGate, ProdGate)):
                if inp.box is not box:
                    raise CircuitStructureError("var/×-gate input from a different box")
            else:
                raise CircuitStructureError(f"unknown input object {inp!r}")
    for gate in box.prod_gates:
        if box.is_leaf_box():
            raise CircuitStructureError("×-gate in a leaf box")
        if not isinstance(gate.left, UnionGate) or not isinstance(gate.right, UnionGate):
            raise CircuitStructureError("×-gate inputs must be ∪-gates")
        if gate.left.box is not box.left_child or gate.right.box is not box.right_child:
            raise CircuitStructureError(
                "×-gate inputs must be ∪-gates of the left and right child boxes"
            )
    for gate in box.var_gates:
        if not box.is_leaf_box():
            raise CircuitStructureError("var-gate in an internal box")
        payload_nodes = {node_id for _var, node_id in gate.assignment}
        if payload_nodes and payload_nodes != {box.leaf_payload}:
            raise CircuitStructureError("var-gate mentions a different leaf than its box")
        if not gate.assignment:
            raise CircuitStructureError("var-gate with an empty variable set")
    # Svar injectivity within the box.
    assignments = [g.assignment for g in box.var_gates]
    if len(assignments) != len(set(assignments)):
        raise CircuitStructureError("two var-gates of the same box share the same Svar")
    # state_gate values must be gates of this box or sentinels.
    for state, gate in box.state_gate.items():
        if gate is TOP or gate is BOTTOM:
            continue
        if not isinstance(gate, UnionGate) or gate.box is not box:
            raise CircuitStructureError("state_gate must map to ⊤, ⊥ or a ∪-gate of the box")


def validate_circuit(circuit: AssignmentCircuit) -> None:
    """Validate all structured-DNNF invariants; raise :class:`CircuitStructureError`."""
    width_bound = len(circuit.automaton.states)
    for box in circuit.boxes():
        _validate_box(box)
        if box.width() > width_bound:
            raise CircuitStructureError(
                f"box width {box.width()} exceeds |Q| = {width_bound} (Lemma 3.7)"
            )
        if len(box.prod_gates) > width_bound * width_bound:
            raise CircuitStructureError("box has more than width² ×-gates")


def circuit_stats(circuit: AssignmentCircuit) -> CircuitStats:
    """Compute summary statistics of the circuit."""
    boxes = 0
    width = 0
    unions = 0
    prods = 0
    var_gates = 0
    max_prods = 0
    max_fan_in = 0
    for box in circuit.boxes():
        boxes += 1
        width = max(width, box.width())
        unions += len(box.union_gates)
        prods += len(box.prod_gates)
        var_gates += len(box.var_gates)
        max_prods = max(max_prods, len(box.prod_gates))
        for gate in box.union_gates:
            max_fan_in = max(max_fan_in, len(gate.inputs))
    return CircuitStats(
        boxes=boxes,
        width=width,
        depth=circuit.depth(),
        union_gates=unions,
        prod_gates=prods,
        var_gates=var_gates,
        max_prod_gates_in_box=max_prods,
        max_fan_in=max_fan_in,
    )
