"""The v-tree view of an assignment circuit (Definition 3.4).

For the circuits built by Lemma 3.7 the v-tree is the input binary tree
itself: each leaf of the v-tree is labelled by the set of singletons
``{⟨Z : n⟩ | Z ∈ X}`` of the corresponding tree leaf, and the structuring
function maps the gates built for node ``n`` to the v-tree node ``n``.  The
library therefore does not materialize a separate v-tree object; this module
provides the explicit view for users who want to inspect it (and for the
tests that check Definition 3.4 directly).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.circuits.gates import AssignmentCircuit, Box

__all__ = ["vtree_leaf_labels", "vtree_partition_is_valid", "iter_vtree_edges"]


def vtree_leaf_labels(circuit: AssignmentCircuit) -> Dict[int, FrozenSet[Tuple[object, int]]]:
    """Return, for every leaf box, the set of singletons labelling that v-tree leaf.

    Keys are the leaf payloads (tree node ids); values are the singleton sets
    ``{⟨Z : n⟩ | Z ∈ X}``.
    """
    variables = circuit.automaton.variables
    result: Dict[int, FrozenSet[Tuple[object, int]]] = {}
    for box in circuit.boxes():
        if box.is_leaf_box():
            payload = box.leaf_payload
            result[payload] = frozenset((var, payload) for var in variables)
    return result


def vtree_partition_is_valid(circuit: AssignmentCircuit) -> bool:
    """Check that the leaf labels form a partition of the circuit variables.

    Every var-gate's singleton set must be included in the label of its leaf,
    and the labels of distinct leaves must be disjoint (they mention distinct
    tree nodes, so this holds by construction; the check guards against
    accidental payload collisions after updates).
    """
    labels = vtree_leaf_labels(circuit)
    seen: set = set()
    for payload, label in labels.items():
        if label & seen:
            return False
        seen |= label
    for box in circuit.boxes():
        for gate in box.var_gates:
            if not gate.assignment <= labels.get(box.leaf_payload, frozenset()):
                return False
    return True


def iter_vtree_edges(circuit: AssignmentCircuit) -> Iterator[Tuple[Box, Box]]:
    """Yield the (parent box, child box) edges of the v-tree in preorder."""
    stack: List[Box] = [circuit.root_box]
    while stack:
        box = stack.pop()
        for child in box.children():
            yield (box, child)
            stack.append(child)
