"""Set circuits, structured complete DNNFs and assignment circuits (Section 3)."""

from repro.circuits.gates import (
    BOTTOM,
    TOP,
    AssignmentCircuit,
    Box,
    ProdGate,
    UnionGate,
    VarGate,
)
from repro.circuits.build import (
    build_assignment_circuit,
    build_internal_box,
    build_leaf_box,
)
from repro.circuits.semantics import captured_set
from repro.circuits.dnnf import CircuitStats, circuit_stats, validate_circuit

__all__ = [
    "TOP",
    "BOTTOM",
    "VarGate",
    "ProdGate",
    "UnionGate",
    "Box",
    "AssignmentCircuit",
    "build_leaf_box",
    "build_internal_box",
    "build_assignment_circuit",
    "captured_set",
    "validate_circuit",
    "circuit_stats",
    "CircuitStats",
]
