"""Assignment-circuit construction (Lemma 3.7 / Appendix B).

Given a *homogenized* binary TVA and a binary tree, we build bottom-up, for
every tree node ``n``, a **box** containing the gates ``γ(n, q)`` for every
state ``q``:

* leaf node ``n`` with label ``l``:

  - 0-state ``q``: ``γ(n, q)`` is ⊤ if ``(l, ∅, q) ∈ ι`` and ⊥ otherwise;
  - 1-state ``q``: a ∪-gate over one var-gate ``⟨Y : n⟩`` per non-empty
    ``Y`` with ``(l, Y, q) ∈ ι`` (⊥ if there is none);

* internal node ``n`` with label ``l`` and children ``n1, n2``:

  - 0-state ``q``: ⊤ iff some ``(q1, q2, q) ∈ δ_l`` has both child gates ⊤;
  - 1-state ``q``: a ∪-gate over, for every ``(q1, q2, q) ∈ δ_l``, either a
    ×-gate on the two child ∪-gates, or — when one child gate is ⊤ — the
    other child ∪-gate directly (this is the trick that keeps ⊤/⊥ from ever
    being used as inputs).

The per-node work is proportional to the number of transitions that can fire
given the states present in the children, so the whole construction runs in
time ``O(|T| × |A|)`` and produces a complete structured DNNF of width
``|Q|`` and depth ``O(height(T))`` as stated by Lemma 3.7.

Box plans
---------
The gate structure of a box depends only on its label and on the *state
signature* of each child — which states are present and which of those are ⊤.
With a fixed automaton a large tree hits only a handful of distinct
signatures, so the construction memoizes, per automaton, a **box plan** for
every (label, left signature, right signature) triple it encounters: the
δ-product and all per-state classification work run once per distinct
signature, and every later box with the same signature is built by a single
cache lookup plus gate instantiation.  The box records its ∪-wiring
(``local_input``/``left_input_masks``/``right_input_masks``) as its gates are
created, which is what lets the index construction (Lemma 6.3) avoid
rescanning gate inputs.

Plans are stored **struct-of-arrays**: one flat table per gate kind rather
than one record per gate.  An :class:`_InternalPlan` keeps, in slot order,
the ∪-gate input descriptors (``slot_inputs``: ``(source, index)`` pairs
over left/right child ∪-gates and ×-gates), the ×-gate operand slots
(``prod_pairs``, also split into the two parallel tuples of
``enum_tables``), the transposed child wiring (``wire_masks``: child slot →
mask of box slots, lifted lazily into per-backend ``wire_rels`` Relations)
and the per-slot input masks; a :class:`_LeafPlan` keeps the distinct
var-gate variable sets (``var_sets``) and a per-∪-slot bitmask over them
(``slot_var_masks``).  Everything position-independent is computed once per
plan and *shared* by every box built from it; a freshly built box holds only
slot-indexed references into these tables, and its gate **objects** are
materialized lazily (``materialize_unions`` / ``materialize_prods`` /
``materialize_vars``) the first time something walks the circuit as gates —
the mask-native enumeration path reads the flat tables directly and never
creates them.

The two box builders are exposed separately because the incremental
maintenance of Section 7 (Lemma 7.3) re-invokes them on the trunk of each
tree hollowing; the plan cache lives on the automaton, so trunk rebuilds hit
the plans computed during preprocessing.

Above the per-automaton plan cache sits a second, cross-document layer: the
:class:`BuildCache` (see its section below) hash-conses whole *built*
subtrees — box plus enumeration index — across the documents of one store,
keyed by ``(automaton digest, relation backend, subtree content hash)``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.automata.binary_tva import BinaryTVA
from repro.circuits.gates import (
    BOTTOM,
    TOP,
    AssignmentCircuit,
    Box,
    ProdGate,
    UnionGate,
    VarGate,
)
from repro.errors import CircuitStructureError, NotHomogenizedError
from repro.trees.binary import BinaryNode, BinaryTree

__all__ = [
    "build_leaf_box",
    "build_internal_box",
    "build_assignment_circuit",
    "export_box_plans",
    "install_box_plans",
    "BuildCache",
    "DEFAULT_BUILD_CACHE_SIZE",
    "automaton_digest",
    "encode_content",
    "leaf_content_hash",
    "internal_content_hash",
]

# Input sources of a ∪-gate in an internal-box plan (paired with a slot or
# ×-gate index): the left child's ∪-gate (right gate was ⊤), the right
# child's ∪-gate (left gate was ⊤), or a ×-gate on the two child ∪-gates.
_IN_LEFT = 0
_IN_RIGHT = 1
_IN_PROD = 2


class _InternalPlan:
    """Slot-resolved recipe for building every box with a given signature.

    ``entries`` lists, in ``automaton.states`` order, either a sentinel value
    (⊤/⊥) or the inputs of the state's ∪-gate as (source, index) pairs with
    the child slots already resolved; ``prod_pairs`` lists the ×-gates to
    create as (left slot, right slot).  Everything that does not depend on
    the concrete child boxes is precomputed and *shared* by every box built
    from the plan: the transposed child wiring ``wire_masks`` (child slot →
    mask of box slots), the per-slot input masks, the local-input mask and
    the box's own state signature.
    """

    __slots__ = (
        "entries",
        "prod_pairs",
        "wire_masks",
        "wire_rels",
        "left_input_masks",
        "right_input_masks",
        "local_mask",
        "signature",
        "enum_tables",
        "n_unions",
        "slot_inputs",
    )

    def __init__(
        self,
        entries,
        prod_pairs,
        wire_masks,
        left_input_masks,
        right_input_masks,
        local_mask,
        signature,
        slot_prod_masks,
    ):
        self.entries = entries
        self.prod_pairs = prod_pairs
        self.wire_masks = wire_masks
        #: backend → (left Relation, right Relation), filled lazily by
        #: repro.enumeration.wiring.wire_relation and shared by every box
        #: built from this plan (relations are immutable).
        self.wire_rels = {}
        self.left_input_masks = left_input_masks
        self.right_input_masks = right_input_masks
        self.local_mask = local_mask
        self.signature = signature
        #: flattened gate tables for the mask-native enumeration of
        #: Algorithm 2 (internal boxes have no var-gates); shared by every
        #: box built from this plan — see Box.enum_tables.
        self.enum_tables = (
            (),
            (),
            tuple(a for a, _b in prod_pairs),
            tuple(b for _a, b in prod_pairs),
            slot_prod_masks,
        )
        self.n_unions = len(left_input_masks)
        #: per-∪-slot input descriptors, in slot order (the union-state
        #: subsequence of ``entries``); read by lazy gate materialization.
        self.slot_inputs = tuple(
            value for _state, value in entries if value.__class__ is tuple
        )

    # ----------------------------------------------- lazy gate materialization
    def materialize_unions(self, box: "Box"):
        """Create the box's ∪-gates and state_gate mapping (inputs stay lazy)."""
        return _materialize_unions(self, box)

    def materialize_prods(self, box: "Box"):
        """Create the box's ×-gates (needs only the children's ∪-gates)."""
        left_unions = box.left_child.union_gates
        right_unions = box.right_child.union_gates
        prods = [
            ProdGate(box, left_unions[a], right_unions[b]) for a, b in self.prod_pairs
        ]
        box._prod_gates = prods
        return prods

    def materialize_vars(self, box: "Box"):
        box._var_gates = []
        return box._var_gates

    def gate_inputs(self, box: "Box", slot: int):
        """Resolve the (source, index) descriptors of one ∪-slot to gate objects."""
        sources = (box.left_child.union_gates, box.right_child.union_gates, box.prod_gates)
        return tuple(sources[source][index] for source, index in self.slot_inputs[slot])

    def gate_counts(self, _box: "Box"):
        return (self.n_unions, len(self.prod_pairs), 0)


class _LeafPlan:
    """Recipe for building every leaf box with a given label.

    ``var_sets`` lists the distinct non-empty variable sets needing a
    var-gate; ``entries`` lists, per state, a sentinel (⊤/⊥) or the indices
    into ``var_sets`` feeding the state's ∪-gate; ``slot_var_masks`` is the
    same wiring as a per-∪-slot bitmask over var-gate indices (read by the
    mask-native enumeration of Algorithm 2).
    """

    __slots__ = (
        "entries",
        "var_sets",
        "local_mask",
        "signature",
        "slot_var_masks",
        "n_unions",
        "slot_inputs",
    )

    def __init__(self, entries, var_sets, local_mask, signature, slot_var_masks):
        self.entries = entries
        self.var_sets = var_sets
        self.local_mask = local_mask
        self.signature = signature
        self.slot_var_masks = slot_var_masks
        self.n_unions = len(slot_var_masks)
        #: per-∪-slot var-gate index tuples, in slot order (the union-state
        #: subsequence of ``entries``); read by lazy gate materialization.
        self.slot_inputs = tuple(
            value for _state, value in entries if value.__class__ is tuple
        )

    # ----------------------------------------------- lazy gate materialization
    def materialize_unions(self, box: "Box"):
        """Create the box's ∪-gates and state_gate mapping (inputs stay lazy)."""
        return _materialize_unions(self, box)

    def materialize_prods(self, box: "Box"):
        box._prod_gates = []
        return box._prod_gates

    def materialize_vars(self, box: "Box"):
        """Create the box's var-gates from the stamped assignments.

        The assignments live in ``box.enum_tables[0]`` (they embed the
        per-leaf payload, so they are per-box even though the plan is
        shared); sharing one VarGate per assignment keeps Svar injective
        within the circuit (Definition 3.1).
        """
        var_gates = [VarGate(box, assignment) for assignment in box.enum_tables[0]]
        box._var_gates = var_gates
        return var_gates

    def gate_inputs(self, box: "Box", slot: int):
        """Resolve one ∪-slot's var-gate index tuple to gate objects."""
        var_gates = box.var_gates
        return tuple(var_gates[i] for i in self.slot_inputs[slot])

    def gate_counts(self, _box: "Box"):
        return (self.n_unions, 0, len(self.var_sets))


def _materialize_unions(plan, box):
    """Shared ∪-gate materialization for both plan kinds.

    Creates one :class:`UnionGate` per union entry (inputs lazy) plus the
    ``state_gate`` mapping, in ``entries`` order — identical slot numbering
    to the eager construction.
    """
    union_gates = []
    state_gate = {}
    for state, value in plan.entries:
        if value.__class__ is tuple:
            gate = UnionGate(box, len(union_gates), state)
            union_gates.append(gate)
            state_gate[state] = gate
        else:
            state_gate[state] = value
    box._union_gates = union_gates
    box._state_gate = state_gate
    return union_gates


def _require_homogenized(automaton: BinaryTVA) -> None:
    if not automaton.is_homogenized():
        raise NotHomogenizedError(
            "the circuit construction of Lemma 3.7 requires a homogenized automaton; "
            "call repro.automata.homogenize() first"
        )


def _plan_cache(automaton: BinaryTVA) -> Dict[str, dict]:
    """The per-automaton box-plan cache (attached lazily; automata are immutable)."""
    cache = getattr(automaton, "_box_plan_cache", None)
    if cache is None:
        cache = {"leaf": {}, "internal": {}}
        automaton._box_plan_cache = cache
    return cache


def _leaf_plan(automaton: BinaryTVA, label: object) -> _LeafPlan:
    """The build recipe for a leaf box with the given label (leaf-independent)."""
    zero_states = automaton.zero_states
    one_states = automaton.one_states
    entries_out: List[Tuple[object, object]] = []
    signature: List[Tuple[object, bool]] = []
    var_sets: List[frozenset] = []
    var_index: Dict[frozenset, int] = {}
    slot_var_masks: List[int] = []
    union_count = 0
    for state in automaton.states:
        entries = automaton.initial_by_label_state.get((label, state), [])
        if state in zero_states:
            if any(not vs for vs in entries):
                entries_out.append((state, TOP))
                signature.append((state, True))
            else:
                entries_out.append((state, BOTTOM))
        elif state in one_states:
            indices: List[int] = []
            seen = set()
            for vs in entries:
                if vs and vs not in seen:
                    seen.add(vs)
                    idx = var_index.get(vs)
                    if idx is None:
                        idx = len(var_sets)
                        var_index[vs] = idx
                        var_sets.append(vs)
                    indices.append(idx)
            if indices:
                entries_out.append((state, tuple(indices)))
                signature.append((state, False))
                slot_var_masks.append(sum(1 << i for i in set(indices)))
                union_count += 1
            else:
                entries_out.append((state, BOTTOM))
        else:  # unreachable state (possible only if the automaton is not trimmed)
            entries_out.append((state, BOTTOM))
    return _LeafPlan(
        tuple(entries_out),
        tuple(var_sets),
        (1 << union_count) - 1,
        tuple(signature),
        tuple(slot_var_masks),
    )


def _signature_of(box: Box) -> Tuple[Tuple[object, bool], ...]:
    """The state signature of a box: its present (non-⊥) states, flagged for ⊤.

    Normally read from ``box.state_sig`` (stamped by the plan that built the
    box); this fallback recomputes it for boxes built by other means.  The
    plan machinery assumes ∪-gate slots follow ``state_gate`` insertion
    order, so a hand-built box violating that is rejected loudly here rather
    than silently miswired.
    """
    signature = tuple((q, g is TOP) for q, g in box.state_gate.items() if g is not BOTTOM)
    slot = 0
    for state, is_top in signature:
        if is_top:
            continue
        if box.state_gate[state].slot != slot:
            raise CircuitStructureError(
                "box's ∪-gate slots do not follow state_gate insertion order; "
                "create each state's gate in the order its state_gate entry is inserted"
            )
        slot += 1
    return signature


def _slots_of_signature(sig: Tuple[Tuple[object, bool], ...]) -> Dict[object, int]:
    """State → ∪-gate slot for a child with the given signature.

    Slots are assigned in ``state_gate`` insertion order (= ``automaton.states``
    order, which the plans preserve) to the present states that are not ⊤, so
    the mapping is fully determined by the signature.
    """
    slots: Dict[object, int] = {}
    for state, is_top in sig:
        if not is_top:
            slots[state] = len(slots)
    return slots


def _internal_plan(
    automaton: BinaryTVA,
    label: object,
    left_sig: Tuple[Tuple[object, bool], ...],
    right_sig: Tuple[Tuple[object, bool], ...],
) -> _InternalPlan:
    """The build recipe for an internal box, given the children's signatures.

    A signature lists the child's present (non-⊥) states with a flag for ⊤.
    Because each state owns its own ∪-gate, child states identify child gates
    uniquely, so deduplication on (source, slot) descriptors reproduces the
    per-gate deduplication of the direct construction — and the child slot
    numbers (hence the box's full ∪-wiring) are already determined by the
    signatures, which is what lets the plan precompute the wiring masks.
    """
    zero_states = automaton.zero_states
    one_states = automaton.one_states
    left_slots = _slots_of_signature(left_sig)
    right_slots = _slots_of_signature(right_sig)

    # For every target state, the contributing (q1, top1, q2, top2) quadruples.
    # Iterating δ_label and filtering by the signatures is cheaper than the
    # |left_sig| × |right_sig| product: δ_label is usually the smaller set.
    left_top = dict(left_sig)
    right_top = dict(right_sig)
    contributions: Dict[object, List[Tuple[object, bool, object, bool]]] = {}
    for q1, q2, q in automaton.delta_by_label.get(label, ()):
        top1 = left_top.get(q1)
        if top1 is None:
            continue
        top2 = right_top.get(q2)
        if top2 is None:
            continue
        contributions.setdefault(q, []).append((q1, top1, q2, top2))

    entries: List[Tuple[object, object]] = []
    signature: List[Tuple[object, bool]] = []
    prod_pairs: List[Tuple[int, int]] = []
    prod_index: Dict[Tuple[int, int], int] = {}
    left_input_masks: List[int] = []
    right_input_masks: List[int] = []
    slot_prod_masks: List[int] = []
    local_mask = 0
    left_wire: List[int] = [0] * len(left_slots)
    right_wire: List[int] = [0] * len(right_slots)
    for state in automaton.states:
        contribs = contributions.get(state, ())
        if state in zero_states:
            is_top = any(top1 and top2 for _q1, top1, _q2, top2 in contribs)
            entries.append((state, TOP if is_top else BOTTOM))
            if is_top:
                signature.append((state, True))
            continue
        if state not in one_states:
            entries.append((state, BOTTOM))
            continue
        inputs: List[Tuple[int, int]] = []
        seen = set()
        has_local = False
        left_mask = 0
        right_mask = 0
        prod_mask = 0
        union_slot = len(left_input_masks)
        for q1, top1, q2, top2 in contribs:
            if top1 and top2:
                raise CircuitStructureError(
                    f"1-state {state!r} would capture the empty assignment; "
                    "the automaton is not homogenized"
                )
            if top1:
                descriptor = (_IN_RIGHT, right_slots[q2])
            elif top2:
                descriptor = (_IN_LEFT, left_slots[q1])
            else:
                pair = (left_slots[q1], right_slots[q2])
                prod = prod_index.get(pair)
                if prod is None:
                    prod = len(prod_pairs)
                    prod_index[pair] = prod
                    prod_pairs.append(pair)
                descriptor = (_IN_PROD, prod)
            if descriptor not in seen:
                seen.add(descriptor)
                inputs.append(descriptor)
                source, slot = descriptor
                if source == _IN_LEFT:
                    left_mask |= 1 << slot
                    left_wire[slot] |= 1 << union_slot
                elif source == _IN_RIGHT:
                    right_mask |= 1 << slot
                    right_wire[slot] |= 1 << union_slot
                else:
                    has_local = True
                    prod_mask |= 1 << slot
        if inputs:
            entries.append((state, tuple(inputs)))
            signature.append((state, False))
            if has_local:
                local_mask |= 1 << union_slot
            left_input_masks.append(left_mask)
            right_input_masks.append(right_mask)
            slot_prod_masks.append(prod_mask)
        else:
            entries.append((state, BOTTOM))
    return _InternalPlan(
        tuple(entries),
        tuple(prod_pairs),
        (tuple(left_wire), tuple(right_wire)),
        tuple(left_input_masks),
        tuple(right_input_masks),
        local_mask,
        tuple(signature),
        tuple(slot_prod_masks),
    )


# --------------------------------------------------------------------------- plan persistence
# Box plans are pure content: entries, masks and signatures fully determine
# the gates a box build instantiates, and nothing in a plan references a
# concrete box or relation instance (the lazily filled ``wire_rels`` cache is
# dropped on export and refilled on demand).  That makes the whole per-
# automaton plan cache exportable as a JSON-compatible payload keyed by
# content — the circuits half of the persistent compiled queries served by
# :mod:`repro.serving` (the automata half is
# :mod:`repro.automata.serialize`).  A fresh process that installs a plan
# payload builds its first document entirely from cache hits, skipping the
# δ-product and classification work of every (label, signature) pair the
# exporting process had already seen.

def _encode_plan_value(value: object) -> object:
    """Encode one ``entries`` value: ⊤/⊥ sentinel or an input tuple."""
    if value is TOP:
        return "T"
    if value is BOTTOM:
        return "B"
    return ["u", [list(item) if isinstance(item, tuple) else item for item in value]]


def _decode_plan_value(payload: object, pair_inputs: bool) -> object:
    if payload == "T":
        return TOP
    if payload == "B":
        return BOTTOM
    data = payload[1]
    if pair_inputs:
        return tuple((source, slot) for source, slot in data)
    return tuple(data)


def export_box_plans(automaton: BinaryTVA) -> Dict:
    """Export the automaton's memoized box plans as a JSON-compatible payload.

    States, labels and variable sets are interned in the payload's
    ``values`` table (states first, in canonical order, so the table —
    hence the whole payload — is deterministic for a given plan set);
    entries and signatures reference table indexes.  Entry order inside
    each plan is preserved exactly (∪-gate slots follow it).
    """
    from repro.automata.serialize import ValueTable

    cache = _plan_cache(automaton)
    table = ValueTable()
    table.seed(automaton.states)
    table.seed({label for label in cache["leaf"]}
               | {label for label, _ls, _rs in cache["internal"]})
    table.seed({vs for plan in cache["leaf"].values() for vs in plan.var_sets})

    def sig_payload(signature):
        return [[table.ref(state), bool(is_top)] for state, is_top in signature]

    leaf_payload = []
    for label, plan in cache["leaf"].items():
        leaf_payload.append(
            [
                table.ref(label),
                {
                    "entries": [
                        [table.ref(state), _encode_plan_value(value)]
                        for state, value in plan.entries
                    ],
                    "var_sets": [table.ref(vs) for vs in plan.var_sets],
                    "local_mask": plan.local_mask,
                    "signature": sig_payload(plan.signature),
                    "slot_var_masks": list(plan.slot_var_masks),
                },
            ]
        )
    leaf_payload.sort(key=lambda item: item[0])

    internal_payload = []
    for (label, left_sig, right_sig), plan in cache["internal"].items():
        internal_payload.append(
            [
                [table.ref(label), sig_payload(left_sig), sig_payload(right_sig)],
                {
                    "entries": [
                        [table.ref(state), _encode_plan_value(value)]
                        for state, value in plan.entries
                    ],
                    "prod_pairs": [list(pair) for pair in plan.prod_pairs],
                    "wire_masks": [list(plan.wire_masks[0]), list(plan.wire_masks[1])],
                    "left_input_masks": list(plan.left_input_masks),
                    "right_input_masks": list(plan.right_input_masks),
                    "local_mask": plan.local_mask,
                    "signature": sig_payload(plan.signature),
                    "slot_prod_masks": list(plan.enum_tables[4]),
                },
            ]
        )
    internal_payload.sort(key=lambda item: item[0])
    return {"values": table.encoded, "leaf": leaf_payload, "internal": internal_payload}


def install_box_plans(automaton: BinaryTVA, payload: Dict) -> int:
    """Install an exported plan payload into the automaton's plan cache.

    Existing entries (from plans already compiled in this process) are kept;
    installed plans fill the remaining keys.  Returns the number of plans
    installed.  Safe to call on a freshly deserialized automaton — the plan
    cache is created on demand.
    """
    from repro.automata.serialize import decode_values

    if not payload:
        return 0
    values = decode_values(payload.get("values", []))

    def decode_sig(sig):
        return tuple((values[i], bool(is_top)) for i, is_top in sig)

    cache = _plan_cache(automaton)
    installed = 0
    for label_index, data in payload.get("leaf", ()):
        label = values[label_index]
        if label in cache["leaf"]:
            continue
        cache["leaf"][label] = _LeafPlan(
            tuple(
                (values[state], _decode_plan_value(value, pair_inputs=False))
                for state, value in data["entries"]
            ),
            tuple(values[i] for i in data["var_sets"]),
            data["local_mask"],
            decode_sig(data["signature"]),
            tuple(data["slot_var_masks"]),
        )
        installed += 1
    for key_payload, data in payload.get("internal", ()):
        label_index, left_sig, right_sig = key_payload
        key = (values[label_index], decode_sig(left_sig), decode_sig(right_sig))
        if key in cache["internal"]:
            continue
        cache["internal"][key] = _InternalPlan(
            tuple(
                (values[state], _decode_plan_value(value, pair_inputs=True))
                for state, value in data["entries"]
            ),
            tuple(tuple(pair) for pair in data["prod_pairs"]),
            (tuple(data["wire_masks"][0]), tuple(data["wire_masks"][1])),
            tuple(data["left_input_masks"]),
            tuple(data["right_input_masks"]),
            data["local_mask"],
            decode_sig(data["signature"]),
            tuple(data["slot_prod_masks"]),
        )
        installed += 1
    return installed


# --------------------------------------------------------------------------- cross-document build cache
# Documents in a real fleet share structure, and forest-algebra terms are
# content-addressable: a subtree's circuit (boxes + enumeration index) is
# fully determined by (automaton, relation backend, subtree content).  The
# BuildCache below hash-conses whole built subtrees across documents of one
# store: the maintainer consults it per term node before building, so the
# second document with a repeated subtree reuses the first one's boxes and
# index entries outright.  Sharing is safe because boxes, indexes and
# relations are immutable once built — updates replace trunk boxes instead of
# mutating them (Lemma 7.3), so an edit to one document never disturbs
# another document sharing a subtree.

#: default capacity (entries = cached subtree roots) of the per-store cache;
#: overridable per engine/store via ``build_cache_size=``.
DEFAULT_BUILD_CACHE_SIZE = 2048


def encode_content(value: object) -> Optional[bytes]:
    """Canonical byte encoding of a label value, or None if unhashable.

    Supports the payload types documents actually use (str/int/bool/None and
    tuples thereof).  Exotic label objects return None, which makes the
    subtree — and every subtree above it — simply uncacheable rather than
    wrongly shared.
    """
    cls = value.__class__
    if cls is str:
        return b"s" + value.encode("utf-8") + b"\x00"
    if cls is bool:
        return b"b1" if value else b"b0"
    if cls is int:
        return b"i%d\x00" % value
    if value is None:
        return b"n"
    if cls is tuple:
        parts = [b"("]
        for item in value:
            encoded = encode_content(item)
            if encoded is None:
                return None
            parts.append(encoded)
        parts.append(b")")
        return b"".join(parts)
    return None


def _digest(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=16).digest()


def leaf_content_hash(label: object, leaf_payload: object) -> Optional[bytes]:
    """Content digest of a leaf box: its alphabet label and leaf payload."""
    encoded = encode_content((label, leaf_payload))
    if encoded is None:
        return None
    return _digest(b"L" + encoded)


def internal_content_hash(
    label: object, left_hash: Optional[bytes], right_hash: Optional[bytes]
) -> Optional[bytes]:
    """Content digest of an internal box from its children's digests (O(1))."""
    if left_hash is None or right_hash is None:
        return None
    encoded = encode_content(label)
    if encoded is None:
        return None
    return _digest(b"I" + encoded + left_hash + right_hash)


def automaton_digest(automaton: BinaryTVA) -> bytes:
    """A content digest of the automaton (cached on the instance).

    Uses the canonical serialization of :mod:`repro.automata.serialize`, so
    two automata with identical content — e.g. the same compiled query loaded
    in two processes — share cache keys, while any structural difference
    (states, transitions, finals) changes the digest.
    """
    digest = getattr(automaton, "_content_digest", None)
    if digest is None:
        from repro.automata.serialize import binary_tva_to_payload, canonical_json

        digest = _digest(canonical_json(binary_tva_to_payload(automaton)).encode("utf-8"))
        automaton._content_digest = digest
    return digest


class BuildCache:
    """Bounded LRU cache of built subtrees, shared across documents.

    Keys are ``(automaton digest, relation backend, subtree content hash)``;
    values are the (immutable) root :class:`Box` of the built subtree, index
    included.  A capacity of 0 (or None) disables the cache entirely —
    lookups and inserts become no-ops and no content hashing happens.

    The ``hits`` / ``misses`` / ``evictions`` counters surface through
    ``LocalStore.stats()`` and ``Engine.stats()`` (summed across shards) as
    ``build_cache_hits`` / ``build_cache_misses`` / ``build_cache_evictions``.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "on_hit_seconds", "_entries")

    def __init__(self, capacity: Optional[int] = DEFAULT_BUILD_CACHE_SIZE):
        self.capacity = int(capacity) if capacity else 0
        if self.capacity < 0:
            self.capacity = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: optional observability hook: called with the lookup latency
        #: (seconds) of every cache *hit*; wired to the engine's
        #: ``build_cache_hit_seconds`` histogram when metrics are on.
        self.on_hit_seconds = None
        self._entries: "OrderedDict[Tuple, Box]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[Box]:
        """Look up a built subtree; counts a hit or a miss."""
        on_hit = self.on_hit_seconds
        start = perf_counter() if on_hit is not None else 0.0
        box = self._entries.get(key)
        if box is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if on_hit is not None:
            on_hit(perf_counter() - start)
        return box

    def put(self, key: Tuple, box: Box) -> None:
        """Insert a built subtree, evicting least-recently-used past capacity."""
        if self.capacity <= 0:
            return
        self._entries[key] = box
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "build_cache_hits": self.hits,
            "build_cache_misses": self.misses,
            "build_cache_evictions": self.evictions,
            "build_cache_size": len(self._entries),
            "build_cache_capacity": self.capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BuildCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


def build_leaf_box(label: object, leaf_payload: int, automaton: BinaryTVA) -> Box:
    """Build the box ``B_n`` for a leaf node with the given label.

    ``leaf_payload`` is the identifier of the leaf used in the var-gate
    singletons ``⟨Y : n⟩`` (in the full pipeline this is the id of the
    *unranked* tree node the leaf represents).
    """
    leaf_plans = _plan_cache(automaton)["leaf"]
    plan = leaf_plans.get(label)
    if plan is None:
        plan = _leaf_plan(automaton, label)
        leaf_plans[label] = plan

    # Struct-of-arrays instantiation: the box is just the plan reference plus
    # the flat tables (masks shared from the plan, per-leaf assignments).
    # Gate objects are materialized lazily — the mask-native pipeline never
    # creates them at all.
    box = Box(label, leaf_payload=leaf_payload, planned=True)
    box.build_plan = plan
    box.state_sig = plan.signature
    box.local_mask = plan.local_mask
    box.n_unions = plan.n_unions
    # Flattened gate tables for mask-native enumeration: leaf boxes have no
    # ×-gates; the per-slot var masks are shared from the plan.  The var
    # assignments embed the leaf payload, so they are the one per-box part.
    box.enum_tables = (
        tuple(
            frozenset((var, leaf_payload) for var in var_set)
            for var_set in plan.var_sets
        ),
        plan.slot_var_masks,
        (),
        (),
        (),
    )
    return box


def build_internal_box(
    label: object, left_box: Box, right_box: Box, automaton: BinaryTVA
) -> Box:
    """Build the box ``B_n`` for an internal node from its children's boxes."""
    left_sig = left_box.state_sig
    if left_sig is None:
        left_sig = _signature_of(left_box)
    right_sig = right_box.state_sig
    if right_sig is None:
        right_sig = _signature_of(right_box)

    internal_plans = _plan_cache(automaton)["internal"]
    key = (label, left_sig, right_sig)
    plan = internal_plans.get(key)
    if plan is None:
        plan = _internal_plan(automaton, label, left_sig, right_sig)
        internal_plans[key] = plan

    # Struct-of-arrays instantiation: every per-slot table (input masks,
    # enum tables, wiring) is shared from the plan, so building the box is a
    # handful of attribute stamps.  Gate objects (∪, ×) are materialized
    # lazily; the mask-native pipeline reads only the flat tables.
    box = Box(label, left_child=left_box, right_child=right_box, planned=True)
    box.build_plan = plan
    box.state_sig = plan.signature
    box.wire_plan = plan
    box.local_mask = plan.local_mask
    box.n_unions = plan.n_unions
    box.enum_tables = plan.enum_tables
    # The per-slot input masks are immutable once built, so every box from
    # this plan shares the plan's tuples.
    box.left_input_masks = plan.left_input_masks
    box.right_input_masks = plan.right_input_masks
    return box


def build_assignment_circuit(tree: BinaryTree, automaton: BinaryTVA) -> AssignmentCircuit:
    """Build the assignment circuit of ``automaton`` on ``tree`` (Lemma 3.7).

    The automaton must be homogenized (Lemma 2.1).  The circuit's v-tree is
    the input tree itself, with each leaf labelled by the singletons
    ``⟨X : n⟩`` of that leaf.
    """
    _require_homogenized(automaton)

    box_by_node: Dict[int, Box] = {}
    # Post-order traversal without recursion (input trees can be deep).
    order: List[BinaryNode] = []
    stack: List[Tuple[BinaryNode, bool]] = [(tree.root, False)]
    while stack:
        node, visited = stack.pop()
        if visited or node.is_leaf():
            order.append(node)
        else:
            stack.append((node, True))
            stack.append((node.right, False))
            stack.append((node.left, False))

    for node in order:
        if node.is_leaf():
            box = build_leaf_box(node.label, node.node_id, automaton)
        else:
            box = build_internal_box(
                node.label,
                box_by_node[node.left.node_id],
                box_by_node[node.right.node_id],
                automaton,
            )
        box_by_node[node.node_id] = box

    return AssignmentCircuit(box_by_node[tree.root.node_id], automaton, box_by_node)
