"""Assignment-circuit construction (Lemma 3.7 / Appendix B).

Given a *homogenized* binary TVA and a binary tree, we build bottom-up, for
every tree node ``n``, a **box** containing the gates ``γ(n, q)`` for every
state ``q``:

* leaf node ``n`` with label ``l``:

  - 0-state ``q``: ``γ(n, q)`` is ⊤ if ``(l, ∅, q) ∈ ι`` and ⊥ otherwise;
  - 1-state ``q``: a ∪-gate over one var-gate ``⟨Y : n⟩`` per non-empty
    ``Y`` with ``(l, Y, q) ∈ ι`` (⊥ if there is none);

* internal node ``n`` with label ``l`` and children ``n1, n2``:

  - 0-state ``q``: ⊤ iff some ``(q1, q2, q) ∈ δ_l`` has both child gates ⊤;
  - 1-state ``q``: a ∪-gate over, for every ``(q1, q2, q) ∈ δ_l``, either a
    ×-gate on the two child ∪-gates, or — when one child gate is ⊤ — the
    other child ∪-gate directly (this is the trick that keeps ⊤/⊥ from ever
    being used as inputs).

The per-node work is proportional to the number of transitions that can fire
given the states present in the children, so the whole construction runs in
time ``O(|T| × |A|)`` and produces a complete structured DNNF of width
``|Q|`` and depth ``O(height(T))`` as stated by Lemma 3.7.

The two box builders are exposed separately because the incremental
maintenance of Section 7 (Lemma 7.3) re-invokes them on the trunk of each
tree hollowing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.automata.binary_tva import BinaryTVA
from repro.circuits.gates import (
    BOTTOM,
    TOP,
    AssignmentCircuit,
    Box,
    ProdGate,
    UnionGate,
    VarGate,
)
from repro.errors import CircuitStructureError, NotHomogenizedError
from repro.trees.binary import BinaryNode, BinaryTree

__all__ = ["build_leaf_box", "build_internal_box", "build_assignment_circuit"]


def _require_homogenized(automaton: BinaryTVA) -> None:
    if not automaton.is_homogenized():
        raise NotHomogenizedError(
            "the circuit construction of Lemma 3.7 requires a homogenized automaton; "
            "call repro.automata.homogenize() first"
        )


def build_leaf_box(label: object, leaf_payload: int, automaton: BinaryTVA) -> Box:
    """Build the box ``B_n`` for a leaf node with the given label.

    ``leaf_payload`` is the identifier of the leaf used in the var-gate
    singletons ``⟨Y : n⟩`` (in the full pipeline this is the id of the
    *unranked* tree node the leaf represents).
    """
    box = Box(label, leaf_payload=leaf_payload)
    zero_states = automaton.zero_states
    one_states = automaton.one_states

    # Var-gates are shared across states: Svar must be injective within the
    # circuit (Definition 3.1), and sharing is also what makes the
    # single-var-gate outputs of Algorithm 2 duplicate-free.
    var_gate_by_set: Dict[frozenset, VarGate] = {}

    def var_gate_for(var_set: frozenset) -> VarGate:
        gate = var_gate_by_set.get(var_set)
        if gate is None:
            assignment = frozenset((var, leaf_payload) for var in var_set)
            gate = box.add_var_gate(assignment)
            var_gate_by_set[var_set] = gate
        return gate

    for state in automaton.states:
        entries = automaton.initial_by_label_state.get((label, state), [])
        if state in zero_states:
            box.state_gate[state] = TOP if any(not vs for vs in entries) else BOTTOM
        elif state in one_states:
            nonempty = [vs for vs in entries if vs]
            if not nonempty:
                box.state_gate[state] = BOTTOM
            else:
                inputs = []
                seen = set()
                for vs in nonempty:
                    if vs not in seen:
                        seen.add(vs)
                        inputs.append(var_gate_for(vs))
                box.state_gate[state] = box.add_union_gate(state, inputs)
        else:  # unreachable state (possible only if the automaton is not trimmed)
            box.state_gate[state] = BOTTOM
    return box


def build_internal_box(
    label: object, left_box: Box, right_box: Box, automaton: BinaryTVA
) -> Box:
    """Build the box ``B_n`` for an internal node from its children's boxes."""
    box = Box(label, left_child=left_box, right_child=right_box)
    zero_states = automaton.zero_states
    one_states = automaton.one_states

    # States actually present (non-⊥) in the children; iterating over the
    # product of these instead of over all of δ keeps the work proportional
    # to the transitions that can fire.
    left_present = [(q, g) for q, g in left_box.state_gate.items() if g is not BOTTOM]
    right_present = [(q, g) for q, g in right_box.state_gate.items() if g is not BOTTOM]

    # For every target state, the contributions (left gate, right gate).
    contributions: Dict[object, List[Tuple[object, object]]] = {}
    delta = automaton.delta_by_children
    for q1, g1 in left_present:
        for q2, g2 in right_present:
            targets = delta.get((label, q1, q2))
            if not targets:
                continue
            for q in targets:
                contributions.setdefault(q, []).append((g1, g2))

    # ×-gates are shared between target states: the paper defines one gate
    # д^{q1,q2} per transition source pair.
    prod_gate_cache: Dict[Tuple[int, int], ProdGate] = {}

    def prod_gate_for(g1: UnionGate, g2: UnionGate) -> ProdGate:
        key = (g1.slot, g2.slot)
        gate = prod_gate_cache.get(key)
        if gate is None:
            gate = box.add_prod_gate(g1, g2)
            prod_gate_cache[key] = gate
        return gate

    for state in automaton.states:
        contribs = contributions.get(state, [])
        if state in zero_states:
            is_top = any(g1 is TOP and g2 is TOP for g1, g2 in contribs)
            box.state_gate[state] = TOP if is_top else BOTTOM
            continue
        if state not in one_states:
            box.state_gate[state] = BOTTOM
            continue
        # 1-state: build the ∪-gate inputs.
        inputs: List[object] = []
        seen_ids = set()
        for g1, g2 in contribs:
            if g1 is BOTTOM or g2 is BOTTOM:
                continue
            if g1 is TOP and g2 is TOP:
                raise CircuitStructureError(
                    f"1-state {state!r} would capture the empty assignment; "
                    "the automaton is not homogenized"
                )
            if g1 is TOP:
                candidate: object = g2
            elif g2 is TOP:
                candidate = g1
            else:
                candidate = prod_gate_for(g1, g2)
            if id(candidate) not in seen_ids:
                seen_ids.add(id(candidate))
                inputs.append(candidate)
        if inputs:
            box.state_gate[state] = box.add_union_gate(state, inputs)
        else:
            box.state_gate[state] = BOTTOM
    return box


def build_assignment_circuit(tree: BinaryTree, automaton: BinaryTVA) -> AssignmentCircuit:
    """Build the assignment circuit of ``automaton`` on ``tree`` (Lemma 3.7).

    The automaton must be homogenized (Lemma 2.1).  The circuit's v-tree is
    the input tree itself, with each leaf labelled by the singletons
    ``⟨X : n⟩`` of that leaf.
    """
    _require_homogenized(automaton)

    box_by_node: Dict[int, Box] = {}
    # Post-order traversal without recursion (input trees can be deep).
    order: List[BinaryNode] = []
    stack: List[Tuple[BinaryNode, bool]] = [(tree.root, False)]
    while stack:
        node, visited = stack.pop()
        if visited or node.is_leaf():
            order.append(node)
        else:
            stack.append((node, True))
            stack.append((node.right, False))
            stack.append((node.left, False))

    for node in order:
        if node.is_leaf():
            box = build_leaf_box(node.label, node.node_id, automaton)
        else:
            box = build_internal_box(
                node.label,
                box_by_node[node.left.node_id],
                box_by_node[node.right.node_id],
                automaton,
            )
        box_by_node[node.node_id] = box

    return AssignmentCircuit(box_by_node[tree.root.node_id], automaton, box_by_node)
