"""Captured-set semantics of set circuits (Definition 3.1).

``captured_set(g)`` computes the set ``S(g)`` of assignments captured by a
gate, by direct structural recursion:

* var-gate: the singleton set ``{Svar(g)}``;
* ⊥: the empty set; ⊤: ``{∅}``;
* ×-gate: the pairwise unions of the sets of its two inputs;
* ∪-gate: the union of the sets of its inputs.

This is exponential in general and is **only** meant as a ground-truth oracle
for the test suite: the whole point of the paper is to *enumerate* ``S(g)``
without materializing it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.assignments import Assignment
from repro.circuits.gates import BOTTOM, TOP, ProdGate, UnionGate, VarGate
from repro.errors import CircuitStructureError

__all__ = ["captured_set"]


def captured_set(gate: object, _memo: Dict[int, FrozenSet[Assignment]] = None) -> FrozenSet[Assignment]:
    """Return ``S(gate)`` as a frozenset of assignments (Definition 3.1)."""
    memo: Dict[int, FrozenSet[Assignment]] = {} if _memo is None else _memo

    def rec(g: object) -> FrozenSet[Assignment]:
        if g is BOTTOM:
            return frozenset()
        if g is TOP:
            return frozenset({frozenset()})
        key = id(g)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(g, VarGate):
            result: FrozenSet[Assignment] = frozenset({g.assignment})
        elif isinstance(g, ProdGate):
            left = rec(g.left)
            right = rec(g.right)
            result = frozenset(sl | sr for sl in left for sr in right)
        elif isinstance(g, UnionGate):
            acc: Set[Assignment] = set()
            for inp in g.inputs:
                acc |= rec(inp)
            result = frozenset(acc)
        else:
            raise CircuitStructureError(f"unknown gate object {g!r}")
        memo[key] = result
        return result

    return rec(gate)
