"""Set circuits: gates, boxes and assignment circuits (Section 3).

A *set circuit* has five kinds of gates: ⊤, ⊥, var, × and ∪ (Definition 3.1).
Our circuits are always *complete structured DNNFs* (Definition 3.4): the
gates are partitioned into **boxes**, one box per node of the v-tree, and the
wiring respects the v-tree.  Because the v-tree of an assignment circuit is
(isomorphic to) the input binary tree itself (Lemma 3.7), we do not store a
separate v-tree object: the tree of boxes *is* the v-tree, and each leaf box
remembers the tree leaf it corresponds to (its ``leaf_payload``).

Design notes
------------
* ⊤ and ⊥ are module-level singletons, not gate objects: the construction of
  Lemma 3.7 guarantees they are never used as inputs of other gates, so they
  only ever appear as values of the per-state mapping ``γ(n, q)`` stored in
  each box (``Box.state_gate``).
* ∪-gates carry a ``slot`` (their position inside their box); the
  ∪-reachability relations of Sections 5–6 are stored as relations between
  slot numbers, which keeps them valid when parent boxes are rebuilt during
  updates.
* Boxes know their children but **not** their parent: under updates a box can
  be reused under a freshly rebuilt parent (Lemma 7.3), so parent pointers
  would become stale.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.assignments import Assignment
from repro.errors import CircuitStructureError

__all__ = [
    "TOP",
    "BOTTOM",
    "VarGate",
    "ProdGate",
    "UnionGate",
    "Box",
    "AssignmentCircuit",
    "child_wire_pairs",
]


class _Sentinel:
    """Singleton used for the ⊤ and ⊥ circuit constants."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


#: The ⊤-gate: captures exactly the empty assignment ``{∅}``.
TOP = _Sentinel("TOP")
#: The ⊥-gate: captures the empty set of assignments.
BOTTOM = _Sentinel("BOTTOM")

#: Monotonic build-serial source for boxes (process-wide).  Serials exist so
#: the serving layer can name a box *stably*: ``id(box)`` values are recycled
#: by the allocator as soon as a box is collected, so an old trunk box and a
#: freshly rebuilt one can alias — a serial never can.  Boxes shared through
#: the cross-document build cache keep the serial of their first build (they
#: are one object, hence one identity).
_BOX_SERIALS = itertools.count(1)


class VarGate:
    """A variable gate; captures the single assignment ``Svar(g)`` (= ``⟨Y : n⟩``)."""

    __slots__ = ("box", "assignment")

    def __init__(self, box: "Box", assignment: Assignment):
        self.box = box
        self.assignment = assignment

    def __repr__(self) -> str:  # pragma: no cover
        return f"VarGate({set(self.assignment)!r})"


class ProdGate:
    """A ×-gate; its two inputs are ∪-gates in the left and right child boxes."""

    __slots__ = ("box", "left", "right")

    def __init__(self, box: "Box", left: "UnionGate", right: "UnionGate"):
        self.box = box
        self.left = left
        self.right = right

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProdGate(left=slot {self.left.slot}, right=slot {self.right.slot})"


class UnionGate:
    """A ∪-gate; captures the union of the sets captured by its inputs.

    Inputs are var-gates or ×-gates of the *same* box, or ∪-gates of a
    *child* box (this normalization — no ∪→∪ wire within a box — is what the
    construction of Lemma 3.7 produces and what the index of Section 6
    assumes; it is checked by :func:`repro.circuits.dnnf.validate_circuit`).

    For gates of plan-built boxes the ``inputs`` tuple is **lazy**: the box
    plan knows the wiring as flat (source, index) descriptors, so the input
    gate objects are only created when something actually walks them (the
    generic relation-based enumeration, validation, tests).  The mask-native
    hot paths read the stamped ``Box.enum_tables`` / wiring masks instead and
    never touch ``inputs``.
    """

    __slots__ = ("box", "slot", "state", "_inputs")

    def __init__(
        self,
        box: "Box",
        slot: int,
        state: object,
        inputs: Optional[Tuple[object, ...]] = None,
    ):
        self.box = box
        self.slot = slot
        self.state = state
        self._inputs = inputs

    @property
    def inputs(self) -> Tuple[object, ...]:
        inputs = self._inputs
        if inputs is None:
            inputs = self.box.build_plan.gate_inputs(self.box, self.slot)
            self._inputs = inputs
        return inputs

    @inputs.setter
    def inputs(self, value: Tuple[object, ...]) -> None:
        self._inputs = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"UnionGate(slot={self.slot}, state={self.state!r}, fan_in={len(self.inputs)})"


class Box:
    """One box of a complete structured DNNF = one node of the v-tree.

    Attributes
    ----------
    serial:
        Monotonic build serial, stamped at construction and never reused.
        The serving layer keys cursor dependency masks and replaced-trunk
        deltas by serial instead of ``id()`` (addresses are recycled).
    label:
        The tree-node label this box was built for (informational).
    leaf_payload:
        For leaf boxes, the identifier of the tree leaf (used in var-gate
        singletons); ``None`` for internal boxes.
    left_child / right_child:
        Child boxes (``None`` for leaf boxes).
    union_gates:
        The ∪-gates of the box, indexed by their ``slot``.
    state_gate:
        The mapping ``q ↦ γ(n, q)``; values are :class:`UnionGate`, ``TOP``
        or ``BOTTOM``.
    prod_gates / var_gates:
        The ×-gates and var-gates of the box (for statistics and validation).
    local_mask / left_input_masks / right_input_masks:
        The box's ∪-wiring, recorded once at construction time (when a
        ∪-gate is added): a bitmask over slots whose gate has a local
        (var-/×-gate) input, and per-slot bitmasks of the left/right child
        slots wired into it.  The index construction (Lemma 6.3) and
        Algorithm 3 read these instead of rescanning ``gate.inputs`` with
        ``isinstance``.
    wire_cache:
        Per-(side, backend) cache of the single-level wire
        :class:`~repro.enumeration.relations.Relation` to each child
        (filled lazily by :func:`repro.enumeration.wiring.wire_relation`).
        Safe to cache because gates are never rewired after construction —
        updates rebuild whole boxes (Lemma 7.3).
    enum_tables:
        The flattened per-box gate tables read by the mask-native
        enumeration of Algorithm 2 (:mod:`repro.enumeration.duplicate_free`):
        a 5-tuple ``(var_assignments, slot_var_masks, prod_lefts,
        prod_rights, slot_prod_masks)`` where ``var_assignments[v]`` is the
        assignment of var-gate ``v``, ``slot_var_masks[s]`` /
        ``slot_prod_masks[s]`` are bitmasks over var-/×-gate indices feeding
        ∪-slot ``s``, and ``prod_lefts[j]`` / ``prod_rights[j]`` are the
        child ∪-slot numbers of ×-gate ``j``.  Stamped at construction time
        by :mod:`repro.circuits.build`; computed lazily (once per box) by
        :meth:`enumeration_tables` for hand-built boxes.
    index:
        The :class:`repro.enumeration.index.BoxIndex` attached by the
        preprocessing of Section 6 (``None`` until it is built).
    """

    __slots__ = (
        "serial",
        "label",
        "leaf_payload",
        "left_child",
        "right_child",
        "_union_gates",
        "_state_gate",
        "_prod_gates",
        "_var_gates",
        "n_unions",
        "left_input_masks",
        "right_input_masks",
        "local_mask",
        "_wire_cache",
        "wire_plan",
        "build_plan",
        "state_sig",
        "enum_tables",
        "content_hash",
        "index",
    )

    def __init__(
        self,
        label: object,
        leaf_payload: Optional[int] = None,
        left_child: Optional["Box"] = None,
        right_child: Optional["Box"] = None,
        planned: bool = False,
    ):
        #: monotonic build serial (see _BOX_SERIALS): the box's stable name
        #: in cursor dependency masks, maintainer delta reports and the wire
        #: codec — never recycled, unlike id().
        self.serial = next(_BOX_SERIALS)
        self.label = label
        self.leaf_payload = leaf_payload
        self.left_child = left_child
        self.right_child = right_child
        if planned:
            # Struct-of-arrays form: the builder stamps flat tables
            # (n_unions, masks, enum_tables) and a build plan; the gate
            # *objects* are materialized lazily by the properties below.
            self._union_gates: Optional[List[UnionGate]] = None
            self._state_gate: Optional[Dict[object, object]] = None
            self._prod_gates: Optional[List[ProdGate]] = None
            self._var_gates: Optional[List[VarGate]] = None
        else:
            self._union_gates = []
            self._state_gate = {}
            self._prod_gates = []
            self._var_gates = []
        self.n_unions: int = 0
        self.left_input_masks: List[int] = []
        self.right_input_masks: List[int] = []
        self.local_mask: int = 0
        self._wire_cache: Optional[Dict[Tuple[str, str], object]] = None
        #: the internal box plan that built this box (carries precomputed
        #: transposed wire masks and shared wire relations); None when built
        #: gate-by-gate and for leaf boxes.
        self.wire_plan: Optional[object] = None
        #: the plan (leaf or internal) that can materialize this box's gate
        #: objects on demand; None for hand-built boxes.
        self.build_plan: Optional[object] = None
        #: state signature stamped by the box plan that built this box
        #: (see repro.circuits.build); None for hand-built boxes.
        self.state_sig: Optional[Tuple[Tuple[object, bool], ...]] = None
        #: flattened gate tables for mask-native enumeration (see class docs);
        #: None until stamped by the builder or computed by enumeration_tables.
        self.enum_tables: Optional[Tuple] = None
        #: content digest of the subtree this box was built for, set by the
        #: cache-aware build of repro.incremental.maintainer; None when the
        #: cross-document build cache is off or the content is unhashable.
        #: Stored on the (immutable) box so a trunk rebuild derives the
        #: parent's hash from the children's in O(1).
        self.content_hash: Optional[bytes] = None
        self.index = None

    # ----------------------------------------------------- lazy gate storage
    # Plan-built boxes start as pure struct-of-arrays (flat masks + tables);
    # the first access to a gate collection materializes just that collection
    # (union/state gates need nothing, ×-gates need only the children's
    # ∪-gates — never a deep recursion).  Hand-built boxes get the eager
    # lists from __init__ and never hit the plan.
    @property
    def union_gates(self) -> List[UnionGate]:
        gates = self._union_gates
        if gates is None:
            gates = self.build_plan.materialize_unions(self)
        return gates

    @union_gates.setter
    def union_gates(self, value: List[UnionGate]) -> None:
        self._union_gates = value

    @property
    def state_gate(self) -> Dict[object, object]:
        mapping = self._state_gate
        if mapping is None:
            self.build_plan.materialize_unions(self)
            mapping = self._state_gate
        return mapping

    @state_gate.setter
    def state_gate(self, value: Dict[object, object]) -> None:
        self._state_gate = value

    @property
    def prod_gates(self) -> List[ProdGate]:
        gates = self._prod_gates
        if gates is None:
            gates = self.build_plan.materialize_prods(self)
        return gates

    @prod_gates.setter
    def prod_gates(self, value: List[ProdGate]) -> None:
        self._prod_gates = value

    @property
    def var_gates(self) -> List[VarGate]:
        gates = self._var_gates
        if gates is None:
            gates = self.build_plan.materialize_vars(self)
        return gates

    @var_gates.setter
    def var_gates(self, value: List[VarGate]) -> None:
        self._var_gates = value

    @property
    def wire_cache(self) -> Dict[Tuple[str, str], object]:
        cache = self._wire_cache
        if cache is None:
            cache = self._wire_cache = {}
        return cache

    # ------------------------------------------------------------------ api
    def is_leaf_box(self) -> bool:
        """Return ``True`` if this box corresponds to a leaf of the v-tree."""
        return self.left_child is None

    def add_union_gate(self, state: object, inputs: Iterable[object]) -> UnionGate:
        """Create a ∪-gate in this box with the given inputs and register it.

        The gate's wiring is classified once, here, into ``local_mask`` and
        the per-slot child masks; every later consumer (index construction,
        Algorithm 3) reads those masks instead of re-walking ``inputs``.
        (Boxes built from a box plan get their gates and masks stamped
        directly by :mod:`repro.circuits.build` instead.)
        """
        inputs = tuple(inputs)
        if not inputs:
            raise CircuitStructureError("∪-gates must have at least one input")
        if self.state_sig is not None or self.wire_plan is not None or self.build_plan is not None:
            # Plan-built boxes share their plan's stamped tuples (input masks,
            # enum_tables, state_sig); mutating one would either crash on the
            # shared tuples or silently stale the stamped tables — updates
            # rebuild whole boxes instead (Lemma 7.3).
            raise CircuitStructureError(
                "cannot add gates to a plan-built box; rebuild the box instead"
            )
        self.enum_tables = None  # invalidate lazily computed tables, if any
        slot = len(self.union_gates)
        gate = UnionGate(self, slot, state, inputs)
        has_local = False
        left_mask = 0
        right_mask = 0
        for inp in inputs:
            if isinstance(inp, (VarGate, ProdGate)):
                has_local = True
            elif isinstance(inp, UnionGate):
                if inp.box is self.left_child:
                    left_mask |= 1 << inp.slot
                elif inp.box is self.right_child:
                    right_mask |= 1 << inp.slot
                else:
                    raise CircuitStructureError("∪-gate input from a non-child box")
            else:
                raise CircuitStructureError(f"unexpected input gate {inp!r}")
        self.union_gates.append(gate)
        self.n_unions = slot + 1
        if has_local:
            self.local_mask |= 1 << slot
        self.left_input_masks.append(left_mask)
        self.right_input_masks.append(right_mask)
        return gate

    def add_prod_gate(self, left: UnionGate, right: UnionGate) -> ProdGate:
        """Create a ×-gate in this box and register it."""
        gate = ProdGate(self, left, right)
        self.prod_gates.append(gate)
        return gate

    def add_var_gate(self, assignment: Assignment) -> VarGate:
        """Create a var-gate in this box and register it."""
        gate = VarGate(self, assignment)
        self.var_gates.append(gate)
        return gate

    def children(self) -> Tuple["Box", ...]:
        """Return the tuple of child boxes (empty for leaf boxes)."""
        if self.is_leaf_box():
            return ()
        return (self.left_child, self.right_child)

    def subtree_boxes(self) -> Iterator["Box"]:
        """Yield the boxes of the subtree rooted here, in preorder."""
        stack = [self]
        while stack:
            box = stack.pop()
            yield box
            if not box.is_leaf_box():
                stack.append(box.right_child)
                stack.append(box.left_child)

    def width(self) -> int:
        """Return the number of ∪-gates of this box (the local width).

        Maintained as a plain counter so the hot paths (index construction,
        Algorithm 3, the mask-native stack) never materialize the gate
        objects of a plan-built box just to take a length.
        """
        return self.n_unions

    def gate_counts(self) -> Tuple[int, int, int]:
        """Return ``(n_union, n_prod, n_var)`` without materializing gates.

        Plan-built boxes answer from the plan's flat tables; hand-built boxes
        from their eager gate lists.
        """
        plan = self.build_plan
        if plan is not None:
            return plan.gate_counts(self)
        return (len(self._union_gates), len(self._prod_gates), len(self._var_gates))

    def enumeration_tables(self) -> Tuple:
        """Return the flattened gate tables used by mask-native enumeration.

        ``(var_assignments, slot_var_masks, prod_lefts, prod_rights,
        slot_prod_masks)`` — see the class docstring.  Boxes built by the box
        plans of :mod:`repro.circuits.build` get the tables stamped at
        construction time; this fallback walks ``gate.inputs`` exactly once
        per hand-built box, so enumeration itself never rescans inputs or
        dispatches on gate types.
        """
        tables = self.enum_tables
        if tables is not None:
            return tables
        var_index: Dict[int, int] = {}
        prod_index: Dict[int, int] = {}
        var_assignments: List[Assignment] = []
        prod_lefts: List[int] = []
        prod_rights: List[int] = []
        slot_var_masks: List[int] = []
        slot_prod_masks: List[int] = []
        for gate in self.union_gates:
            var_mask = 0
            prod_mask = 0
            for inp in gate.inputs:
                if isinstance(inp, VarGate):
                    idx = var_index.get(id(inp))
                    if idx is None:
                        idx = len(var_assignments)
                        var_index[id(inp)] = idx
                        var_assignments.append(inp.assignment)
                    var_mask |= 1 << idx
                elif isinstance(inp, ProdGate):
                    idx = prod_index.get(id(inp))
                    if idx is None:
                        idx = len(prod_lefts)
                        prod_index[id(inp)] = idx
                        prod_lefts.append(inp.left.slot)
                        prod_rights.append(inp.right.slot)
                    prod_mask |= 1 << idx
            slot_var_masks.append(var_mask)
            slot_prod_masks.append(prod_mask)
        tables = (
            tuple(var_assignments),
            tuple(slot_var_masks),
            tuple(prod_lefts),
            tuple(prod_rights),
            tuple(slot_prod_masks),
        )
        self.enum_tables = tables
        return tables

    def __repr__(self) -> str:  # pragma: no cover
        kind = "leaf" if self.is_leaf_box() else "internal"
        return f"Box(label={self.label!r}, {kind}, unions={self.n_unions})"


def child_wire_pairs(box: Box, side: str) -> FrozenSet[Tuple[int, int]]:
    """Return the ∪-wire relation between a child box and ``box``.

    The result is the set of pairs ``(child_slot, box_slot)`` such that the
    ∪-gate ``child_slot`` of the chosen child box is an input of the ∪-gate
    ``box_slot`` of ``box`` — i.e. the relation ``R(child, box)`` restricted
    to single wires, which is the base case of the index construction
    (Lemma 6.3) and of Algorithm 3.
    """
    if box.is_leaf_box():
        return frozenset()
    masks = box.left_input_masks if side == "left" else box.right_input_masks
    pairs = set()
    for box_slot, mask in enumerate(masks):
        while mask:
            low = mask & -mask
            pairs.add((low.bit_length() - 1, box_slot))
            mask ^= low
    return frozenset(pairs)


class AssignmentCircuit:
    """An assignment circuit of a TVA on a binary tree (Definition 3.3).

    The circuit owns the root box of the tree of boxes, remembers the
    homogenized automaton it was built for, and (when built from an explicit
    :class:`~repro.trees.binary.BinaryTree`) a mapping from tree node ids to
    boxes.  In the incremental pipeline the mapping is maintained by the
    forest-algebra layer instead, and ``box_by_node`` is ``None``.
    """

    def __init__(
        self,
        root_box: Box,
        automaton,
        box_by_node: Optional[Dict[int, Box]] = None,
    ):
        self.root_box = root_box
        self.automaton = automaton
        self.box_by_node = box_by_node

    # ------------------------------------------------------------------ api
    def boxes(self) -> Iterator[Box]:
        """Yield all boxes (preorder over the tree of boxes)."""
        return self.root_box.subtree_boxes()

    def box_of(self, node_id: int) -> Box:
        """Return the box built for the given tree node (static circuits only)."""
        if self.box_by_node is None:
            raise CircuitStructureError("this circuit does not track a node→box mapping")
        return self.box_by_node[node_id]

    def width(self) -> int:
        """Return the circuit width: the maximum number of ∪-gates in a box."""
        return max((box.width() for box in self.boxes()), default=0)

    def depth(self) -> int:
        """Return the depth of the tree of boxes (edges on the longest path)."""
        best = 0
        stack: List[Tuple[Box, int]] = [(self.root_box, 0)]
        while stack:
            box, d = stack.pop()
            best = max(best, d)
            for child in box.children():
                stack.append((child, d + 1))
        return best

    def gate_count(self) -> int:
        """Return the total number of gates (∪, ×, var) in the circuit.

        Counts come from the flat per-box tables (:meth:`Box.gate_counts`),
        so this never materializes the gate objects of plan-built boxes.
        """
        total = 0
        for box in self.boxes():
            n_union, n_prod, n_var = box.gate_counts()
            total += n_union + n_prod + n_var
        return total

    def root_gates(self, final_states: Optional[Iterable[object]] = None) -> List[object]:
        """Return the gates ``γ(root, q)`` for the final states ``q``.

        The satisfying assignments of the automaton are the union of the sets
        captured by these gates (plus the empty assignment when one of them
        is ⊤).
        """
        states = self.automaton.final if final_states is None else final_states
        return [self.root_box.state_gate.get(q, BOTTOM) for q in states]

    def __repr__(self) -> str:  # pragma: no cover
        return f"AssignmentCircuit(width={self.width()}, gates={self.gate_count()})"
