"""Plain-text reporting of benchmark results.

The benchmarks print small tables mirroring the paper's claims (one per
experiment of DESIGN.md §4) so that a run of ``pytest benchmarks/
--benchmark-only`` leaves a readable record in ``bench_output.txt``, which
EXPERIMENTS.md then references.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "record_experiment"]


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format a fixed-width text table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = [title, "-" * len(title)]
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def record_experiment(
    experiment_id: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
    directory: Optional[str] = None,
) -> str:
    """Print an experiment table and persist it as JSON next to the benchmarks.

    Returns the formatted table (so the caller can also assert on it).  The
    JSON files under ``benchmarks/results/`` are what EXPERIMENTS.md points
    at for the exact numbers of the recorded run.
    """
    table = format_table(f"[{experiment_id}] {title}", headers, rows)
    print("\n" + table)
    if notes:
        print(notes)
    if directory is None:
        directory = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__)))), "benchmarks", "results")
    try:
        os.makedirs(directory, exist_ok=True)
        payload = {
            "experiment": experiment_id,
            "title": title,
            "headers": list(headers),
            "rows": [list(map(str, row)) for row in rows],
            "notes": notes,
        }
        with open(os.path.join(directory, f"{experiment_id}.json"), "w", encoding="utf8") as handle:
            json.dump(payload, handle, indent=2)
    except OSError:  # pragma: no cover - reporting must never break a benchmark
        pass
    return table
