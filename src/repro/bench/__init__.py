"""Workload generation, measurement helpers and reporting for the benchmarks."""

from repro.bench.workloads import (
    mixed_workload,
    query_for_name,
    spanner_document,
    tree_for_experiment,
)
from repro.bench.measure import (
    measure_delays,
    measure_preprocessing,
    measure_updates,
    summarize,
)
from repro.bench.reporting import format_table, record_experiment

__all__ = [
    "tree_for_experiment",
    "query_for_name",
    "mixed_workload",
    "spanner_document",
    "measure_preprocessing",
    "measure_delays",
    "measure_updates",
    "summarize",
    "format_table",
    "record_experiment",
]
