"""Workload generators shared by the benchmarks (experiments E1–E11)."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.automata.queries import (
    DEFAULT_LABELS,
    boolean_contains_label,
    select_descendant_pairs,
    select_label_pairs,
    select_label_set,
    select_labeled,
    select_leaves,
    select_with_marked_ancestor,
)
from repro.automata.unranked_tva import UnrankedTVA
from repro.trees.edits import EditOperation, random_edit_sequence
from repro.trees.generators import tree_of_shape
from repro.trees.unranked import UnrankedTree

__all__ = [
    "tree_for_experiment",
    "query_for_name",
    "mixed_workload",
    "spanner_document",
    "nondeterministic_family",
    "serving_traffic",
]


def tree_for_experiment(size: int, shape: str = "random", seed: int = 0,
                        labels: Sequence[str] = DEFAULT_LABELS) -> UnrankedTree:
    """A tree of the requested size and shape with the default benchmark alphabet."""
    return tree_of_shape(shape, size, labels, seed)


def query_for_name(name: str, labels: Sequence[str] = DEFAULT_LABELS) -> UnrankedTVA:
    """The benchmark queries, by name (used to parametrize benchmarks)."""
    if name == "select-a":
        return select_labeled("a", labels)
    if name == "leaves":
        return select_leaves(labels)
    if name == "marked-ancestor":
        return select_with_marked_ancestor("b", labels)
    if name == "pairs":
        return select_label_pairs("a", "b", labels)
    if name == "descendant":
        return select_descendant_pairs(labels)
    if name == "label-set":
        return select_label_set("a", labels)
    if name == "boolean":
        return boolean_contains_label("a", labels)
    if name.startswith("nondet-"):
        # e.g. "nondet-6": the nondeterministic witness-path family Φ_k —
        # hundreds of states once translated+homogenized, the query class
        # where persistent compiled queries pay off most.
        return nondeterministic_family(int(name.split("-", 1)[1]), labels)
    raise ValueError(f"unknown benchmark query {name!r}")


def mixed_workload(
    tree: UnrankedTree,
    n_updates: int,
    seed: int = 0,
    labels: Sequence[str] = DEFAULT_LABELS,
    structural: bool = True,
) -> List[EditOperation]:
    """A replayable workload of edits (relabels only when ``structural=False``)."""
    weights = (1.0, 1.0, 1.0, 1.0) if structural else (1.0, 0.0, 0.0, 0.0)
    return random_edit_sequence(tree, labels, n_updates, seed=seed, weights=weights)


def spanner_document(length: int, seed: int = 0, alphabet: Sequence[str] = ("a", "b", "c", " ")) -> List[str]:
    """A synthetic document for the word/spanner experiments."""
    rng = random.Random(seed)
    return [rng.choice(list(alphabet)) for _ in range(length)]


def serving_traffic(
    n_docs: int,
    rounds: int,
    seed: int = 0,
) -> List[Tuple[str, int]]:
    """An interleaved edit/page traffic schedule for the serving benchmark.

    A replayable sequence of ``("edit", doc)`` and ``("page", doc)`` events
    over ``n_docs`` documents: each round touches one document with an edit
    batch and pages answers from another — the standing-query serving pattern
    (many documents, one compiled query, reads racing writes).
    """
    rng = random.Random(seed)
    events: List[Tuple[str, int]] = []
    for _ in range(rounds):
        edit_doc = rng.randrange(n_docs)
        page_doc = rng.randrange(n_docs)
        events.append(("edit", edit_doc))
        events.append(("page", page_doc))
    return events


def nondeterministic_family(k: int, labels: Sequence[str] = DEFAULT_LABELS) -> UnrankedTVA:
    """A family of nondeterministic queries of growing automaton size.

    Φ_k(x): ``x`` is an ``a``-node and the tree contains a node whose label is
    ``b`` at distance exactly ``k`` above some leaf — expressed with a
    nondeterministically guessed witness path of length ``k``, which makes
    the automaton size grow linearly in ``k`` while staying nondeterministic
    (a deterministic automaton for the same query would need to track sets of
    depths, blowing up exponentially in general).
    """
    # States: "idle", counting states 0..k for the witness path, "found" once
    # the witness is complete, plus the x-tracking bit folded in.
    states: List[object] = []
    for x_seen in (0, 1):
        states.append(("idle", x_seen))
        states.append(("done", x_seen))
        for depth in range(k + 1):
            states.append(("count", depth, x_seen))
    initial = []
    for label in labels:
        for x_seen, var_set in ((0, frozenset()), (1, frozenset({"x"}))):
            if x_seen and label != "a":
                continue
            initial.append((label, var_set, ("idle", x_seen)))
            # a leaf can nondeterministically start a witness path
            initial.append((label, var_set, ("count", 0, x_seen)))
            if label == "b" and k == 0:
                initial.append((label, var_set, ("done", x_seen)))
    delta = []
    for x1 in (0, 1):
        for x2 in (0, 1):
            x_out = x1 + x2
            if x_out > 1:
                continue
            # idle nodes just merge the x information of their children
            delta.append((("idle", x1), ("idle", x2), ("idle", x_out)))
            delta.append((("idle", x1), ("done", x2), ("done", x_out)))
            delta.append((("done", x1), ("idle", x2), ("done", x_out)))
            # a node one level above a counting child increments the counter;
            # reaching depth k at a b-labelled node is checked via the initial
            # state of the parent: we approximate by completing at depth k.
            for depth in range(k):
                delta.append((("idle", x1), ("count", depth, x2), ("count", depth + 1, x_out)))
                delta.append((("count", depth + 1, x1), ("idle", x2), ("count", depth + 1, x_out)))
            delta.append((("idle", x1), ("count", k, x2), ("done", x_out)))
    final = [("done", 1)]
    return UnrankedTVA(states, ["x"], initial, delta, final, name=f"nondet_depth_{k}")
