"""Measurement helpers used by the benchmarks and EXPERIMENTS.md generation."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.enumerator import TreeRuntime
from repro.trees.edits import EditOperation, Insert, InsertRight

__all__ = [
    "Summary",
    "summarize",
    "measure_preprocessing",
    "measure_delays",
    "measure_updates",
]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample of measurements (seconds)."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(samples: Sequence[float]) -> Summary:
    """Summarize a non-empty sample of timings."""
    values = sorted(samples)
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0)
    p95_index = min(len(values) - 1, int(0.95 * len(values)))
    return Summary(
        count=len(values),
        mean=statistics.fmean(values),
        median=values[len(values) // 2],
        p95=values[p95_index],
        maximum=values[-1],
    )


def measure_preprocessing(factory: Callable[[], object]) -> float:
    """Wall-clock seconds to build an enumerator (preprocessing phase)."""
    start = time.perf_counter()
    factory()
    return time.perf_counter() - start


def measure_delays(enumerator, max_answers: Optional[int] = None) -> Summary:
    """Per-answer delays of an enumerator (uses its ``delay_probe``)."""
    return summarize(enumerator.delay_probe(max_answers=max_answers))


def measure_updates(enumerator, edits: Sequence[EditOperation]) -> Summary:
    """Apply a workload of edits and summarize the per-update times."""
    times: List[float] = []
    for edit in edits:
        start = time.perf_counter()
        enumerator.apply(edit)
        times.append(time.perf_counter() - start)
    return summarize(times)
