"""The existential marked-ancestor problem and the reduction of Theorem 9.2.

The *marked ancestor problem* [1] maintains a tree in which nodes can be
marked and unmarked, and answers queries "does node v have a marked
ancestor?".  Alstrup, Husfeldt and Rauhe proved the unconditional cell-probe
trade-off ``t_q = Ω(log n / log(t_u log n))``; Theorem 9.2 transfers this to
MSO enumeration under relabelings: an enumeration algorithm with update time
``t̂_u`` and delay ``t̂_e`` solves marked-ancestor queries in ``2·t̂_u + t̂_e``,
so ``max(t̂_u, t̂_e) = Ω(log n / log log n)`` — in particular constant update
time is impossible even with slightly super-constant delay.

This module makes the reduction executable:

* :class:`MarkedAncestorInstance` — the dynamic problem itself (a labelled
  tree whose nodes are ``marked`` / ``unmarked`` / ``special``);
* :class:`EnumerationMarkedAncestor` — solves it through a
  :class:`~repro.core.enumerator.TreeRuntime` for the MSO query "select
  the special nodes that have a marked ancestor", exactly as in the proof of
  Theorem 9.2: a query on ``v`` relabels ``v`` to ``special``, enumerates (at
  most one answer), and relabels it back — i.e. two updates plus one delay;
* :class:`NaiveMarkedAncestor` — an obvious correct baseline (walk to the
  root) used to validate answers and to contrast costs.

Benchmark E7 measures the per-query cost of the reduction as the tree grows,
illustrating the update/delay trade-off the lower bound is about.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.automata.queries import select_special_with_marked_ancestor
from repro.core.enumerator import TreeRuntime
from repro.trees.unranked import UnrankedTree

__all__ = ["MarkedAncestorInstance", "NaiveMarkedAncestor", "EnumerationMarkedAncestor"]

UNMARKED = "unmarked"
MARKED = "marked"
SPECIAL = "special"
LABELS = (UNMARKED, MARKED, SPECIAL)


class MarkedAncestorInstance:
    """A random instance of the dynamic marked-ancestor problem."""

    def __init__(self, size: int, seed: int = 0, shape: str = "random"):
        from repro.trees.generators import path_tree, random_tree

        if shape == "path":
            self.tree = path_tree(size, (UNMARKED,), seed=seed)
        else:
            self.tree = random_tree(size, (UNMARKED,), seed=seed)
        self.rng = random.Random(seed + 1)

    def random_node(self) -> int:
        return self.rng.choice(self.tree.node_ids())

    def random_operations(self, count: int) -> List[tuple]:
        """A random workload of ``("mark", v)``, ``("unmark", v)``, ``("query", v)``."""
        operations = []
        for _ in range(count):
            kind = self.rng.choice(["mark", "unmark", "query", "query"])
            operations.append((kind, self.random_node()))
        return operations


class NaiveMarkedAncestor:
    """Baseline: store marks in a set, answer queries by walking to the root."""

    def __init__(self, tree: UnrankedTree):
        self.tree = tree
        self.marked: set = set()

    def mark(self, node_id: int) -> None:
        self.marked.add(node_id)

    def unmark(self, node_id: int) -> None:
        self.marked.discard(node_id)

    def query(self, node_id: int) -> bool:
        node = self.tree.node(node_id)
        for ancestor in node.ancestors():
            if ancestor.node_id in self.marked:
                return True
        return False


class EnumerationMarkedAncestor:
    """Solve marked ancestor through MSO enumeration under relabelings (Thm 9.2)."""

    def __init__(self, tree: UnrankedTree, relation_backend: Optional[str] = None):
        query = select_special_with_marked_ancestor(MARKED, SPECIAL, LABELS)
        self.enumerator = TreeRuntime(tree, query, relation_backend=relation_backend)
        #: bookkeeping of the current label of every node (mirrors the tree)
        self._label: Dict[int, str] = {n.node_id: n.label for n in self.enumerator.tree.nodes()}

    # -------------------------------------------------------------- operations
    def mark(self, node_id: int) -> None:
        """Mark a node (one relabeling update)."""
        if self._label[node_id] != MARKED:
            self.enumerator.relabel(node_id, MARKED)
            self._label[node_id] = MARKED

    def unmark(self, node_id: int) -> None:
        """Unmark a node (one relabeling update)."""
        if self._label[node_id] == MARKED:
            self.enumerator.relabel(node_id, UNMARKED)
            self._label[node_id] = UNMARKED

    def query(self, node_id: int) -> bool:
        """Existential marked-ancestor query via the reduction of Theorem 9.2.

        Relabel ``node_id`` to ``special``, enumerate the answers of
        Φ(x) = "x is special and has a marked ancestor" (there is at most one
        because only one node is special), relabel back, and report whether
        an answer was produced: two updates plus one enumeration delay.
        """
        previous = self._label[node_id]
        self.enumerator.relabel(node_id, SPECIAL)
        has_answer = self.enumerator.count(limit=1) > 0
        self.enumerator.relabel(node_id, previous)
        return has_answer

    def run(self, operations: Sequence[tuple]) -> List[bool]:
        """Run a workload; return the answers to the queries in order."""
        answers: List[bool] = []
        for kind, node_id in operations:
            if kind == "mark":
                self.mark(node_id)
            elif kind == "unmark":
                self.unmark(node_id)
            elif kind == "query":
                answers.append(self.query(node_id))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown operation {kind!r}")
        return answers
