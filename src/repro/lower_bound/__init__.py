"""The marked-ancestor lower bound (Section 9)."""

from repro.lower_bound.marked_ancestor import (
    EnumerationMarkedAncestor,
    MarkedAncestorInstance,
    NaiveMarkedAncestor,
)

__all__ = [
    "MarkedAncestorInstance",
    "EnumerationMarkedAncestor",
    "NaiveMarkedAncestor",
]
