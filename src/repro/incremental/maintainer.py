"""Incremental maintenance of assignment circuits over forest-algebra terms.

This module glues the circuit construction (Lemma 3.7), the enumeration index
(Lemma 6.3) and the balanced-term maintenance (Section 7) together, which is
exactly the content of Lemma 7.3:

* every term node carries the circuit **box** built for it (``TermNode.box``);
* the initial build walks the term bottom-up and builds one box plus one
  index entry per node — time ``O(|T| · poly|Q'|)``;
* after an edit, the :class:`~repro.forest_algebra.maintenance.UpdateReport`
  lists the trunk (dirty term nodes, bottom-up); the maintainer rebuilds
  exactly those boxes and index entries, reusing every untouched subtree, in
  time ``O(trunk · poly|Q'|)`` — logarithmic in the tree for non-rebalancing
  updates and amortized logarithmic overall.

Enumeration after an update restarts from the (possibly new) root box, as the
paper's model prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, List, Optional

from repro.automata.binary_tva import BinaryTVA
from repro.circuits.build import (
    BuildCache,
    automaton_digest,
    build_internal_box,
    build_leaf_box,
    internal_content_hash,
    leaf_content_hash,
)
from repro.circuits.gates import AssignmentCircuit, Box
from repro.enumeration.assignment_iter import CircuitEnumerator
from repro.enumeration.index import build_box_index
from repro.enumeration.relations import get_default_backend, validate_backend
from repro.errors import CircuitStructureError
from repro.forest_algebra.maintenance import MaintainedTerm, UpdateReport
from repro.forest_algebra.terms import TermNode

__all__ = [
    "build_circuit_over_term",
    "BoxDelta",
    "box_changed_mask",
    "IncrementalCircuitMaintainer",
]


@dataclass(frozen=True)
class BoxDelta:
    """One replaced trunk box of an edit batch, with its changed-slot mask.

    ``changed_mask`` has bit ``s`` set iff the content reachable from ∪-slot
    ``s`` differs between ``old_box`` and ``new_box`` — where "content" is
    the slot's *fingerprint*: its child wiring masks, its local var-gate
    assignments and ×-gate child-slot pairs (at their global table indices,
    so an interleave change across slots registers as changed), and,
    recursively, the fingerprints of every child slot it references.  A slot
    absent from either side (the widths differ) is always changed.

    The mask is what makes the serving layer's cursor trunk test
    fine-grained: a paused enumeration whose remaining reads
    (:meth:`~repro.enumeration.duplicate_free.MaskStackEnumeration.dependency_masks`)
    avoid every changed slot produces a byte-identical remaining stream over
    ``new_box``, because every index query and gate-table read it can still
    perform is determined by the reachable-slot fingerprints (the index
    ranks are subtree-local path tuples, never global numberings).
    """

    old_serial: int
    old_box: Box
    new_box: Box
    changed_mask: int


def _child_changed_mask(old_child: Box, new_child: Box, deltas: Dict[int, "BoxDelta"]) -> int:
    """Changed-slot mask between a replaced box's old and new child.

    ``deltas`` holds this batch's deltas keyed by old-box serial; the trunk
    is processed bottom-up, so a rebuilt child's delta is already there.  A
    child pair that is the same object (untouched subtree, Lemma 7.3) or
    content-hash-equal is unchanged everywhere; anything else — e.g. a
    rebalancing rotation that gave the rebuilt parent a different
    pre-existing child — conservatively counts as changed everywhere.
    """
    if old_child is new_child:
        return 0
    delta = deltas.get(old_child.serial)
    if delta is not None and delta.new_box is new_child:
        return delta.changed_mask
    old_hash = old_child.content_hash
    if old_hash is not None and old_hash == new_child.content_hash:
        return 0
    return -1  # all slots


def _slot_states(box: Box) -> List[object]:
    """The automaton state of each ∪-slot, in slot order.

    Plan-built boxes answer from the stamped state signature (the
    ``(state, False)`` entries are the ∪-slots, in order); hand-built boxes
    from their gate objects.  Part of the slot fingerprint because the
    cursor's root boxed set was *selected* by final states: positional
    wiring equality alone could in principle pair a slot with a different
    state's γ-gate.
    """
    sig = box.state_sig
    if sig is not None:
        return [state for state, is_top in sig if not is_top]
    return [gate.state for gate in box.union_gates]


def box_changed_mask(old: Box, new: Box, deltas: Dict[int, "BoxDelta"]) -> int:
    """Compute the per-slot changed mask between a box and its replacement.

    Slots are compared positionally (the cursor's dependency masks are over
    the old box's slot numbering, which survival pins to the new box's); the
    mask covers ``max`` of the two widths so a vanished slot reads as
    changed.  See :class:`BoxDelta` for what "unchanged" guarantees.
    """
    if old is new:
        return 0
    old_hash = old.content_hash
    if old_hash is not None and old_hash == new.content_hash:
        return 0
    old_n = old.n_unions
    new_n = new.n_unions
    full = (1 << max(old_n, new_n)) - 1
    is_leaf = old.is_leaf_box()
    if is_leaf != new.is_leaf_box():
        return full
    old_tables = old.enumeration_tables()
    new_tables = new.enumeration_tables()
    old_vars, old_var_masks = old_tables[0], old_tables[1]
    new_vars, new_var_masks = new_tables[0], new_tables[1]
    old_states = _slot_states(old)
    new_states = _slot_states(new)
    if is_leaf:
        left_changed = right_changed = 0
        old_prod_masks = new_prod_masks = None
    else:
        left_changed = _child_changed_mask(old.left_child, new.left_child, deltas)
        right_changed = _child_changed_mask(old.right_child, new.right_child, deltas)
        old_prod_lefts, old_prod_rights, old_prod_masks = old_tables[2:5]
        new_prod_lefts, new_prod_rights, new_prod_masks = new_tables[2:5]
        old_left, old_right = old.left_input_masks, old.right_input_masks
        new_left, new_right = new.left_input_masks, new.right_input_masks
    changed = 0
    for s in range(max(old_n, new_n)):
        bit = 1 << s
        if s >= old_n or s >= new_n:
            changed |= bit
            continue
        if old_states[s] != new_states[s]:
            changed |= bit
            continue
        # Gate tables of all-var or all-prod boxes stamp the absent kind as
        # an empty tuple rather than a row of zeros; index defensively.
        vm = old_var_masks[s] if old_var_masks else 0
        if vm != (new_var_masks[s] if new_var_masks else 0):
            changed |= bit
            continue
        equal = True
        while vm:
            low = vm & -vm
            i = low.bit_length() - 1
            vm ^= low
            if old_vars[i] != new_vars[i]:
                equal = False
                break
        if is_leaf:
            if not equal:
                changed |= bit
            continue
        if old_left[s] != new_left[s] or old_right[s] != new_right[s]:
            changed |= bit
            continue
        pm = old_prod_masks[s] if old_prod_masks else 0
        if pm != (new_prod_masks[s] if new_prod_masks else 0):
            changed |= bit
            continue
        left_refs = old_left[s]
        right_refs = old_right[s]
        while equal and pm:
            low = pm & -pm
            j = low.bit_length() - 1
            pm ^= low
            lslot = old_prod_lefts[j]
            rslot = old_prod_rights[j]
            if lslot != new_prod_lefts[j] or rslot != new_prod_rights[j]:
                equal = False
                break
            left_refs |= 1 << lslot
            right_refs |= 1 << rslot
        if not equal or (left_refs & left_changed) or (right_refs & right_changed):
            changed |= bit
    return changed


def _build_box_for_node(node: TermNode, automaton: BinaryTVA) -> Box:
    """Build the circuit box of one term node from its children's boxes."""
    if node.is_leaf():
        return build_leaf_box(node.alphabet_label(), node.tree_node_id, automaton)
    left_box = node.left.box
    right_box = node.right.box
    if left_box is None or right_box is None:
        raise CircuitStructureError("children must carry boxes before their parent is built")
    return build_internal_box(node.alphabet_label(), left_box, right_box, automaton)


def _build_node(
    node: TermNode,
    automaton: BinaryTVA,
    relation_backend: Optional[str],
    use_index: bool,
    cache: Optional[BuildCache],
) -> Box:
    """Build (or fetch from the cross-document cache) one node's box + index.

    A cache hit skips both the box instantiation *and* the per-box index
    construction of Lemma 6.3 — for a repeated subtree the whole built
    subtree (boxes, masks, relations, rank tables) is shared.  The content
    hash of an internal node derives from the children's ``box.content_hash``
    in O(1), so trunk rebuilds keep their logarithmic bound.  Hashes live on
    the immutable boxes rather than the term nodes because term nodes are
    mutated in place during rebalancing.
    """
    content = None
    key = None
    if cache is not None and cache.enabled and use_index:
        if node.is_leaf():
            content = leaf_content_hash(*node.content_signature())
        else:
            left_box = node.left.box
            right_box = node.right.box
            content = internal_content_hash(
                node.content_signature(),
                None if left_box is None else left_box.content_hash,
                None if right_box is None else right_box.content_hash,
            )
        if content is not None:
            key = (
                automaton_digest(automaton),
                relation_backend or get_default_backend(),
                content,
            )
            hit = cache.get(key)
            if hit is not None:
                return hit
    box = _build_box_for_node(node, automaton)
    box.content_hash = content
    if use_index:
        build_box_index(box, relation_backend=relation_backend)
    if key is not None:
        cache.put(key, box)
    return box


def build_circuit_over_term(
    term: TermNode,
    automaton: BinaryTVA,
    with_index: bool = True,
    relation_backend: Optional[str] = None,
    build_cache: Optional[BuildCache] = None,
) -> AssignmentCircuit:
    """Build the assignment circuit (and index) of ``automaton`` over a term.

    Boxes are attached to the term nodes (``TermNode.box``) so that later
    updates can reuse them; the returned :class:`AssignmentCircuit` is a view
    rooted at the term root's box.  When a :class:`BuildCache` is supplied
    (and the index is being built), every subtree is first looked up by
    content — repeated structure across documents builds once.
    """
    # Bottom-up (post-order) traversal without recursion.
    order: List[TermNode] = []
    stack: List[tuple] = [(term, False)]
    while stack:
        node, visited = stack.pop()
        if visited or node.is_leaf():
            order.append(node)
        else:
            stack.append((node, True))
            stack.append((node.right, False))
            stack.append((node.left, False))
    for node in order:
        node.box = _build_node(node, automaton, relation_backend, with_index, build_cache)
    return AssignmentCircuit(term.box, automaton, box_by_node=None)


class IncrementalCircuitMaintainer:
    """Keep an assignment circuit and its index in sync with a maintained term."""

    def __init__(
        self,
        term: MaintainedTerm,
        automaton: BinaryTVA,
        relation_backend: Optional[str] = None,
        use_index: bool = True,
        build_cache: Optional[BuildCache] = None,
    ):
        self.term = term
        self.automaton = automaton
        if relation_backend is not None:
            validate_backend(relation_backend)  # fail fast, before the build
        self.relation_backend = relation_backend
        self.use_index = use_index
        self.build_cache = build_cache
        self.version = 0
        #: the boxes replaced by the most recent apply_report call (the old
        #: trunk); read by the serving layer to invalidate cursors precisely.
        self.last_replaced_boxes: List[Box] = []
        #: fine-grained view of the same trunk: old-box serial →
        #: :class:`BoxDelta` with the per-slot changed mask, computed inline
        #: during the bottom-up rebuild (children before parents, so a
        #: parent's mask can consult its rebuilt children's).
        self.last_replaced_deltas: Dict[int, BoxDelta] = {}
        #: observability hooks (both optional).  ``on_update_seconds`` is
        #: called with the wall-clock duration of each :meth:`apply_report`
        #: (the per-edit trunk rebuild of Lemma 7.3, feeding the
        #: ``update_apply_seconds`` histogram); ``on_delay`` is copied onto
        #: every enumerator this maintainer hands out, sampling per-answer
        #: delay (see :class:`repro.obs.DelayMonitor`).
        self.on_update_seconds = None
        self.on_delay = None
        build_circuit_over_term(
            term.root,
            automaton,
            with_index=use_index,
            relation_backend=relation_backend,
            build_cache=build_cache,
        )

    # ------------------------------------------------------------------ views
    @property
    def root_box(self) -> Box:
        """The box of the current term root (changes when the root is replaced)."""
        return self.term.root.box

    def circuit(self) -> AssignmentCircuit:
        """A circuit view rooted at the current root box."""
        return AssignmentCircuit(self.root_box, self.automaton, box_by_node=None)

    def enumerator(self) -> CircuitEnumerator:
        """A fresh enumerator over the current circuit (no re-preprocessing)."""
        enumerator = CircuitEnumerator(
            self.circuit(),
            use_index=self.use_index,
            relation_backend=self.relation_backend,
            build=False,
        )
        enumerator.on_delay = self.on_delay
        return enumerator

    # ---------------------------------------------------------------- updates
    def apply_report(self, report: UpdateReport) -> int:
        """Rebuild the boxes and index entries of the trunk of an update.

        Returns the number of boxes rebuilt (the trunk size), the quantity
        Lemma 7.3 bounds by ``O(log |T|)`` per update.  The boxes the trunk
        *replaced* are collected in :attr:`last_replaced_boxes` (new term
        nodes contribute nothing), and :attr:`last_replaced_deltas` records,
        per replaced box, which ∪-slots' reachable content actually changed
        (:class:`BoxDelta`): the serving layer intersects those masks with
        the slot masks a paused cursor can still read to decide, per cursor,
        between resuming and invalidating.
        """
        on_update = self.on_update_seconds
        start = perf_counter() if on_update is not None else 0.0
        rebuilt = 0
        replaced: List[Box] = []
        deltas: Dict[int, BoxDelta] = {}
        for node in report.dirty_bottom_up:
            old_box = node.box
            new_box = _build_node(
                node, self.automaton, self.relation_backend, self.use_index, self.build_cache
            )
            node.box = new_box
            if old_box is not None:
                replaced.append(old_box)
                deltas[old_box.serial] = BoxDelta(
                    old_serial=old_box.serial,
                    old_box=old_box,
                    new_box=new_box,
                    changed_mask=box_changed_mask(old_box, new_box, deltas),
                )
            rebuilt += 1
        self.last_replaced_boxes = replaced
        self.last_replaced_deltas = deltas
        self.version += 1
        if on_update is not None:
            on_update(perf_counter() - start)
        return rebuilt

    def rebuild_from_scratch(self) -> None:
        """Drop all boxes and rebuild everything (used by baselines and tests)."""
        build_circuit_over_term(
            self.term.root,
            self.automaton,
            with_index=self.use_index,
            relation_backend=self.relation_backend,
            build_cache=self.build_cache,
        )
        self.version += 1
