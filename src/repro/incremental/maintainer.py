"""Incremental maintenance of assignment circuits over forest-algebra terms.

This module glues the circuit construction (Lemma 3.7), the enumeration index
(Lemma 6.3) and the balanced-term maintenance (Section 7) together, which is
exactly the content of Lemma 7.3:

* every term node carries the circuit **box** built for it (``TermNode.box``);
* the initial build walks the term bottom-up and builds one box plus one
  index entry per node — time ``O(|T| · poly|Q'|)``;
* after an edit, the :class:`~repro.forest_algebra.maintenance.UpdateReport`
  lists the trunk (dirty term nodes, bottom-up); the maintainer rebuilds
  exactly those boxes and index entries, reusing every untouched subtree, in
  time ``O(trunk · poly|Q'|)`` — logarithmic in the tree for non-rebalancing
  updates and amortized logarithmic overall.

Enumeration after an update restarts from the (possibly new) root box, as the
paper's model prescribes.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, List, Optional

from repro.automata.binary_tva import BinaryTVA
from repro.circuits.build import (
    BuildCache,
    automaton_digest,
    build_internal_box,
    build_leaf_box,
    internal_content_hash,
    leaf_content_hash,
)
from repro.circuits.gates import AssignmentCircuit, Box
from repro.enumeration.assignment_iter import CircuitEnumerator
from repro.enumeration.index import build_box_index
from repro.enumeration.relations import get_default_backend, validate_backend
from repro.errors import CircuitStructureError
from repro.forest_algebra.maintenance import MaintainedTerm, UpdateReport
from repro.forest_algebra.terms import TermNode

__all__ = ["build_circuit_over_term", "IncrementalCircuitMaintainer"]


def _build_box_for_node(node: TermNode, automaton: BinaryTVA) -> Box:
    """Build the circuit box of one term node from its children's boxes."""
    if node.is_leaf():
        return build_leaf_box(node.alphabet_label(), node.tree_node_id, automaton)
    left_box = node.left.box
    right_box = node.right.box
    if left_box is None or right_box is None:
        raise CircuitStructureError("children must carry boxes before their parent is built")
    return build_internal_box(node.alphabet_label(), left_box, right_box, automaton)


def _build_node(
    node: TermNode,
    automaton: BinaryTVA,
    relation_backend: Optional[str],
    use_index: bool,
    cache: Optional[BuildCache],
) -> Box:
    """Build (or fetch from the cross-document cache) one node's box + index.

    A cache hit skips both the box instantiation *and* the per-box index
    construction of Lemma 6.3 — for a repeated subtree the whole built
    subtree (boxes, masks, relations, rank tables) is shared.  The content
    hash of an internal node derives from the children's ``box.content_hash``
    in O(1), so trunk rebuilds keep their logarithmic bound.  Hashes live on
    the immutable boxes rather than the term nodes because term nodes are
    mutated in place during rebalancing.
    """
    content = None
    key = None
    if cache is not None and cache.enabled and use_index:
        if node.is_leaf():
            content = leaf_content_hash(*node.content_signature())
        else:
            left_box = node.left.box
            right_box = node.right.box
            content = internal_content_hash(
                node.content_signature(),
                None if left_box is None else left_box.content_hash,
                None if right_box is None else right_box.content_hash,
            )
        if content is not None:
            key = (
                automaton_digest(automaton),
                relation_backend or get_default_backend(),
                content,
            )
            hit = cache.get(key)
            if hit is not None:
                return hit
    box = _build_box_for_node(node, automaton)
    box.content_hash = content
    if use_index:
        build_box_index(box, relation_backend=relation_backend)
    if key is not None:
        cache.put(key, box)
    return box


def build_circuit_over_term(
    term: TermNode,
    automaton: BinaryTVA,
    with_index: bool = True,
    relation_backend: Optional[str] = None,
    build_cache: Optional[BuildCache] = None,
) -> AssignmentCircuit:
    """Build the assignment circuit (and index) of ``automaton`` over a term.

    Boxes are attached to the term nodes (``TermNode.box``) so that later
    updates can reuse them; the returned :class:`AssignmentCircuit` is a view
    rooted at the term root's box.  When a :class:`BuildCache` is supplied
    (and the index is being built), every subtree is first looked up by
    content — repeated structure across documents builds once.
    """
    # Bottom-up (post-order) traversal without recursion.
    order: List[TermNode] = []
    stack: List[tuple] = [(term, False)]
    while stack:
        node, visited = stack.pop()
        if visited or node.is_leaf():
            order.append(node)
        else:
            stack.append((node, True))
            stack.append((node.right, False))
            stack.append((node.left, False))
    for node in order:
        node.box = _build_node(node, automaton, relation_backend, with_index, build_cache)
    return AssignmentCircuit(term.box, automaton, box_by_node=None)


class IncrementalCircuitMaintainer:
    """Keep an assignment circuit and its index in sync with a maintained term."""

    def __init__(
        self,
        term: MaintainedTerm,
        automaton: BinaryTVA,
        relation_backend: Optional[str] = None,
        use_index: bool = True,
        build_cache: Optional[BuildCache] = None,
    ):
        self.term = term
        self.automaton = automaton
        if relation_backend is not None:
            validate_backend(relation_backend)  # fail fast, before the build
        self.relation_backend = relation_backend
        self.use_index = use_index
        self.build_cache = build_cache
        self.version = 0
        #: the boxes replaced by the most recent apply_report call (the old
        #: trunk); read by the serving layer to invalidate cursors precisely.
        self.last_replaced_boxes: List[Box] = []
        #: observability hooks (both optional).  ``on_update_seconds`` is
        #: called with the wall-clock duration of each :meth:`apply_report`
        #: (the per-edit trunk rebuild of Lemma 7.3, feeding the
        #: ``update_apply_seconds`` histogram); ``on_delay`` is copied onto
        #: every enumerator this maintainer hands out, sampling per-answer
        #: delay (see :class:`repro.obs.DelayMonitor`).
        self.on_update_seconds = None
        self.on_delay = None
        build_circuit_over_term(
            term.root,
            automaton,
            with_index=use_index,
            relation_backend=relation_backend,
            build_cache=build_cache,
        )

    # ------------------------------------------------------------------ views
    @property
    def root_box(self) -> Box:
        """The box of the current term root (changes when the root is replaced)."""
        return self.term.root.box

    def circuit(self) -> AssignmentCircuit:
        """A circuit view rooted at the current root box."""
        return AssignmentCircuit(self.root_box, self.automaton, box_by_node=None)

    def enumerator(self) -> CircuitEnumerator:
        """A fresh enumerator over the current circuit (no re-preprocessing)."""
        enumerator = CircuitEnumerator(
            self.circuit(),
            use_index=self.use_index,
            relation_backend=self.relation_backend,
            build=False,
        )
        enumerator.on_delay = self.on_delay
        return enumerator

    # ---------------------------------------------------------------- updates
    def apply_report(self, report: UpdateReport) -> int:
        """Rebuild the boxes and index entries of the trunk of an update.

        Returns the number of boxes rebuilt (the trunk size), the quantity
        Lemma 7.3 bounds by ``O(log |T|)`` per update.  The boxes the trunk
        *replaced* are collected in :attr:`last_replaced_boxes` (new term
        nodes contribute nothing): the serving layer compares them against
        the boxes a paused cursor still references to decide, per cursor,
        between resuming and invalidating.
        """
        on_update = self.on_update_seconds
        start = perf_counter() if on_update is not None else 0.0
        rebuilt = 0
        replaced: List[Box] = []
        for node in report.dirty_bottom_up:
            old_box = node.box
            if old_box is not None:
                replaced.append(old_box)
            node.box = _build_node(
                node, self.automaton, self.relation_backend, self.use_index, self.build_cache
            )
            rebuilt += 1
        self.last_replaced_boxes = replaced
        self.version += 1
        if on_update is not None:
            on_update(perf_counter() - start)
        return rebuilt

    def rebuild_from_scratch(self) -> None:
        """Drop all boxes and rebuild everything (used by baselines and tests)."""
        build_circuit_over_term(
            self.term.root,
            self.automaton,
            with_index=self.use_index,
            relation_backend=self.relation_backend,
            build_cache=self.build_cache,
        )
        self.version += 1
