"""Incremental maintenance of the assignment circuit and its index under
term updates (Lemma 7.3)."""

from repro.incremental.maintainer import IncrementalCircuitMaintainer, build_circuit_over_term

__all__ = ["IncrementalCircuitMaintainer", "build_circuit_over_term"]
