"""Balanced terms for *words* and their maintenance under edits (Theorem 8.5).

A word is the degenerate case of a forest: every position is a single-node
tree, and its term is a balanced ⊕HH-tree over one ``a_t`` leaf per position
(Corollary 8.4).  Updates are the usual text edits — insert a character,
delete a character, replace a character — and each touches ``O(log n)`` term
nodes, with the same partial-rebuilding strategy as the tree maintainer.

Positions are identified by stable integer ids (not indices), so that query
answers remain meaningful across updates; :class:`MaintainedWordTerm` tracks
the id sequence and exposes the current word.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import InvalidEditError, TermStructureError
from repro.forest_algebra.encoder import encode_word
from repro.forest_algebra.maintenance import UpdateReport
from repro.forest_algebra.terms import (
    CONCAT_HH,
    LEAF_TREE,
    TermNode,
    concat,
    term_leaves,
    tree_leaf,
    validate_term,
)

__all__ = ["MaintainedWordTerm"]


class MaintainedWordTerm:
    """A balanced ⊕HH-term over the positions of a word, maintained under edits."""

    REBALANCE_FACTOR = 3.0
    REBALANCE_SLACK = 8

    def __init__(self, letters: Sequence[object]):
        if not letters:
            raise InvalidEditError("words must be non-empty (insert into a one-letter word instead)")
        self._next_id = len(letters)
        self.root: TermNode = encode_word(list(letters), list(range(len(letters))))
        self.leaf_of: Dict[int, TermNode] = {
            leaf.tree_node_id: leaf for leaf in term_leaves(self.root)
        }

    # ------------------------------------------------------------------ views
    def size(self) -> int:
        """Number of positions."""
        return self.root.weight

    def height(self) -> int:
        return self.root.height

    def position_ids(self) -> List[int]:
        """The stable ids of the positions, left to right."""
        return [leaf.tree_node_id for leaf in term_leaves(self.root)]

    def letters(self) -> List[object]:
        """The current word, left to right."""
        return [leaf.label for leaf in term_leaves(self.root)]

    def letter_of(self, position_id: int) -> object:
        return self._leaf(position_id).label

    def height_budget(self, weight: int) -> float:
        return self.REBALANCE_FACTOR * math.log2(weight + 1) + self.REBALANCE_SLACK

    def validate(self) -> None:
        validate_term(self.root)
        for node in self.root.subtree_nodes():
            if not node.is_leaf() and node.kind != CONCAT_HH:
                raise TermStructureError("word terms may only contain ⊕HH nodes")
        if {l.tree_node_id for l in term_leaves(self.root)} != set(self.leaf_of):
            raise TermStructureError("leaf_of map out of sync")

    def _leaf(self, position_id: int) -> TermNode:
        try:
            return self.leaf_of[position_id]
        except KeyError:
            raise InvalidEditError(f"unknown position id {position_id}") from None

    # ------------------------------------------------------------------- edits
    def replace(self, position_id: int, letter: object) -> UpdateReport:
        """Replace the letter at a position (a relabeling update)."""
        leaf = self._leaf(position_id)
        leaf.label = letter
        return self._finalize([leaf], leaf.parent)

    def insert_after(self, position_id: Optional[int], letter: object) -> UpdateReport:
        """Insert a new character after the given position (or at the front if ``None``).

        The id of the new position is available as ``report.new_position_id``
        (stored on the report object).
        """
        new_id = self._next_id
        self._next_id += 1
        new_leaf = tree_leaf(letter, new_id)

        if position_id is None:
            # Insert at the very front: wrap the whole term.
            old_root = self.root
            wrapper = concat(new_leaf, old_root)
            self.root = wrapper
            wrapper.parent = None
            attach_parent: Optional[TermNode] = None
        else:
            # Climb while the anchor is the last position of the current
            # subterm; the seam immediately after it is where we splice.
            anchor = self._leaf(position_id)
            current = anchor
            while current.parent is not None and current.parent.right is current:
                current = current.parent
            attach_parent = current.parent
            was_left = attach_parent is not None and attach_parent.left is current
            wrapper = concat(current, new_leaf)
            if attach_parent is None:
                self.root = wrapper
                wrapper.parent = None
            else:
                if was_left:
                    attach_parent.left = wrapper
                else:
                    attach_parent.right = wrapper
                wrapper.parent = attach_parent

        self.leaf_of[new_id] = new_leaf
        report = self._finalize([new_leaf, wrapper], attach_parent)
        report.new_position_id = new_id  # type: ignore[attr-defined]
        return report

    def delete(self, position_id: int) -> UpdateReport:
        """Delete a position (the word must keep at least one letter)."""
        if self.size() <= 1:
            raise InvalidEditError("cannot delete the last letter of the word")
        leaf = self._leaf(position_id)
        parent = leaf.parent
        sibling = parent.left if parent.right is leaf else parent.right
        grandparent = parent.parent
        if grandparent is None:
            self.root = sibling
            sibling.parent = None
        else:
            if grandparent.left is parent:
                grandparent.left = sibling
            else:
                grandparent.right = sibling
            sibling.parent = grandparent
        del self.leaf_of[position_id]
        return self._finalize([], grandparent, removed=[position_id])

    # --------------------------------------------------------------- internals
    def _finalize(
        self,
        modified: Sequence[TermNode],
        refresh_from: Optional[TermNode],
        removed: Sequence[int] = (),
    ) -> UpdateReport:
        node = refresh_from
        while node is not None:
            node.refresh()
            node = node.parent

        rebuilt_size = 0
        new_subterm: Optional[TermNode] = None
        scapegoat = None
        node = refresh_from if refresh_from is not None else self.root
        while node is not None:
            if node.height > self.height_budget(node.weight):
                scapegoat = node
            node = node.parent
        if scapegoat is not None:
            leaves = term_leaves(scapegoat)
            new_subterm = encode_word([l.label for l in leaves], [l.tree_node_id for l in leaves])
            parent = scapegoat.parent
            if parent is None:
                self.root = new_subterm
                new_subterm.parent = None
            else:
                if parent.left is scapegoat:
                    parent.left = new_subterm
                else:
                    parent.right = new_subterm
                new_subterm.parent = parent
            for leaf in term_leaves(new_subterm):
                self.leaf_of[leaf.tree_node_id] = leaf
            node = parent
            while node is not None:
                node.refresh()
                node = node.parent
            rebuilt_size = new_subterm.weight

        dirty: set = set()
        dirty_nodes: List[TermNode] = []

        def mark(node: Optional[TermNode], with_ancestors: bool = True) -> None:
            while node is not None:
                if id(node) in dirty:
                    return
                dirty.add(id(node))
                if not with_ancestors:
                    return
                node = node.parent

        for item in modified:
            if item.root() is self.root:
                mark(item)
        if new_subterm is not None:
            for item in new_subterm.subtree_nodes():
                mark(item, with_ancestors=False)
            mark(new_subterm.parent)
        if refresh_from is not None and refresh_from.root() is self.root:
            mark(refresh_from)

        order: List[TermNode] = []
        stack = [(self.root, False)]
        while stack:
            current, visited = stack.pop()
            if id(current) not in dirty:
                continue
            if visited or current.is_leaf():
                order.append(current)
                continue
            stack.append((current, True))
            stack.append((current.right, False))
            stack.append((current.left, False))
        return UpdateReport(
            dirty_bottom_up=order, removed_leaves=list(removed), rebuilt_subterm_size=rebuilt_size
        )
