"""Forest algebra terms, balanced encoding and maintenance under edits (Section 7)."""

from repro.forest_algebra.terms import (
    TermNode,
    tree_leaf,
    context_leaf,
    concat,
    apply,
    decode,
    decode_to_nested,
    validate_term,
    term_leaves,
)
from repro.forest_algebra.encoder import encode_tree, encode_fragment, encode_word
from repro.forest_algebra.maintenance import MaintainedTerm, UpdateReport
from repro.forest_algebra.hollowing import TreeHollowing, hollowing_from_report

__all__ = [
    "TermNode",
    "tree_leaf",
    "context_leaf",
    "concat",
    "apply",
    "decode",
    "decode_to_nested",
    "validate_term",
    "term_leaves",
    "encode_tree",
    "encode_fragment",
    "encode_word",
    "MaintainedTerm",
    "UpdateReport",
    "TreeHollowing",
    "hollowing_from_report",
]
